//! A commuter's day: one vehicle crosses three administrative domains at
//! highway speed while on a voice call, exercising every tier of the
//! paper's mobility management — speed-based macro-tier assignment,
//! intra-domain handoffs, and both inter-domain procedures (same upper BS,
//! Fig 3.2, and different upper BS, Fig 3.3).
//!
//! ```text
//! cargo run -p mtnet-examples --bin city_commute --release
//! ```

use mtnet_core::scenario::{ArchKind, Population, Scenario};

fn main() {
    // Domains 0 and 1 share an upper BS; domain 2 stands alone, so the
    // 1→2 boundary forces the expensive home-network procedure.
    let scenario = Scenario::small_city(99).with_population(Population {
        pedestrians: 0,
        vehicles: 2,
        cyclists: 0,
    });
    let secs = 720.0; // one full out-and-back across the 9 km corridor

    println!("two commuters, 9 km corridor, 3 domains, {secs:.0} s simulated\n");
    for arch in [ArchKind::multi_tier(), ArchKind::PureMobileIp] {
        let report = scenario.with_arch(arch).run_secs(secs);
        let q = report.aggregate_qos();
        println!("=== {} ===", arch.label());
        println!(
            "voice loss {:.3}%  mean delay {:.1} ms  registrations {}",
            q.loss_rate * 100.0,
            q.mean_delay_ms,
            report.signaling.mip_requests
        );
        for (htype, count) in &report.handoffs.completed {
            let lat = report
                .handoffs
                .latency_ms
                .get(htype)
                .map(|s| format!("{:.0} ms", s.mean()))
                .unwrap_or_else(|| "-".into());
            println!("  {htype}: {count} (restore latency {lat})");
        }
        println!();
    }
    println!(
        "the same-upper crossing resolves over the shared upper BS in\n\
         milliseconds; the different-upper crossing pays the home-network\n\
         round trip — exactly the Fig 3.2 vs Fig 3.3 distinction."
    );
}
