//! Idle-mode economics: Cellular IP's active/idle split in action.
//!
//! A web-browsing population is mostly idle (think times dwarf fetch
//! times). Idle nodes send only coarse paging updates; the first packet of
//! each new fetch may need a page. This example shows the signaling the
//! idle machinery saves and what paging costs in exchange.
//!
//! ```text
//! cargo run -p mtnet-examples --bin paging_idle --release
//! ```

use mtnet_core::scenario::{ArchKind, Population, Scenario};

fn main() {
    let secs = 600.0;
    // Web-only traffic: long idle gaps between bursts.
    let mut scenario = Scenario::single_domain(5).with_population(Population {
        pedestrians: 6,
        vehicles: 0,
        cyclists: 0,
    });
    scenario.voice = false;
    scenario.video = false;
    scenario.web = true;

    println!("six browsing pedestrians, {secs:.0} s simulated\n");
    for arch in [ArchKind::multi_tier(), ArchKind::multi_tier_no_rsmc()] {
        let report = scenario.with_arch(arch).run_secs(secs);
        let q = report.aggregate_qos();
        println!("=== {} ===", arch.label());
        println!("web goodput          : {:.0} bit/s", q.throughput_bps);
        println!("loss                 : {:.3}%", q.loss_rate * 100.0);
        println!("route updates (active): {}", report.signaling.route_updates);
        println!(
            "paging updates (idle) : {}",
            report.signaling.paging_updates
        );
        println!("pages transmitted     : {}", report.signaling.page_messages);
        println!(
            "paging drops          : {}",
            report
                .drops
                .get(&mtnet_core::report::DropCause::Paging)
                .copied()
                .unwrap_or(0)
        );
        let ru_rate = report.signaling.route_updates as f64 / secs;
        println!("route updates/s       : {ru_rate:.2} (an always-active node sends 1.0)\n");
    }
    println!(
        "idle nodes keep only coarse paging state; the first packet of a\n\
         fetch is answered from the RSMC's combined location cache (left)\n\
         or must fall back to Cellular IP paging (right) — §2.2.2 folded\n\
         into the RSMC by §4."
    );
}
