//! Multimedia during handoff: the paper's headline claim, demonstrated.
//!
//! A cyclist carries a voice + video session along a street of micro
//! cells, handing off every couple of minutes. We run the identical
//! workload under hard handoff and under the proposed semisoft + RSMC
//! scheme and compare what the media streams experienced.
//!
//! ```text
//! cargo run -p mtnet-examples --bin multimedia_handoff --release
//! ```

use mtnet_core::scenario::{ArchKind, Population, Scenario};

fn main() {
    let base = Scenario::single_domain(7).with_population(Population {
        pedestrians: 0,
        vehicles: 0,
        cyclists: 4,
    });
    let secs = 400.0;

    println!("four cyclists, voice+video, {secs:.0} s simulated\n");
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>11} {:>11}",
        "scheme", "handoffs", "loss %", "jitter ms", "lost pkts", "duplicates"
    );
    for arch in [ArchKind::multi_tier_hard(), ArchKind::multi_tier()] {
        let report = base.with_arch(arch).run_secs(secs);
        let q = report.aggregate_qos();
        println!(
            "{:<22} {:>9} {:>9.3} {:>10.2} {:>11} {:>11}",
            arch.label(),
            report.handoffs.total(),
            q.loss_rate * 100.0,
            q.jitter_ms,
            q.sent - q.received,
            q.duplicates,
        );
    }
    println!(
        "\nsemisoft trades a few duplicated packets (bicast during the\n\
         handoff window) for packets that hard handoff would have dropped\n\
         on the abandoned branch — the paper's §2.2.2/§5 argument."
    );
}
