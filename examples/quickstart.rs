//! Quickstart: build the paper's multi-tier architecture, run a minute of
//! simulated multimedia traffic, and print the QoS report.
//!
//! ```text
//! cargo run -p mtnet-examples --bin quickstart
//! ```

use mtnet_core::scenario::Scenario;

fn main() {
    // The standard three-domain city: domains 0 and 1 share an upper-layer
    // BS (the paper's R3), domain 2 stands alone; pedestrians walk the
    // street rows, vehicles shuttle the corridor. Everyone carries a voice
    // call; every third node streams video.
    let scenario = Scenario::small_city(42);
    println!(
        "running `{}` over {} domains ({} m corridor)…",
        scenario.arch.label(),
        scenario.n_domains,
        scenario.corridor_width()
    );

    let report = scenario.run_secs(60.0);

    let qos = report.aggregate_qos();
    println!("\n--- aggregate QoS over 60 simulated seconds ---");
    println!("packets sent       : {}", qos.sent);
    println!("packets delivered  : {}", qos.received);
    println!("loss rate          : {:.3}%", qos.loss_rate * 100.0);
    println!("mean one-way delay : {:.1} ms", qos.mean_delay_ms);
    println!("p95 one-way delay  : {:.1} ms", qos.p95_delay_ms);
    println!("jitter (RFC 3550)  : {:.2} ms", qos.jitter_ms);

    println!("\n--- mobility ---");
    for (htype, count) in &report.handoffs.completed {
        println!("{htype}: {count}");
    }
    println!("ping-pong handoffs : {}", report.handoffs.ping_pong);

    println!("\n--- signaling overhead ---");
    println!(
        "location messages  : {}",
        report.signaling.location_messages
    );
    println!("route updates      : {}", report.signaling.route_updates);
    println!("MIP registrations  : {}", report.signaling.mip_requests);
    println!(
        "RSMC notifications : {}",
        report.signaling.rsmc_notifications
    );
    println!("control bytes      : {}", report.signaling.control_bytes);

    println!("\nper-flow QoS:");
    for (flow, q) in report.flow_reports() {
        println!(
            "  {flow}: sent={} loss={:.3}% delay={:.1}ms",
            q.sent,
            q.loss_rate * 100.0,
            q.mean_delay_ms
        );
    }
}
