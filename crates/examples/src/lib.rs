//! Examples anchor crate (binaries live in /examples).
