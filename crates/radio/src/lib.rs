//! # mtnet-radio — the multi-tier wireless substrate
//!
//! Models the radio layer of the paper's Fig 2.1: overlapping pico-, micro-,
//! macro- and satellite-tier cells covering the same geography with
//! different footprints, data rates and channel counts.
//!
//! * [`CellKind`] — the four tiers with realistic default parameters.
//! * [`Cell`] / [`CellId`] — one base station's coverage area and channel
//!   pool.
//! * [`PathLoss`] — log-distance path loss with deterministic per-location
//!   shadowing, yielding received power in dBm.
//! * [`ChannelPool`] — channels with guard-channel admission (handoff calls
//!   get priority over new calls, the classic multi-tier admission scheme
//!   of the paper's refs \[6]/\[7]).
//! * [`CellMap`] — cell placement plus "best server" selection with
//!   hysteresis, the trigger for every handoff in the reproduction.
//!
//! ```
//! use mtnet_radio::{Cell, CellId, CellKind, CellMap};
//! use mtnet_mobility::Point;
//! use mtnet_net::NodeId;
//!
//! let mut map = CellMap::new(42);
//! map.add(Cell::new(CellId(0), CellKind::Macro, Point::new(0.0, 0.0), NodeId(0)));
//! map.add(Cell::new(CellId(1), CellKind::Micro, Point::new(100.0, 0.0), NodeId(1)));
//! // Right next to the micro BS, the micro cell is the best server.
//! let best = map.best_cell(Point::new(110.0, 0.0), None).unwrap();
//! assert_eq!(best, CellId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod channels;
mod lanes;
mod map;
mod propagation;

pub use cell::{Cell, CellId, CellKind};
pub use channels::{AdmitError, CallKind, ChannelPool};
pub use lanes::{lanes_from_env, LaneSelect, LANES_ENV};
pub use map::{CellMap, Measurement};
pub use propagation::{PathLoss, SENSITIVITY_DBM};
