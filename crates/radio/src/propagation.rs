//! Log-distance path loss with deterministic shadowing.

use mtnet_mobility::Point;
use serde::{Deserialize, Serialize};

/// Log-distance path-loss model with optional log-normal shadowing:
///
/// `PL(d) = PL(d0) + 10·n·log10(d/d0) + X_sigma`
///
/// Shadowing is **deterministic per (cell, location grid square)** — a hash
/// of the transmitter id and the receiver's 10 m grid square seeds the
/// shadowing sample. This captures the spatial correlation that matters for
/// handoff (a node walking through a shadow sees it consistently, so
/// hysteresis is actually exercised) while keeping runs reproducible
/// without threading an RNG through every signal measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLoss {
    /// Path-loss exponent (2 free space … 4 dense urban).
    pub exponent: f64,
    /// Reference loss at 1 m, in dB.
    pub ref_loss_db: f64,
    /// Shadowing standard deviation, in dB (0 disables shadowing).
    pub shadow_sigma_db: f64,
}

impl Default for PathLoss {
    /// Urban-ish defaults: exponent 3.5, 40 dB at 1 m, 6 dB shadowing.
    fn default() -> Self {
        PathLoss {
            exponent: 3.5,
            ref_loss_db: 40.0,
            shadow_sigma_db: 6.0,
        }
    }
}

impl PathLoss {
    /// Free-space-like propagation without shadowing (unit tests,
    /// controlled experiments).
    pub fn clean(exponent: f64) -> Self {
        PathLoss {
            exponent,
            ref_loss_db: 40.0,
            shadow_sigma_db: 0.0,
        }
    }

    /// Mean path loss at distance `d` meters (no shadowing term).
    pub fn mean_loss_db(&self, d: f64) -> f64 {
        let d = d.max(1.0); // inside 1 m, use the reference loss
        self.ref_loss_db + 10.0 * self.exponent * d.log10()
    }

    /// Deterministic shadowing sample for a (transmitter, position) pair.
    fn shadow_db(&self, tx_seed: u64, at: Point) -> f64 {
        if self.shadow_sigma_db == 0.0 {
            return 0.0;
        }
        // 10 m grid squares: same shadow while the node stays in a square.
        let gx = (at.x / 10.0).floor() as i64;
        let gy = (at.y / 10.0).floor() as i64;
        let mut h = tx_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(gx as u64)
            .rotate_left(17)
            .wrapping_add(gy as u64);
        // splitmix-style finalize
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        // Two uniforms -> one Box-Muller normal.
        let u1 = ((h >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
        let u2 = (h & 0xFFFF_FFFF) as f64 / 4294967296.0;
        let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        n * self.shadow_sigma_db
    }

    /// Received power at `at` from a transmitter at `tx` radiating
    /// `tx_power_dbm`, in dBm. `tx_seed` identifies the transmitter for
    /// shadowing decorrelation (use the cell id).
    pub fn rx_power_dbm(&self, tx_power_dbm: f64, tx: Point, at: Point, tx_seed: u64) -> f64 {
        self.rx_power_dbm_with_distance(tx_power_dbm, tx.distance(at), at, tx_seed)
    }

    /// [`PathLoss::rx_power_dbm`] with the transmitter distance already in
    /// hand — hot paths that needed the distance for a coverage check
    /// reuse it instead of paying a second `hypot`. Identical arithmetic,
    /// identical bits.
    pub fn rx_power_dbm_with_distance(
        &self,
        tx_power_dbm: f64,
        distance: f64,
        at: Point,
        tx_seed: u64,
    ) -> f64 {
        tx_power_dbm - self.mean_loss_db(distance) + self.shadow_db(tx_seed, at)
    }

    /// The distance at which mean received power falls to `threshold_dbm`
    /// for a transmitter at `tx_power_dbm` — the effective cell edge.
    pub fn range_for_threshold(&self, tx_power_dbm: f64, threshold_dbm: f64) -> f64 {
        // tx - ref - 10 n log10(d) = thr  =>  d = 10^((tx - ref - thr)/(10 n))
        let margin = tx_power_dbm - self.ref_loss_db - threshold_dbm;
        10f64.powf(margin / (10.0 * self.exponent))
    }
}

/// Receiver sensitivity floor used across the reproduction, in dBm.
/// Signals below this are treated as "no coverage".
pub const SENSITIVITY_DBM: f64 = -100.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_increases_with_distance() {
        let pl = PathLoss::clean(3.0);
        let l10 = pl.mean_loss_db(10.0);
        let l100 = pl.mean_loss_db(100.0);
        let l1000 = pl.mean_loss_db(1000.0);
        assert!(l10 < l100 && l100 < l1000);
        // 10x distance at n=3 adds exactly 30 dB.
        assert!((l100 - l10 - 30.0).abs() < 1e-9);
        assert!((l1000 - l100 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn sub_meter_clamps_to_reference() {
        let pl = PathLoss::clean(3.0);
        assert_eq!(pl.mean_loss_db(0.0), pl.ref_loss_db);
        assert_eq!(pl.mean_loss_db(0.5), pl.ref_loss_db);
        assert_eq!(pl.mean_loss_db(1.0), pl.ref_loss_db);
    }

    #[test]
    fn rx_power_monotone_without_shadowing() {
        let pl = PathLoss::clean(3.5);
        let tx = Point::ORIGIN;
        let near = pl.rx_power_dbm(30.0, tx, Point::new(50.0, 0.0), 1);
        let far = pl.rx_power_dbm(30.0, tx, Point::new(500.0, 0.0), 1);
        assert!(near > far);
    }

    #[test]
    fn shadowing_deterministic_per_grid_square() {
        let pl = PathLoss::default();
        let tx = Point::ORIGIN;
        let a = pl.rx_power_dbm(30.0, tx, Point::new(101.0, 55.0), 7);
        let b = pl.rx_power_dbm(30.0, tx, Point::new(101.0, 55.0), 7);
        assert_eq!(a, b, "same location must give same power");
        // Same grid square (10 m) -> same shadow, so difference equals the
        // mean-loss difference only.
        let c = pl.rx_power_dbm(30.0, tx, Point::new(102.0, 56.0), 7);
        let mean_delta = pl.mean_loss_db(Point::new(102.0, 56.0).distance(tx))
            - pl.mean_loss_db(Point::new(101.0, 55.0).distance(tx));
        assert!(((a - c) - mean_delta).abs() < 1e-9);
    }

    #[test]
    fn shadowing_varies_across_squares_and_transmitters() {
        let pl = PathLoss::default();
        let tx = Point::ORIGIN;
        let p1 = Point::new(100.0, 0.0);
        let p2 = Point::new(200.0, 0.0);
        let shadow = |p: Point, seed: u64| {
            pl.rx_power_dbm(30.0, tx, p, seed) + pl.mean_loss_db(tx.distance(p)) - 30.0
        };
        assert_ne!(shadow(p1, 1), shadow(p2, 1), "different squares differ");
        assert_ne!(
            shadow(p1, 1),
            shadow(p1, 2),
            "different transmitters differ"
        );
    }

    #[test]
    fn shadowing_statistics_plausible() {
        let pl = PathLoss {
            shadow_sigma_db: 8.0,
            ..PathLoss::default()
        };
        let tx = Point::ORIGIN;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let n = 2000;
        for i in 0..n {
            let p = Point::new(10.0 * i as f64 + 5.0, 10_000.0);
            let s = pl.rx_power_dbm(30.0, tx, p, 3) + pl.mean_loss_db(tx.distance(p)) - 30.0;
            sum += s;
            sum2 += s * s;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 1.0, "shadow mean {mean} should be ~0");
        assert!(
            (var.sqrt() - 8.0).abs() < 1.0,
            "shadow sd {} should be ~8",
            var.sqrt()
        );
    }

    #[test]
    fn range_for_threshold_inverts_loss() {
        let pl = PathLoss::clean(3.5);
        let d = pl.range_for_threshold(43.0, SENSITIVITY_DBM);
        let rx = pl.rx_power_dbm(43.0, Point::ORIGIN, Point::new(d, 0.0), 1);
        assert!((rx - SENSITIVITY_DBM).abs() < 0.01, "rx at range: {rx}");
    }

    #[test]
    fn higher_exponent_shrinks_range() {
        let loose = PathLoss::clean(2.5).range_for_threshold(30.0, -90.0);
        let dense = PathLoss::clean(4.0).range_for_threshold(30.0, -90.0);
        assert!(dense < loose);
    }
}
