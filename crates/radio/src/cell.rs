//! Cell tiers and per-cell state.

use crate::channels::ChannelPool;
use mtnet_mobility::Point;
use mtnet_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cell (and its base station) in a
/// [`CellMap`](crate::CellMap).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CellId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// The four tiers of the paper's Fig 2.1 multi-tier hierarchy.
///
/// Default radii, rates and channel counts follow the 3G-era multi-tier
/// literature the paper cites: pico cells cover a building floor at high
/// rate, satellite covers everything at low rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// In-building coverage (~50 m).
    Pico,
    /// Urban street coverage (~300 m).
    Micro,
    /// Suburban umbrella coverage (~2 km).
    Macro,
    /// LEO/GEO satellite footprint (effectively global here).
    Satellite,
}

impl CellKind {
    /// All tiers, ordered smallest to largest footprint.
    pub const ALL: [CellKind; 4] = [
        CellKind::Pico,
        CellKind::Micro,
        CellKind::Macro,
        CellKind::Satellite,
    ];

    /// Nominal coverage radius in meters.
    pub fn radius_m(self) -> f64 {
        match self {
            CellKind::Pico => 50.0,
            CellKind::Micro => 300.0,
            CellKind::Macro => 2_000.0,
            CellKind::Satellite => 500_000.0,
        }
    }

    /// Base-station transmit power in dBm (EIRP for the satellite).
    pub fn tx_power_dbm(self) -> f64 {
        match self {
            CellKind::Pico => 20.0,
            CellKind::Micro => 30.0,
            CellKind::Macro => 43.0,
            CellKind::Satellite => 68.0,
        }
    }

    /// Transmitter altitude above the ground plane, in meters. Terrestrial
    /// BS heights are negligible against cell radii; the LEO satellite's
    /// 800 km altitude dominates its slant range everywhere inside the
    /// footprint (so received power is nearly uniform across it).
    pub fn altitude_m(self) -> f64 {
        match self {
            CellKind::Pico | CellKind::Micro | CellKind::Macro => 0.0,
            CellKind::Satellite => 800_000.0,
        }
    }

    /// Per-user downlink data rate in bits per second.
    pub fn data_rate_bps(self) -> u64 {
        match self {
            CellKind::Pico => 2_000_000,
            CellKind::Micro => 768_000,
            CellKind::Macro => 144_000,
            CellKind::Satellite => 32_000,
        }
    }

    /// Number of traffic channels at one base station.
    pub fn channels(self) -> u32 {
        match self {
            CellKind::Pico => 16,
            CellKind::Micro => 32,
            CellKind::Macro => 64,
            CellKind::Satellite => 240,
        }
    }

    /// Tier-specific path-loss exponent. Macro (and satellite)
    /// transmitters sit above clutter and see near-free-space propagation;
    /// micro cells are below rooftops, pico cells behind indoor walls —
    /// the COST-231-style distinction that makes the nominal footprints
    /// radio-consistent (a macro cell must actually be hearable across its
    /// 2 km radius).
    pub fn path_loss_exponent(self) -> f64 {
        match self {
            CellKind::Pico => 4.0,
            CellKind::Micro => 3.5,
            CellKind::Macro => 2.8,
            CellKind::Satellite => 2.0,
        }
    }

    /// Channels reserved for handoff calls (guard channels).
    pub fn guard_channels(self) -> u32 {
        match self {
            CellKind::Pico => 2,
            CellKind::Micro => 4,
            CellKind::Macro => 8,
            CellKind::Satellite => 16,
        }
    }

    /// Parses the stable textual label used by scenario-spec files and
    /// sweep axes (the same strings [`CellKind`]'s `Display` renders).
    pub fn parse_label(label: &str) -> Option<CellKind> {
        match label {
            "pico" => Some(CellKind::Pico),
            "micro" => Some(CellKind::Micro),
            "macro" => Some(CellKind::Macro),
            "satellite" => Some(CellKind::Satellite),
            _ => None,
        }
    }

    /// True if `self` is a smaller (lower) tier than `other`.
    pub fn is_below(self, other: CellKind) -> bool {
        self.rank() < other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            CellKind::Pico => 0,
            CellKind::Micro => 1,
            CellKind::Macro => 2,
            CellKind::Satellite => 3,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Pico => "pico",
            CellKind::Micro => "micro",
            CellKind::Macro => "macro",
            CellKind::Satellite => "satellite",
        };
        f.write_str(s)
    }
}

/// One cell: a base station with a position, tier and channel pool.
#[derive(Debug, Clone)]
pub struct Cell {
    id: CellId,
    kind: CellKind,
    center: Point,
    bs_node: NodeId,
    channels: ChannelPool,
}

impl Cell {
    /// Creates a cell with tier-default channel counts.
    pub fn new(id: CellId, kind: CellKind, center: Point, bs_node: NodeId) -> Self {
        Cell {
            id,
            kind,
            center,
            bs_node,
            channels: ChannelPool::new(kind.channels(), kind.guard_channels()),
        }
    }

    /// This cell's id.
    pub fn id(&self) -> CellId {
        self.id
    }

    /// This cell's tier.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Base-station position.
    pub fn center(&self) -> Point {
        self.center
    }

    /// The wired-network node hosting this base station.
    pub fn bs_node(&self) -> NodeId {
        self.bs_node
    }

    /// Nominal radius for this cell's tier.
    pub fn radius_m(&self) -> f64 {
        self.kind.radius_m()
    }

    /// Slant-range distance from the transmitter to `p`: ground distance
    /// for terrestrial cells, hypotenuse with the orbital altitude for the
    /// satellite tier. (`hypot(x, 0) == |x|` exactly per IEEE-754, so
    /// skipping the libm call for terrestrial cells changes no bits.)
    pub fn distance_to(&self, p: Point) -> f64 {
        let ground = self.center.distance(p);
        let altitude = self.kind.altitude_m();
        if altitude == 0.0 {
            ground
        } else {
            ground.hypot(altitude)
        }
    }

    /// True if `p` lies within the nominal ground footprint.
    pub fn covers(&self, p: Point) -> bool {
        self.center.distance(p) <= self.radius_m()
    }

    /// The channel pool (admission control state).
    pub fn channels(&self) -> &ChannelPool {
        &self.channels
    }

    /// Mutable channel pool.
    pub fn channels_mut(&mut self) -> &mut ChannelPool {
        &mut self.channels
    }

    /// Fraction of channels currently free, in `[0, 1]` — the "resources of
    /// BS" factor of the paper's handoff decision (§3.2).
    pub fn free_resource_ratio(&self) -> f64 {
        self.channels.free_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parameters_monotone() {
        // Footprint grows with tier; per-user rate shrinks.
        let radii: Vec<f64> = CellKind::ALL.iter().map(|k| k.radius_m()).collect();
        assert!(radii.windows(2).all(|w| w[0] < w[1]));
        let rates: Vec<u64> = CellKind::ALL.iter().map(|k| k.data_rate_bps()).collect();
        assert!(rates.windows(2).all(|w| w[0] > w[1]));
        let powers: Vec<f64> = CellKind::ALL.iter().map(|k| k.tx_power_dbm()).collect();
        assert!(powers.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn guard_channels_below_total() {
        for k in CellKind::ALL {
            assert!(k.guard_channels() < k.channels());
        }
    }

    #[test]
    fn tier_ordering() {
        assert!(CellKind::Pico.is_below(CellKind::Micro));
        assert!(CellKind::Micro.is_below(CellKind::Macro));
        assert!(CellKind::Macro.is_below(CellKind::Satellite));
        assert!(!CellKind::Macro.is_below(CellKind::Micro));
        assert!(!CellKind::Micro.is_below(CellKind::Micro));
    }

    #[test]
    fn coverage_geometry() {
        let c = Cell::new(CellId(0), CellKind::Micro, Point::new(0.0, 0.0), NodeId(5));
        assert!(c.covers(Point::new(299.0, 0.0)));
        assert!(!c.covers(Point::new(301.0, 0.0)));
        assert_eq!(c.distance_to(Point::new(300.0, 0.0)), 300.0);
        assert_eq!(c.bs_node(), NodeId(5));
        assert_eq!(c.kind(), CellKind::Micro);
        assert_eq!(c.id(), CellId(0));
        assert_eq!(c.center(), Point::new(0.0, 0.0));
    }

    #[test]
    fn fresh_cell_fully_free() {
        let c = Cell::new(CellId(1), CellKind::Pico, Point::ORIGIN, NodeId(0));
        assert_eq!(c.free_resource_ratio(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Micro.to_string(), "micro");
        assert_eq!(CellId(3).to_string(), "cell3");
    }
}
