//! Explicit portable SIMD lanes for the RSSI d² pre-filter.
//!
//! `core::simd` is nightly-only and the build is offline, so the lanes
//! are fixed-width `[f64; W]` chunks with straight-line, branch-free
//! arithmetic — the shape LLVM reliably turns into packed vector code on
//! stable Rust (4-wide maps to AVX2 `vmulpd`/`vcmppd`, 8-wide to two
//! registers or AVX-512). The sweep computes a per-lane hit mask and
//! only then branches, once per chunk, so the common all-miss chunk
//! costs no mispredictions.
//!
//! The hit decision is written as `!(d2 > r2)` — the *same* comparison,
//! same operand order, as the scalar pre-filter it replaces — so lane
//! width can never change which cells survive. Survivors are re-checked
//! by the exact scalar tail (`hypot`/path loss/`total_cmp`), which is
//! what makes the whole pipeline bit-identical across widths.

use std::sync::OnceLock;

/// Lane width selection for the RSSI pre-filter sweep.
///
/// All widths produce bit-identical measurement output (the sweep is a
/// conservative pre-filter in front of an exact scalar tail); the knob
/// exists so benches can compare widths and CI can diff fingerprints
/// between the vector and scalar paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSelect {
    /// The plain scalar loop, kept as the property-tested reference.
    Scalar,
    /// 4-wide `[f64; 4]` chunks (one AVX2 register).
    W4,
    /// 8-wide `[f64; 8]` chunks (two AVX2 registers / one AVX-512).
    W8,
}

/// Environment variable overriding the default lane width:
/// `scalar`, `4` or `8`.
pub const LANES_ENV: &str = "MTNET_RSSI_LANES";

/// The strict [`LANES_ENV`] environment override: unset or empty means
/// "use the built-in default"; anything else must be `scalar`, `4` or
/// `8`.
///
/// # Panics
///
/// Panics on any other value — a typo must not silently measure a
/// different code path than the one asked for.
pub fn lanes_from_env() -> Option<LaneSelect> {
    match std::env::var(LANES_ENV) {
        Ok(v) if !v.trim().is_empty() => Some(match v.trim() {
            "scalar" => LaneSelect::Scalar,
            "4" => LaneSelect::W4,
            "8" => LaneSelect::W8,
            _ => panic!("{LANES_ENV} must be `scalar`, `4` or `8`, got {v:?}"),
        }),
        _ => None,
    }
}

/// The process-wide lane width: [`LANES_ENV`] if set, else picked by
/// runtime ISA detection — 8-wide where the CPU has AVX2 (two packed
/// registers per chunk; on stock x86-64 builds the detection recovers
/// the width the PGO `target-cpu=native` lane measured fastest), 4-wide
/// everywhere else. Cached after first use — the measurement hot paths
/// must not re-read the environment or re-probe CPUID per call.
pub(crate) fn default_lanes() -> LaneSelect {
    static SEL: OnceLock<LaneSelect> = OnceLock::new();
    *SEL.get_or_init(|| lanes_from_env().unwrap_or(detected_lanes()))
}

/// ISA-driven width choice (see [`default_lanes`]). All widths are
/// bit-identical, so this is purely a speed decision.
fn detected_lanes() -> LaneSelect {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return LaneSelect::W8;
        }
    }
    LaneSelect::W4
}

/// Sweeps the SoA position/radius lanes and calls `on_hit(i)` for every
/// index whose widened squared-radius bound admits the query point, in
/// ascending index order regardless of width.
#[inline]
pub(crate) fn sweep(
    sel: LaneSelect,
    xs: &[f64],
    ys: &[f64],
    r2s: &[f64],
    px: f64,
    py: f64,
    on_hit: impl FnMut(usize),
) {
    match sel {
        LaneSelect::Scalar => sweep_scalar(xs, ys, r2s, px, py, on_hit),
        LaneSelect::W4 => sweep_lanes::<4>(xs, ys, r2s, px, py, on_hit),
        LaneSelect::W8 => sweep_lanes::<8>(xs, ys, r2s, px, py, on_hit),
    }
}

/// The reference sweep: one cell at a time, exactly the loop the lane
/// version replaces.
fn sweep_scalar(
    xs: &[f64],
    ys: &[f64],
    r2s: &[f64],
    px: f64,
    py: f64,
    mut on_hit: impl FnMut(usize),
) {
    debug_assert!(ys.len() == xs.len() && r2s.len() == xs.len());
    for i in 0..xs.len() {
        let dx = xs[i] - px;
        let dy = ys[i] - py;
        if !(dx * dx + dy * dy > r2s[i]) {
            on_hit(i);
        }
    }
}

/// `W`-wide sweep. Each chunk is loaded as `[f64; W]` array references
/// (no bounds checks inside the arithmetic), the hit mask is computed
/// with straight-line lane ops, and the `any` reduction folds to a
/// single packed compare + movemask so all-miss chunks take one
/// predictable branch.
fn sweep_lanes<const W: usize>(
    xs: &[f64],
    ys: &[f64],
    r2s: &[f64],
    px: f64,
    py: f64,
    mut on_hit: impl FnMut(usize),
) {
    debug_assert!(ys.len() == xs.len() && r2s.len() == xs.len());
    let n = xs.len();
    let tail = n - n % W;
    let mut base = 0;
    while base < tail {
        let xa: &[f64; W] = xs[base..base + W].try_into().expect("exact chunk");
        let ya: &[f64; W] = ys[base..base + W].try_into().expect("exact chunk");
        let ra: &[f64; W] = r2s[base..base + W].try_into().expect("exact chunk");
        let mut hit = [false; W];
        for l in 0..W {
            let dx = xa[l] - px;
            let dy = ya[l] - py;
            hit[l] = !(dx * dx + dy * dy > ra[l]);
        }
        if hit.iter().any(|&h| h) {
            for (l, h) in hit.into_iter().enumerate() {
                if h {
                    on_hit(base + l);
                }
            }
        }
        base += W;
    }
    sweep_scalar(&xs[tail..], &ys[tail..], &r2s[tail..], px, py, |i| {
        on_hit(tail + i);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(
        sel: LaneSelect,
        xs: &[f64],
        ys: &[f64],
        r2s: &[f64],
        px: f64,
        py: f64,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        sweep(sel, xs, ys, r2s, px, py, |i| out.push(i));
        out
    }

    #[test]
    fn widths_agree_on_awkward_lengths() {
        // Lengths straddling every remainder class of 4 and 8, with a
        // boundary-exact entry (d² == r²) that must be admitted by all
        // widths (the filter keeps `!(d2 > r2)`).
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
            let r2s: Vec<f64> = (0..n)
                .map(|i| if i % 2 == 0 { 150.0 } else { 0.0 })
                .collect();
            let reference = collect(LaneSelect::Scalar, &xs, &ys, &r2s, 5.0, 0.0);
            for sel in [LaneSelect::W4, LaneSelect::W8] {
                assert_eq!(collect(sel, &xs, &ys, &r2s, 5.0, 0.0), reference, "n={n}");
            }
        }
        // Exact-boundary case: distance² identical to the bound.
        let (xs, ys, r2s) = (vec![3.0], vec![4.0], vec![25.0]);
        for sel in [LaneSelect::Scalar, LaneSelect::W4, LaneSelect::W8] {
            assert_eq!(collect(sel, &xs, &ys, &r2s, 0.0, 0.0), [0]);
        }
    }

    #[test]
    fn env_parse_accepts_the_three_widths() {
        // Parsing only — the accepting env path mutates process-global
        // state, so the CI fingerprint smoke covers it end to end.
        assert_eq!(lanes_from_env(), None, "unset in the test environment");
    }

    #[test]
    fn hits_arrive_in_ascending_index_order() {
        let n = 23;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys = vec![0.0; n];
        let r2s = vec![1e9; n];
        for sel in [LaneSelect::Scalar, LaneSelect::W4, LaneSelect::W8] {
            let hits = collect(sel, &xs, &ys, &r2s, 0.0, 0.0);
            assert_eq!(hits, (0..n).collect::<Vec<_>>());
        }
    }
}
