//! Channel pools with guard-channel admission control.
//!
//! Handoff calls are admitted as long as *any* channel is free; new calls
//! are admitted only while more than `guard` channels remain. Reserving a
//! few channels for handoffs is the classic way multi-tier systems keep
//! forced-termination probability below new-call blocking probability —
//! dropping an ongoing multimedia session is far worse for QoS than
//! rejecting a new one (paper §3.2 factor 3, refs [6][7]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an admission request is a brand-new call or an ongoing call
/// being handed off into this cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// A call being set up from scratch.
    New,
    /// An ongoing call arriving via handoff (gets guard-channel priority).
    Handoff,
}

/// Admission failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// A new call found only guard channels free.
    Blocked,
    /// A handoff call found no channel at all.
    Dropped,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Blocked => write!(f, "new call blocked: only guard channels free"),
            AdmitError::Dropped => write!(f, "handoff dropped: no free channel"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A base station's traffic channels with guard-channel reservation.
///
/// ```
/// use mtnet_radio::{ChannelPool, CallKind};
/// let mut pool = ChannelPool::new(3, 1);
/// pool.admit(CallKind::New).unwrap();
/// pool.admit(CallKind::New).unwrap();
/// // Only the guard channel remains: new calls block, handoffs succeed.
/// assert!(pool.admit(CallKind::New).is_err());
/// assert!(pool.admit(CallKind::Handoff).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelPool {
    total: u32,
    guard: u32,
    in_use: u32,
    // Outcome counters for blocking/dropping statistics.
    new_admitted: u64,
    new_blocked: u64,
    handoff_admitted: u64,
    handoff_dropped: u64,
}

impl ChannelPool {
    /// Creates a pool of `total` channels, `guard` of which are reserved
    /// for handoff admissions.
    ///
    /// # Panics
    ///
    /// Panics if `guard >= total` or `total == 0`.
    pub fn new(total: u32, guard: u32) -> Self {
        assert!(total > 0, "a pool needs at least one channel");
        assert!(
            guard < total,
            "guard channels must leave room for new calls"
        );
        ChannelPool {
            total,
            guard,
            in_use: 0,
            new_admitted: 0,
            new_blocked: 0,
            handoff_admitted: 0,
            handoff_dropped: 0,
        }
    }

    /// Total channels.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Channels currently allocated.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Channels currently free.
    pub fn free(&self) -> u32 {
        self.total - self.in_use
    }

    /// Free fraction in `[0, 1]`.
    pub fn free_ratio(&self) -> f64 {
        f64::from(self.free()) / f64::from(self.total)
    }

    /// True if a request of `kind` would currently be admitted.
    pub fn can_admit(&self, kind: CallKind) -> bool {
        match kind {
            CallKind::New => self.free() > self.guard,
            CallKind::Handoff => self.free() > 0,
        }
    }

    /// Attempts to allocate one channel.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Blocked`] for new calls when only guard channels
    /// remain; [`AdmitError::Dropped`] for handoffs when nothing is free.
    pub fn admit(&mut self, kind: CallKind) -> Result<(), AdmitError> {
        if self.can_admit(kind) {
            self.in_use += 1;
            match kind {
                CallKind::New => self.new_admitted += 1,
                CallKind::Handoff => self.handoff_admitted += 1,
            }
            Ok(())
        } else {
            match kind {
                CallKind::New => {
                    self.new_blocked += 1;
                    Err(AdmitError::Blocked)
                }
                CallKind::Handoff => {
                    self.handoff_dropped += 1;
                    Err(AdmitError::Dropped)
                }
            }
        }
    }

    /// Releases one channel (call ended or handed off away).
    ///
    /// # Panics
    ///
    /// Panics if no channels are in use (double release is a logic error).
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "release with no channels in use");
        self.in_use -= 1;
    }

    /// Fraction of new-call attempts blocked.
    pub fn blocking_probability(&self) -> f64 {
        let attempts = self.new_admitted + self.new_blocked;
        if attempts == 0 {
            0.0
        } else {
            self.new_blocked as f64 / attempts as f64
        }
    }

    /// Fraction of handoff attempts dropped.
    pub fn drop_probability(&self) -> f64 {
        let attempts = self.handoff_admitted + self.handoff_dropped;
        if attempts == 0 {
            0.0
        } else {
            self.handoff_dropped as f64 / attempts as f64
        }
    }

    /// Total admission attempts of both kinds.
    pub fn attempts(&self) -> u64 {
        self.new_admitted + self.new_blocked + self.handoff_admitted + self.handoff_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_until_guard() {
        let mut p = ChannelPool::new(5, 2);
        // 3 new calls fit (5 - 2 guard).
        for _ in 0..3 {
            p.admit(CallKind::New).unwrap();
        }
        assert_eq!(p.admit(CallKind::New), Err(AdmitError::Blocked));
        assert_eq!(p.in_use(), 3);
        // Handoffs can use the guard channels.
        p.admit(CallKind::Handoff).unwrap();
        p.admit(CallKind::Handoff).unwrap();
        assert_eq!(p.admit(CallKind::Handoff), Err(AdmitError::Dropped));
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn release_frees_capacity() {
        let mut p = ChannelPool::new(2, 1);
        p.admit(CallKind::New).unwrap();
        assert!(!p.can_admit(CallKind::New));
        p.release();
        assert!(p.can_admit(CallKind::New));
        assert_eq!(p.free_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "no channels in use")]
    fn double_release_panics() {
        let mut p = ChannelPool::new(2, 1);
        p.release();
    }

    #[test]
    fn probabilities() {
        let mut p = ChannelPool::new(2, 1);
        p.admit(CallKind::New).unwrap(); // 1 admitted
        let _ = p.admit(CallKind::New); // blocked
        let _ = p.admit(CallKind::New); // blocked
        p.admit(CallKind::Handoff).unwrap();
        let _ = p.admit(CallKind::Handoff); // dropped
        assert!((p.blocking_probability() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.drop_probability(), 0.5);
        assert_eq!(p.attempts(), 5);
    }

    #[test]
    fn zero_attempts_probabilities() {
        let p = ChannelPool::new(2, 1);
        assert_eq!(p.blocking_probability(), 0.0);
        assert_eq!(p.drop_probability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_total_rejected() {
        ChannelPool::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "leave room")]
    fn guard_ge_total_rejected() {
        ChannelPool::new(4, 4);
    }

    #[test]
    fn handoff_priority_lowers_drop_rate() {
        // With guard channels, under identical load, handoffs should see
        // less rejection than new calls. Simulate a saturating load.
        let mut p = ChannelPool::new(10, 3);
        let mut new_rejects = 0;
        let mut ho_rejects = 0;
        for i in 0..100 {
            if i % 4 == 0 && p.in_use() > 0 {
                p.release();
            }
            if i % 2 == 0 {
                if p.admit(CallKind::New).is_err() {
                    new_rejects += 1;
                }
            } else if p.admit(CallKind::Handoff).is_err() {
                ho_rejects += 1;
            }
        }
        assert!(
            ho_rejects < new_rejects,
            "handoff rejects {ho_rejects} !< new rejects {new_rejects}"
        );
    }

    #[test]
    fn error_display() {
        assert!(AdmitError::Blocked.to_string().contains("blocked"));
        assert!(AdmitError::Dropped.to_string().contains("dropped"));
    }
}
