//! Cell placement and best-server selection.

use crate::cell::{Cell, CellId, CellKind};
use crate::lanes::{self, LaneSelect};
use crate::propagation::{PathLoss, SENSITIVITY_DBM};
use mtnet_mobility::Point;
use mtnet_sim::FxHashMap;

/// Squared pre-filter radius for a cell footprint, conservatively
/// widened: the cheap dx²+dy² lane carries at most a few ulp of error
/// against the exact `hypot`, so the bound grows by 1e-9 relative —
/// orders of magnitude beyond any rounding — and survivors are
/// re-checked exactly. Cells rejected by this bound are *definitely*
/// outside the footprint. Shared by every SoA the lane sweep runs over
/// so the pre-filter admits the same set everywhere.
fn widened_r2(radius_m: f64) -> f64 {
    let r = radius_m * (1.0 + 1e-9);
    r * r
}

/// One signal measurement of a cell at a location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The measured cell.
    pub cell: CellId,
    /// Its tier.
    pub kind: CellKind,
    /// Received power in dBm.
    pub rssi_dbm: f64,
    /// Fraction of free channels in `[0, 1]` at measurement time.
    pub free_ratio: f64,
}

/// Uniform-grid spatial index over cell footprints.
///
/// Each cell is registered in every grid bucket its footprint's bounding
/// square overlaps, so a point query only inspects the one bucket
/// containing the point (any cell covering the point necessarily overlaps
/// that bucket). Tiers whose footprint dwarfs the bucket size (the
/// satellite overlay's 500 km) would bloat the grid, so cells beyond
/// [`GridIndex::BROAD_RADIUS_M`] go to a flat `broad` list that every
/// query scans — there are at most a handful of those per deployment.
#[derive(Debug, Clone, Default)]
struct GridIndex {
    buckets: FxHashMap<(i32, i32), BucketSoa>,
    broad: Vec<CellId>,
}

/// One grid bucket's members as flat position/radius lanes plus the id
/// column, so a point query's candidate filter runs the same lane sweep
/// as [`CellMap::measure_batch`] instead of chasing `Cell` structs.
#[derive(Debug, Clone, Default)]
struct BucketSoa {
    x: Vec<f64>,
    y: Vec<f64>,
    filter_r2: Vec<f64>,
    id: Vec<CellId>,
}

impl BucketSoa {
    fn push(&mut self, cell: &Cell) {
        self.x.push(cell.center().x);
        self.y.push(cell.center().y);
        self.filter_r2.push(widened_r2(cell.radius_m()));
        self.id.push(cell.id());
    }
}

impl GridIndex {
    /// Bucket edge length. Sized so a micro cell (300 m) lands in ~4
    /// buckets and a macro cell (2 km) in ~25.
    const BUCKET_M: f64 = 1_000.0;
    /// Cells with footprints beyond this radius skip the grid.
    const BROAD_RADIUS_M: f64 = 4_000.0;

    fn bucket_of(p: Point) -> (i32, i32) {
        (
            (p.x / Self::BUCKET_M).floor() as i32,
            (p.y / Self::BUCKET_M).floor() as i32,
        )
    }

    fn insert(&mut self, cell: &Cell) {
        let r = cell.radius_m();
        if r > Self::BROAD_RADIUS_M {
            self.broad.push(cell.id());
            return;
        }
        let c = cell.center();
        let (bx0, by0) = Self::bucket_of(Point::new(c.x - r, c.y - r));
        let (bx1, by1) = Self::bucket_of(Point::new(c.x + r, c.y + r));
        for bx in bx0..=bx1 {
            for by in by0..=by1 {
                self.buckets.entry((bx, by)).or_default().push(cell);
            }
        }
    }

    /// Calls `f` with every cell whose footprint can contain `at` (a
    /// superset: callers still make the exact coverage check). Bucket
    /// members go through the lane pre-filter — an id is only reported
    /// when its widened radius bound admits `at` — while the handful of
    /// broad cells are always reported, in registration order after the
    /// bucket, exactly where the old iterator yielded them.
    fn for_each_candidate(&self, at: Point, sel: LaneSelect, mut f: impl FnMut(CellId)) {
        if let Some(b) = self.buckets.get(&Self::bucket_of(at)) {
            lanes::sweep(sel, &b.x, &b.y, &b.filter_r2, at.x, at.y, |i| f(b.id[i]));
        }
        for &id in &self.broad {
            f(id);
        }
    }
}

/// All cells of a deployment plus the propagation model: answers "which
/// cells can a node at point P hear, and how loudly?".
///
/// This is the measurement substrate for the paper's handoff decision
/// (§3.2): the decision engine combines these measurements with node speed.
/// Point queries go through a uniform grid index so only cells whose footprint
/// can contain the query point are inspected — the full scan survives as
/// [`CellMap::measure_full_scan`], the reference implementation the
/// property tests hold the grid against.
#[derive(Debug)]
pub struct CellMap {
    /// Cells indexed densely by id (`None` in gaps) — the per-packet
    /// `cell`/`rssi_dbm` probes are array reads.
    cells: Vec<Option<Cell>>,
    /// Number of `Some` entries in `cells`.
    count: usize,
    path_loss: PathLoss,
    /// Extra seed decorrelating shadowing between experiment repetitions.
    shadow_seed: u64,
    /// Administrative outage flags, dense by id (fault injection: BS
    /// outages, satellite eclipses). A downed cell stays placed — its
    /// geometry, channels and grid entries survive — but every
    /// measurement path reports it silent until restored.
    down: Vec<bool>,
    grid: GridIndex,
    /// Structure-of-arrays mirror of the static per-cell fields, in id
    /// order — the batched measurement path streams these flat lanes
    /// instead of hopping between `Cell` structs (which drag their
    /// channel pools through the cache).
    soa: CellSoa,
}

/// Structure-of-arrays mirror for [`CellMap::measure_batch`]: one flat
/// `f64` lane per static field, swept by the explicit lane code in
/// [`crate::lanes`].
#[derive(Debug, Default)]
struct CellSoa {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Squared nominal radius with a conservative margin, the pre-filter
    /// bound (see [`widened_r2`]).
    filter_r2: Vec<f64>,
    id: Vec<CellId>,
    kind: Vec<CellKind>,
}

impl CellSoa {
    fn push(&mut self, cell: &Cell) {
        self.x.push(cell.center().x);
        self.y.push(cell.center().y);
        self.filter_r2.push(widened_r2(cell.radius_m()));
        self.id.push(cell.id());
        self.kind.push(cell.kind());
    }
}

impl CellMap {
    /// Largest deployment [`CellMap::measure_batch`] still full-sweeps;
    /// bigger maps route batch measurements through the spatial grid
    /// (bit-identical — see `measure_batch_lanes`).
    const BATCH_FULL_SWEEP_MAX: usize = 256;

    /// Creates an empty map with default (shadowed urban) propagation.
    pub fn new(shadow_seed: u64) -> Self {
        CellMap {
            cells: Vec::new(),
            count: 0,
            path_loss: PathLoss::default(),
            shadow_seed,
            down: Vec::new(),
            grid: GridIndex::default(),
            soa: CellSoa::default(),
        }
    }

    /// Creates a map with shadowing disabled — controlled experiments where
    /// handoff points must be exactly reproducible from geometry.
    pub fn without_shadowing() -> Self {
        CellMap {
            cells: Vec::new(),
            count: 0,
            path_loss: PathLoss::clean(3.5),
            shadow_seed: 0,
            down: Vec::new(),
            grid: GridIndex::default(),
            soa: CellSoa::default(),
        }
    }

    /// Overrides the propagation model.
    pub fn with_path_loss(mut self, pl: PathLoss) -> Self {
        self.path_loss = pl;
        self
    }

    /// Adds a cell.
    ///
    /// # Panics
    ///
    /// Panics on duplicate cell ids.
    pub fn add(&mut self, cell: Cell) -> CellId {
        let id = cell.id();
        let idx = id.0 as usize;
        if self.cells.len() <= idx {
            self.cells.resize_with(idx + 1, || None);
            self.down.resize(idx + 1, false);
        }
        assert!(self.cells[idx].is_none(), "duplicate cell id {id}");
        self.grid.insert(&cell);
        self.soa.push(&cell);
        self.cells[idx] = Some(cell);
        self.count += 1;
        id
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no cells were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Shared access to a cell (O(1) array read).
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.0 as usize)?.as_ref()
    }

    /// Mutable access to a cell (channel pool updates).
    pub fn cell_mut(&mut self, id: CellId) -> Option<&mut Cell> {
        self.cells.get_mut(id.0 as usize)?.as_mut()
    }

    /// Iterates over all cells in id order (deterministic: dense storage
    /// is already id-ordered).
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter().flatten()
    }

    /// Whether `cell` is administratively down (unknown ids read as up).
    pub fn is_cell_down(&self, id: CellId) -> bool {
        self.down.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Sets a cell's administrative outage state. While down, the cell is
    /// invisible to every measurement path — the `measure_one`-derived
    /// scans, [`CellMap::measure_batch`], and the per-packet
    /// [`CellMap::rssi_if_covered`] probe all report silence — so a cell
    /// is never simultaneously "placed" and "audible-while-failed". The
    /// raw physics probe [`CellMap::rssi_dbm`] is deliberately untouched:
    /// outage is an administrative condition, not a propagation one.
    /// Returns whether the state changed.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is unknown.
    pub fn set_cell_down(&mut self, id: CellId, down: bool) -> bool {
        assert!(
            self.cell(id).is_some(),
            "set_cell_down: unknown cell id {id}"
        );
        let slot = &mut self.down[id.0 as usize];
        let changed = *slot != down;
        *slot = down;
        changed
    }

    /// Received power of `cell` at `at`, in dBm.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is unknown.
    pub fn rssi_dbm(&self, cell: CellId, at: Point) -> f64 {
        let c = self.cell(cell).expect("unknown cell id");
        self.rssi_from_ground(c, c.center().distance(at), at)
    }

    /// Received power given the ground distance already computed (the
    /// coverage check pays the `hypot`; this reuses it). Same arithmetic
    /// as [`CellMap::rssi_dbm`], bit for bit.
    fn rssi_from_ground(&self, c: &Cell, ground: f64, at: Point) -> f64 {
        // The configured model supplies reference loss and shadowing; the
        // exponent is tier-specific so nominal footprints are radio-true.
        let pl = crate::PathLoss {
            exponent: c.kind().path_loss_exponent(),
            ..self.path_loss
        };
        if c.kind().altitude_m() > 0.0 {
            // Orbital transmitter: free-space over the slant range, no
            // terrestrial shadowing model.
            c.kind().tx_power_dbm() - pl.mean_loss_db(ground.hypot(c.kind().altitude_m()))
        } else {
            pl.rx_power_dbm_with_distance(
                c.kind().tx_power_dbm(),
                ground,
                at,
                u64::from(c.id().0) ^ self.shadow_seed,
            )
        }
    }

    /// Received power at `at` when `at` lies inside the cell's nominal
    /// footprint, `None` otherwise (or for unknown ids). One distance
    /// computation serves both the coverage check and the path loss —
    /// the per-packet air-interface reachability probe.
    pub fn rssi_if_covered(&self, cell: CellId, at: Point) -> Option<f64> {
        let c = self.cell(cell)?;
        if self.down[cell.0 as usize] {
            return None;
        }
        let ground = c.center().distance(at);
        if ground > c.radius_m() {
            return None;
        }
        Some(self.rssi_from_ground(c, ground, at))
    }

    /// One audible-cell measurement, or `None` if the cell fails the tier
    /// filter, footprint check, or sensitivity floor.
    fn measure_one(&self, cell: CellId, at: Point, tier: Option<CellKind>) -> Option<Measurement> {
        let c = self.cell(cell).expect("indexed cell exists");
        if self.down[cell.0 as usize] {
            return None;
        }
        if !tier.is_none_or(|t| c.kind() == t) {
            return None;
        }
        let ground = c.center().distance(at);
        if ground > c.radius_m() {
            return None;
        }
        let m = Measurement {
            cell,
            kind: c.kind(),
            rssi_dbm: self.rssi_from_ground(c, ground, at),
            free_ratio: c.free_resource_ratio(),
        };
        (m.rssi_dbm >= SENSITIVITY_DBM).then_some(m)
    }

    /// Measures every audible cell at `at` (RSSI above the sensitivity
    /// floor **and** inside the nominal footprint), sorted strongest first.
    /// `tier` restricts the scan to one tier.
    ///
    /// Allocates a fresh vector per call; event loops should hold a
    /// scratch buffer and use [`CellMap::measure_into`].
    pub fn measure(&self, at: Point, tier: Option<CellKind>) -> Vec<Measurement> {
        let mut out = Vec::new();
        self.measure_into(at, tier, &mut out);
        out
    }

    /// [`CellMap::measure`] into a caller-owned buffer (cleared first), so
    /// per-event measurement costs no allocation once the buffer has grown
    /// to the deployment's audible-cell count.
    pub fn measure_into(&self, at: Point, tier: Option<CellKind>, out: &mut Vec<Measurement>) {
        self.measure_into_lanes(at, tier, out, lanes::default_lanes());
    }

    fn measure_into_lanes(
        &self,
        at: Point,
        tier: Option<CellKind>,
        out: &mut Vec<Measurement>,
        sel: LaneSelect,
    ) {
        out.clear();
        self.grid.for_each_candidate(at, sel, |id| {
            out.extend(self.measure_one(id, at, tier));
        });
        out.sort_by(|a, b| b.rssi_dbm.total_cmp(&a.rssi_dbm).then(a.cell.cmp(&b.cell)));
    }

    /// Batched variant of [`CellMap::measure_into`]: evaluates every
    /// cell's coverage in one pass over flat structure-of-arrays lanes
    /// (x, y, squared radius) — an explicit `[f64; W]` chunk sweep with a
    /// branch-free per-lane hit mask — then runs the exact scalar radio
    /// math only for the handful of cells whose footprint can contain
    /// `at`. Lane width comes from [`crate::lanes_from_env`] (default
    /// [`LaneSelect::W4`]).
    ///
    /// Output is identical to [`CellMap::measure_into`] and
    /// [`CellMap::measure_full_scan`] bit for bit, at every lane width:
    /// the lane sweep is a *conservative* pre-filter (its radius bound
    /// is widened far beyond its few-ulp rounding slack, so it never
    /// rejects a covered cell), and every survivor goes through the same
    /// `hypot`/path-loss arithmetic and the same `total_cmp` sort as the
    /// scalar paths. Property tests hold all three pairwise equal at
    /// every width; the experiment harness uses this one for the
    /// per-sample handoff scans.
    pub fn measure_batch(&self, at: Point, tier: Option<CellKind>, out: &mut Vec<Measurement>) {
        self.measure_batch_lanes(at, tier, out, lanes::default_lanes());
    }

    /// [`CellMap::measure_batch`] with an explicit lane width — the
    /// entry point benches and property tests use to compare widths
    /// inside one process (the env default is cached process-wide).
    pub fn measure_batch_lanes(
        &self,
        at: Point,
        tier: Option<CellKind>,
        out: &mut Vec<Measurement>,
        sel: LaneSelect,
    ) {
        // Metro-scale deployments: past a few hundred cells the full SoA
        // sweep loses to the spatial grid (the sweep is O(cells) per
        // sample; the grid visits one bucket plus the broad list). The
        // two paths are property-tested pairwise bit-identical at every
        // lane width, so the cutover is purely a speed decision.
        if self.soa.id.len() > Self::BATCH_FULL_SWEEP_MAX {
            self.measure_into_lanes(at, tier, out, sel);
            return;
        }
        out.clear();
        let n = self.soa.id.len();
        lanes::sweep(
            sel,
            &self.soa.x[..n],
            &self.soa.y[..n],
            &self.soa.filter_r2[..n],
            at.x,
            at.y,
            |i| {
                // Exact scalar path for the survivors — same ops, same
                // bits as `measure_one` (including the outage gate).
                if self.down[self.soa.id[i].0 as usize] {
                    return;
                }
                if !tier.is_none_or(|t| self.soa.kind[i] == t) {
                    return;
                }
                let c = self.cell(self.soa.id[i]).expect("soa mirrors cells");
                let ground = c.center().distance(at);
                if ground > c.radius_m() {
                    return;
                }
                let m = Measurement {
                    cell: c.id(),
                    kind: c.kind(),
                    rssi_dbm: self.rssi_from_ground(c, ground, at),
                    free_ratio: c.free_resource_ratio(),
                };
                if m.rssi_dbm >= SENSITIVITY_DBM {
                    out.push(m);
                }
            },
        );
        out.sort_by(|a, b| b.rssi_dbm.total_cmp(&a.rssi_dbm).then(a.cell.cmp(&b.cell)));
    }

    /// Reference implementation of [`CellMap::measure`] that scans every
    /// cell instead of using the spatial index. Kept (and exercised by
    /// property tests and benches) to prove the grid path observationally
    /// identical; not for hot paths.
    pub fn measure_full_scan(&self, at: Point, tier: Option<CellKind>) -> Vec<Measurement> {
        let mut out: Vec<Measurement> = self
            .cells()
            .filter_map(|c| self.measure_one(c.id(), at, tier))
            .collect();
        out.sort_by(|a, b| b.rssi_dbm.total_cmp(&a.rssi_dbm).then(a.cell.cmp(&b.cell)));
        out
    }

    /// `true` if `candidate` outranks `best` in the [`CellMap::measure`]
    /// sort order (strongest RSSI first, lowest id on ties).
    fn outranks(candidate: &Measurement, best: &Measurement) -> bool {
        match candidate.rssi_dbm.total_cmp(&best.rssi_dbm) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => candidate.cell < best.cell,
            std::cmp::Ordering::Less => false,
        }
    }

    /// Strongest audible cell at `at`, optionally restricted to one tier.
    /// Single lane-filtered pass over the grid bucket, no allocation.
    pub fn best_cell(&self, at: Point, tier: Option<CellKind>) -> Option<CellId> {
        self.best_cell_lanes(at, tier, lanes::default_lanes())
    }

    fn best_cell_lanes(
        &self,
        at: Point,
        tier: Option<CellKind>,
        sel: LaneSelect,
    ) -> Option<CellId> {
        let mut best: Option<Measurement> = None;
        self.grid.for_each_candidate(at, sel, |id| {
            if let Some(m) = self.measure_one(id, at, tier) {
                if best.as_ref().is_none_or(|b| Self::outranks(&m, b)) {
                    best = Some(m);
                }
            }
        });
        best.map(|m| m.cell)
    }

    /// Strongest audible cell with hysteresis: switch away from `current`
    /// only if a candidate beats it by at least `hysteresis_db`, or if
    /// `current` no longer covers `at`. Hysteresis suppresses ping-pong
    /// handoffs at cell boundaries.
    ///
    /// The current cell's measurement is folded into the same single pass
    /// that finds the strongest candidate — one bucket scan, no
    /// allocation.
    pub fn best_cell_hysteresis(
        &self,
        at: Point,
        current: CellId,
        hysteresis_db: f64,
        tier: Option<CellKind>,
    ) -> Option<CellId> {
        self.best_cell_hysteresis_lanes(at, current, hysteresis_db, tier, lanes::default_lanes())
    }

    fn best_cell_hysteresis_lanes(
        &self,
        at: Point,
        current: CellId,
        hysteresis_db: f64,
        tier: Option<CellKind>,
        sel: LaneSelect,
    ) -> Option<CellId> {
        let mut best: Option<Measurement> = None;
        let mut current_rssi: Option<f64> = None;
        self.grid.for_each_candidate(at, sel, |id| {
            if let Some(m) = self.measure_one(id, at, tier) {
                if m.cell == current {
                    current_rssi = Some(m.rssi_dbm);
                }
                if best.as_ref().is_none_or(|b| Self::outranks(&m, b)) {
                    best = Some(m);
                }
            }
        });
        match (best, current_rssi) {
            (None, _) => None,
            (Some(best), None) => Some(best.cell), // lost current entirely
            (Some(best), Some(cur)) => {
                if best.cell != current && best.rssi_dbm >= cur + hysteresis_db {
                    Some(best.cell)
                } else {
                    Some(current)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtnet_net::NodeId;

    /// Two micro cells 400 m apart plus a macro umbrella.
    fn two_micro_one_macro() -> CellMap {
        let mut map = CellMap::without_shadowing();
        map.add(Cell::new(
            CellId(0),
            CellKind::Micro,
            Point::new(0.0, 0.0),
            NodeId(0),
        ));
        map.add(Cell::new(
            CellId(1),
            CellKind::Micro,
            Point::new(400.0, 0.0),
            NodeId(1),
        ));
        map.add(Cell::new(
            CellId(2),
            CellKind::Macro,
            Point::new(200.0, 0.0),
            NodeId(2),
        ));
        map
    }

    #[test]
    fn best_cell_follows_position() {
        let map = two_micro_one_macro();
        assert_eq!(
            map.best_cell(Point::new(10.0, 0.0), Some(CellKind::Micro)),
            Some(CellId(0))
        );
        assert_eq!(
            map.best_cell(Point::new(390.0, 0.0), Some(CellKind::Micro)),
            Some(CellId(1))
        );
    }

    #[test]
    fn tier_filter_restricts() {
        let map = two_micro_one_macro();
        assert_eq!(
            map.best_cell(Point::new(200.0, 0.0), Some(CellKind::Macro)),
            Some(CellId(2))
        );
        // At the midpoint both micros are 200 m away — equidistant but both
        // within footprint; macro is right there and louder.
        let all = map.measure(Point::new(200.0, 0.0), None);
        assert_eq!(all.first().unwrap().cell, CellId(2));
    }

    #[test]
    fn out_of_coverage_is_empty() {
        let map = two_micro_one_macro();
        let far = Point::new(50_000.0, 0.0);
        assert!(map.measure(far, None).is_empty());
        assert_eq!(map.best_cell(far, None), None);
    }

    #[test]
    fn footprint_limits_micro_but_not_macro() {
        let map = two_micro_one_macro();
        let p = Point::new(800.0, 0.0); // 400 m past micro-1, inside macro
        let m = map.measure(p, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].cell, CellId(2));
    }

    #[test]
    fn hysteresis_prevents_ping_pong() {
        let map = two_micro_one_macro();
        // Just past the midpoint toward cell 1: cell 1 is stronger, but not
        // by a large margin — with high hysteresis we stay on cell 0.
        let p = Point::new(210.0, 0.0);
        let sticky = map.best_cell_hysteresis(p, CellId(0), 20.0, Some(CellKind::Micro));
        assert_eq!(sticky, Some(CellId(0)));
        // With zero hysteresis we switch.
        let eager = map.best_cell_hysteresis(p, CellId(0), 0.0, Some(CellKind::Micro));
        assert_eq!(eager, Some(CellId(1)));
    }

    #[test]
    fn hysteresis_switches_when_coverage_lost() {
        let map = two_micro_one_macro();
        // Outside cell 0's 300 m footprint entirely.
        let p = Point::new(380.0, 0.0);
        let next = map.best_cell_hysteresis(p, CellId(0), 20.0, Some(CellKind::Micro));
        assert_eq!(
            next,
            Some(CellId(1)),
            "must leave a dead cell regardless of hysteresis"
        );
    }

    #[test]
    fn measurements_sorted_strongest_first() {
        let map = two_micro_one_macro();
        let m = map.measure(Point::new(100.0, 0.0), None);
        assert!(m.windows(2).all(|w| w[0].rssi_dbm >= w[1].rssi_dbm));
    }

    #[test]
    fn free_ratio_reflects_channel_pool() {
        let mut map = two_micro_one_macro();
        let c = map.cell_mut(CellId(0)).unwrap();
        c.channels_mut().admit(crate::CallKind::New).unwrap();
        let m = map.measure(Point::new(10.0, 0.0), Some(CellKind::Micro));
        assert!(m[0].free_ratio < 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate cell id")]
    fn duplicate_id_rejected() {
        let mut map = CellMap::new(0);
        map.add(Cell::new(
            CellId(0),
            CellKind::Pico,
            Point::ORIGIN,
            NodeId(0),
        ));
        map.add(Cell::new(
            CellId(0),
            CellKind::Pico,
            Point::ORIGIN,
            NodeId(1),
        ));
    }

    #[test]
    fn len_and_iteration_order() {
        let map = two_micro_one_macro();
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        let ids: Vec<CellId> = map.cells().map(|c| c.id()).collect();
        assert_eq!(ids, vec![CellId(0), CellId(1), CellId(2)]);
    }

    #[test]
    fn downed_cell_is_silent_on_every_measurement_path() {
        let mut map = two_micro_one_macro();
        let p = Point::new(10.0, 0.0);
        assert!(!map.is_cell_down(CellId(0)));
        assert!(map.set_cell_down(CellId(0), true));
        assert!(!map.set_cell_down(CellId(0), true), "no-op repeat");
        assert!(map.is_cell_down(CellId(0)));
        // All scan paths agree the cell is gone…
        let full = map.measure_full_scan(p, None);
        let grid = map.measure(p, None);
        let mut batch = Vec::new();
        map.measure_batch(p, None, &mut batch);
        assert_eq!(full, grid);
        assert_eq!(full, batch);
        assert!(full.iter().all(|m| m.cell != CellId(0)));
        // …including the per-packet probe and best-cell selection…
        assert_eq!(map.rssi_if_covered(CellId(0), p), None);
        assert_ne!(map.best_cell(p, Some(CellKind::Micro)), Some(CellId(0)));
        // …while the cell itself stays placed (geometry + channels).
        assert!(map.cell(CellId(0)).is_some());
        assert_eq!(map.len(), 3);
        // Restoration brings it back verbatim.
        assert!(map.set_cell_down(CellId(0), false));
        assert_eq!(map.best_cell(p, Some(CellKind::Micro)), Some(CellId(0)));
        assert!(map.rssi_if_covered(CellId(0), p).is_some());
    }

    /// A deployment big enough that 4- and 8-wide chunks, remainders and
    /// the broad (satellite) list all participate: a 7×5 micro lattice
    /// under three macros and one satellite overlay.
    fn lattice_with_overlay() -> CellMap {
        let mut map = CellMap::new(7);
        let mut next = 0u32;
        let mut add = |map: &mut CellMap, kind, p| {
            let id = CellId(next);
            next += 1;
            map.add(Cell::new(id, kind, p, NodeId(id.0)));
        };
        for gx in 0..7 {
            for gy in 0..5 {
                add(
                    &mut map,
                    CellKind::Micro,
                    Point::new(f64::from(gx) * 320.0, f64::from(gy) * 320.0),
                );
            }
        }
        for gx in 0..3 {
            add(
                &mut map,
                CellKind::Macro,
                Point::new(f64::from(gx) * 900.0, 600.0),
            );
        }
        add(&mut map, CellKind::Satellite, Point::new(1_000.0, 800.0));
        map
    }

    #[test]
    fn every_lane_width_matches_the_full_scan_on_every_query_path() {
        let mut map = lattice_with_overlay();
        // An outage exercises the down-gate inside the survivor tail.
        map.set_cell_down(CellId(12), true);
        let mut batch = Vec::new();
        let mut grid = Vec::new();
        for step in 0..60 {
            let at = Point::new(f64::from(step) * 37.5 - 100.0, f64::from(step % 7) * 151.0);
            for tier in [None, Some(CellKind::Micro), Some(CellKind::Macro)] {
                let reference = map.measure_full_scan(at, tier);
                let best_ref = reference.first().map(|m| m.cell);
                for sel in [LaneSelect::Scalar, LaneSelect::W4, LaneSelect::W8] {
                    map.measure_batch_lanes(at, tier, &mut batch, sel);
                    assert_eq!(batch, reference, "batch {sel:?} at {at:?}");
                    map.measure_into_lanes(at, tier, &mut grid, sel);
                    assert_eq!(grid, reference, "grid {sel:?} at {at:?}");
                    assert_eq!(map.best_cell_lanes(at, tier, sel), best_ref, "{sel:?}");
                    for current in [CellId(0), CellId(12), CellId(17)] {
                        for hyst in [0.0, 6.0] {
                            assert_eq!(
                                map.best_cell_hysteresis_lanes(at, current, hyst, tier, sel),
                                map.best_cell_hysteresis(at, current, hyst, tier),
                                "hysteresis {sel:?} at {at:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shadowing_decorrelates_repetitions() {
        let mk = |seed| {
            let mut m = CellMap::new(seed);
            m.add(Cell::new(
                CellId(0),
                CellKind::Macro,
                Point::ORIGIN,
                NodeId(0),
            ));
            m.rssi_dbm(CellId(0), Point::new(500.0, 500.0))
        };
        assert_ne!(mk(1), mk(2));
        assert_eq!(mk(1), mk(1));
    }
}
