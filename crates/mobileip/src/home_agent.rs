//! The Home Agent: binding cache and tunnel decisions.

use crate::messages::{RegistrationReply, RegistrationRequest, ReplyCode};
use mtnet_net::{Addr, Prefix};
use mtnet_sim::FxHashMap;
use mtnet_sim::{SimDuration, SimTime};

/// One mobility binding: home address → care-of address, with lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// Registered care-of address.
    pub coa: Addr,
    /// When the binding was (re-)registered.
    pub registered_at: SimTime,
    /// Granted lifetime.
    pub lifetime: SimDuration,
}

impl Binding {
    /// True if the binding is still valid at `now`.
    pub fn is_valid(&self, now: SimTime) -> bool {
        now.saturating_since(self.registered_at) < self.lifetime
    }
}

/// A Home Agent (paper §2.2.1): a router on the mobile node's home link
/// that tracks each MN's current care-of address and tunnels intercepted
/// packets there.
#[derive(Debug, Clone)]
pub struct HomeAgent {
    addr: Addr,
    home_prefix: Prefix,
    max_lifetime: SimDuration,
    bindings: FxHashMap<Addr, Binding>,
    // Signaling counters for overhead experiments.
    registrations_accepted: u64,
    registrations_denied: u64,
    packets_tunneled: u64,
}

impl HomeAgent {
    /// Default maximum registration lifetime granted (RFC default scale).
    pub const DEFAULT_MAX_LIFETIME: SimDuration = SimDuration::from_secs(300);

    /// Creates a home agent at `addr` serving `home_prefix`.
    pub fn new(addr: Addr, home_prefix: Prefix) -> Self {
        HomeAgent {
            addr,
            home_prefix,
            max_lifetime: Self::DEFAULT_MAX_LIFETIME,
            bindings: FxHashMap::default(),
            registrations_accepted: 0,
            registrations_denied: 0,
            packets_tunneled: 0,
        }
    }

    /// Overrides the maximum lifetime this HA grants.
    pub fn with_max_lifetime(mut self, max: SimDuration) -> Self {
        self.max_lifetime = max;
        self
    }

    /// This agent's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The home network this agent serves.
    pub fn home_prefix(&self) -> Prefix {
        self.home_prefix
    }

    /// Processes a registration request, updating the binding cache.
    ///
    /// Deregistrations (lifetime 0) remove the binding. Requests for
    /// addresses outside the home prefix are denied. Lifetimes are clamped
    /// to the agent maximum (the reply carries the granted value, which is
    /// how the RFC signals clamping).
    pub fn process_registration(
        &mut self,
        req: &RegistrationRequest,
        now: SimTime,
    ) -> RegistrationReply {
        if !self.home_prefix.contains(req.mn_home) {
            self.registrations_denied += 1;
            return RegistrationReply {
                mn_home: req.mn_home,
                code: ReplyCode::DeniedUnknownHome,
                lifetime: SimDuration::ZERO,
                id: req.id,
            };
        }
        if req.is_deregistration() {
            self.bindings.remove(&req.mn_home);
            self.registrations_accepted += 1;
            return RegistrationReply {
                mn_home: req.mn_home,
                code: ReplyCode::Accepted,
                lifetime: SimDuration::ZERO,
                id: req.id,
            };
        }
        let granted = req.lifetime.min(self.max_lifetime);
        self.bindings.insert(
            req.mn_home,
            Binding {
                coa: req.coa,
                registered_at: now,
                lifetime: granted,
            },
        );
        self.registrations_accepted += 1;
        RegistrationReply {
            mn_home: req.mn_home,
            code: ReplyCode::Accepted,
            lifetime: granted,
            id: req.id,
        }
    }

    /// If the HA should intercept a packet for `dst` at `now`, returns the
    /// care-of address to tunnel it to. `None` means "the MN is home (or
    /// unknown) — deliver normally".
    pub fn tunnel_endpoint(&self, dst: Addr, now: SimTime) -> Option<Addr> {
        self.bindings
            .get(&dst)
            .filter(|b| b.is_valid(now))
            .map(|b| b.coa)
    }

    /// Like [`HomeAgent::tunnel_endpoint`] but also counts the tunneled
    /// packet for overhead statistics.
    pub fn tunnel_endpoint_counted(&mut self, dst: Addr, now: SimTime) -> Option<Addr> {
        let ep = self.tunnel_endpoint(dst, now);
        if ep.is_some() {
            self.packets_tunneled += 1;
        }
        ep
    }

    /// The current binding for a mobile node, if any (may be expired).
    pub fn binding(&self, mn_home: Addr) -> Option<&Binding> {
        self.bindings.get(&mn_home)
    }

    /// Removes bindings that expired before `now`. Returns how many were
    /// evicted.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.bindings.len();
        self.bindings.retain(|_, b| b.is_valid(now));
        before - self.bindings.len()
    }

    /// Number of live bindings (may include not-yet-expired stale entries).
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// `(accepted, denied, tunneled)` signaling counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.registrations_accepted,
            self.registrations_denied,
            self.packets_tunneled,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn ha() -> HomeAgent {
        HomeAgent::new(addr("10.0.0.1"), "10.0.0.0/16".parse().unwrap())
    }

    fn request(home: &str, coa: &str, lifetime_secs: u64, id: u64) -> RegistrationRequest {
        RegistrationRequest {
            mn_home: addr(home),
            coa: addr(coa),
            ha: addr("10.0.0.1"),
            lifetime: SimDuration::from_secs(lifetime_secs),
            id,
        }
    }

    #[test]
    fn accepts_and_tunnels() {
        let mut h = ha();
        let reply = h.process_registration(&request("10.0.0.9", "20.0.0.1", 100, 1), SimTime::ZERO);
        assert!(reply.accepted());
        assert_eq!(reply.id, 1);
        assert_eq!(
            h.tunnel_endpoint(addr("10.0.0.9"), SimTime::from_secs(50)),
            Some(addr("20.0.0.1"))
        );
        // Other home addresses are not intercepted.
        assert_eq!(h.tunnel_endpoint(addr("10.0.0.10"), SimTime::ZERO), None);
    }

    #[test]
    fn denies_foreign_home_address() {
        let mut h = ha();
        let reply = h.process_registration(&request("99.0.0.1", "20.0.0.1", 100, 2), SimTime::ZERO);
        assert_eq!(reply.code, ReplyCode::DeniedUnknownHome);
        assert_eq!(h.binding_count(), 0);
        assert_eq!(h.counters().1, 1);
    }

    #[test]
    fn lifetime_clamped_to_max() {
        let mut h = ha().with_max_lifetime(SimDuration::from_secs(60));
        let reply =
            h.process_registration(&request("10.0.0.9", "20.0.0.1", 10_000, 3), SimTime::ZERO);
        assert!(reply.accepted());
        assert_eq!(reply.lifetime, SimDuration::from_secs(60));
        // Binding honors the clamped lifetime.
        assert_eq!(
            h.tunnel_endpoint(addr("10.0.0.9"), SimTime::from_secs(61)),
            None
        );
    }

    #[test]
    fn binding_expires() {
        let mut h = ha();
        h.process_registration(&request("10.0.0.9", "20.0.0.1", 100, 4), SimTime::ZERO);
        assert!(h
            .tunnel_endpoint(addr("10.0.0.9"), SimTime::from_secs(99))
            .is_some());
        assert!(h
            .tunnel_endpoint(addr("10.0.0.9"), SimTime::from_secs(100))
            .is_none());
        assert_eq!(h.expire(SimTime::from_secs(100)), 1);
        assert_eq!(h.binding_count(), 0);
    }

    #[test]
    fn reregistration_replaces_coa() {
        let mut h = ha();
        h.process_registration(&request("10.0.0.9", "20.0.0.1", 100, 5), SimTime::ZERO);
        h.process_registration(
            &request("10.0.0.9", "30.0.0.1", 100, 6),
            SimTime::from_secs(10),
        );
        assert_eq!(
            h.tunnel_endpoint(addr("10.0.0.9"), SimTime::from_secs(50)),
            Some(addr("30.0.0.1"))
        );
        assert_eq!(h.binding_count(), 1);
    }

    #[test]
    fn deregistration_removes_binding() {
        let mut h = ha();
        h.process_registration(&request("10.0.0.9", "20.0.0.1", 100, 7), SimTime::ZERO);
        let dereg = RegistrationRequest::deregistration(addr("10.0.0.9"), addr("10.0.0.1"), 8);
        let reply = h.process_registration(&dereg, SimTime::from_secs(1));
        assert!(reply.accepted());
        assert_eq!(h.binding_count(), 0);
    }

    #[test]
    fn tunnel_counter() {
        let mut h = ha();
        h.process_registration(&request("10.0.0.9", "20.0.0.1", 100, 9), SimTime::ZERO);
        h.tunnel_endpoint_counted(addr("10.0.0.9"), SimTime::ZERO);
        h.tunnel_endpoint_counted(addr("10.0.0.9"), SimTime::ZERO);
        h.tunnel_endpoint_counted(addr("10.0.0.99"), SimTime::ZERO); // miss
        assert_eq!(h.counters().2, 2);
    }

    #[test]
    fn accessors() {
        let h = ha();
        assert_eq!(h.addr(), addr("10.0.0.1"));
        assert!(h.home_prefix().contains(addr("10.0.255.255")));
        assert!(h.binding(addr("10.0.0.9")).is_none());
    }
}
