//! # mtnet-mobileip — Mobile IP (RFC 3344 style) protocol entities
//!
//! Implements the macro-tier mobility protocol of the paper (§2.2.1):
//! the three functional entities and their message exchanges.
//!
//! * [`MipMessage`] — agent advertisements, registration request/reply,
//!   binding warnings/updates (smooth handoff, paper ref \[5]).
//! * [`HomeAgent`] — binding cache with lifetimes; intercepts packets for
//!   home addresses and tunnels them to the registered care-of address.
//! * [`ForeignAgent`] — visitor list, care-of address, registration relay
//!   and detunneling; optional previous-FA forwarding for smooth handoff.
//! * [`MobileNode`] — agent discovery, movement detection and the
//!   registration state machine with retransmission.
//!
//! The entities are *pure protocol state machines*: they consume messages
//! and emit messages (plus tunnel actions) without owning sockets or the
//! event loop, so the simulation crate can drive them over its packet
//! substrate and unit tests can drive them directly.
//!
//! ```
//! use mtnet_mobileip::{HomeAgent, RegistrationRequest};
//! use mtnet_net::Addr;
//! use mtnet_sim::{SimDuration, SimTime};
//!
//! let home: Addr = "10.0.0.7".parse().unwrap();
//! let ha_addr: Addr = "10.0.0.1".parse().unwrap();
//! let coa: Addr = "20.0.0.1".parse().unwrap();
//! let mut ha = HomeAgent::new(ha_addr, "10.0.0.0/16".parse().unwrap());
//!
//! let req = RegistrationRequest {
//!     mn_home: home, coa, ha: ha_addr,
//!     lifetime: SimDuration::from_secs(300), id: 1,
//! };
//! let reply = ha.process_registration(&req, SimTime::ZERO);
//! assert!(reply.accepted());
//! assert_eq!(ha.tunnel_endpoint(home, SimTime::ZERO), Some(coa));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod foreign_agent;
mod home_agent;
mod messages;
mod mobile_node;

pub use foreign_agent::{ForeignAgent, VisitorEntry};
pub use home_agent::{Binding, HomeAgent};
pub use messages::{
    AgentAdvertisement, MipMessage, RegistrationReply, RegistrationRequest, ReplyCode,
};
pub use mobile_node::{MnAction, MnState, MobileNode};
