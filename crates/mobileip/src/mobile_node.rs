//! The mobile node's Mobile IP state machine: agent discovery, movement
//! detection, registration with retransmission.

use crate::messages::{AgentAdvertisement, RegistrationReply, RegistrationRequest};
use mtnet_net::Addr;
use mtnet_sim::{SimDuration, SimTime};

/// Registration state of a mobile node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnState {
    /// On the home link; no care-of address needed.
    Home,
    /// Heard no usable agent yet (or lost the old one).
    Searching,
    /// Sent a registration; awaiting the reply.
    Registering {
        /// Care-of address being registered.
        coa: Addr,
        /// Outstanding request id.
        id: u64,
        /// When the request was (last) sent.
        sent_at: SimTime,
        /// Retransmissions performed so far.
        attempts: u32,
    },
    /// Registration confirmed.
    Registered {
        /// Confirmed care-of address.
        coa: Addr,
        /// When the binding expires.
        expires_at: SimTime,
    },
}

/// What the protocol asks its driver to do after an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnAction {
    /// Nothing to transmit.
    None,
    /// Send this registration request toward the advertised agent.
    SendRequest(RegistrationRequest),
}

/// Mobile node protocol entity (paper §2.2.1 procedures, step 1).
///
/// Movement detection is advertisement-based: when an advertisement from a
/// *different* agent arrives, or the current agent's advertisements stop
/// (lifetime expiry), the node re-registers.
#[derive(Debug, Clone)]
pub struct MobileNode {
    home_addr: Addr,
    ha_addr: Addr,
    state: MnState,
    current_agent: Option<Addr>,
    next_id: u64,
    desired_lifetime: SimDuration,
    retransmit_timeout: SimDuration,
    max_attempts: u32,
    registrations_sent: u64,
    handoffs: u64,
}

impl MobileNode {
    /// Default requested registration lifetime.
    pub const DEFAULT_LIFETIME: SimDuration = SimDuration::from_secs(300);
    /// Initial retransmission timeout.
    pub const DEFAULT_RETRANSMIT: SimDuration = SimDuration::from_secs(1);
    /// Give up after this many attempts and fall back to `Searching`.
    pub const DEFAULT_MAX_ATTEMPTS: u32 = 5;

    /// Creates a node that considers itself at home.
    pub fn new(home_addr: Addr, ha_addr: Addr) -> Self {
        MobileNode {
            home_addr,
            ha_addr,
            state: MnState::Home,
            current_agent: None,
            next_id: 1,
            desired_lifetime: Self::DEFAULT_LIFETIME,
            retransmit_timeout: Self::DEFAULT_RETRANSMIT,
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
            registrations_sent: 0,
            handoffs: 0,
        }
    }

    /// Overrides the requested lifetime.
    pub fn with_lifetime(mut self, lifetime: SimDuration) -> Self {
        self.desired_lifetime = lifetime;
        self
    }

    /// The node's permanent home address.
    pub fn home_addr(&self) -> Addr {
        self.home_addr
    }

    /// Current protocol state.
    pub fn state(&self) -> MnState {
        self.state
    }

    /// The confirmed care-of address, if registered and valid at `now`.
    pub fn coa(&self, now: SimTime) -> Option<Addr> {
        match self.state {
            MnState::Registered { coa, expires_at } if now < expires_at => Some(coa),
            _ => None,
        }
    }

    /// `(registrations_sent, handoffs)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.registrations_sent, self.handoffs)
    }

    fn make_request(&mut self, coa: Addr, now: SimTime) -> RegistrationRequest {
        let id = self.next_id;
        self.next_id += 1;
        self.registrations_sent += 1;
        self.state = MnState::Registering {
            coa,
            id,
            sent_at: now,
            attempts: 0,
        };
        RegistrationRequest {
            mn_home: self.home_addr,
            coa,
            ha: self.ha_addr,
            lifetime: self.desired_lifetime,
            id,
        }
    }

    /// Processes an agent advertisement heard on the current link
    /// (paper step 1(a) → 1(b)).
    pub fn on_advertisement(&mut self, adv: &AgentAdvertisement, now: SimTime) -> MnAction {
        let same_agent = self.current_agent == Some(adv.agent);
        match self.state {
            // New agent, or nothing registered: register via this agent.
            MnState::Home | MnState::Searching => {
                self.current_agent = Some(adv.agent);
                MnAction::SendRequest(self.make_request(adv.coa, now))
            }
            MnState::Registering { .. } if !same_agent => {
                // Moved mid-registration: restart with the new agent.
                self.current_agent = Some(adv.agent);
                MnAction::SendRequest(self.make_request(adv.coa, now))
            }
            MnState::Registered { coa, expires_at } => {
                if !same_agent {
                    // Movement detected: handoff to the new agent.
                    self.handoffs += 1;
                    self.current_agent = Some(adv.agent);
                    MnAction::SendRequest(self.make_request(adv.coa, now))
                } else if expires_at.saturating_since(now) < self.desired_lifetime / 2 {
                    // Same agent, binding past half-life: refresh early so
                    // the binding never lapses (standard practice).
                    let _ = coa;
                    MnAction::SendRequest(self.make_request(adv.coa, now))
                } else {
                    MnAction::None
                }
            }
            MnState::Registering { .. } => MnAction::None,
        }
    }

    /// Processes a registration reply (paper step 1(c)).
    pub fn on_reply(&mut self, reply: &RegistrationReply, now: SimTime) -> MnAction {
        let MnState::Registering { coa, id, .. } = self.state else {
            return MnAction::None; // stale reply
        };
        if reply.id != id || reply.mn_home != self.home_addr {
            return MnAction::None;
        }
        if reply.accepted() {
            self.state = MnState::Registered {
                coa,
                expires_at: now + reply.lifetime,
            };
        } else {
            self.state = MnState::Searching;
            self.current_agent = None;
        }
        MnAction::None
    }

    /// Drives retransmission: call periodically. Re-sends the outstanding
    /// request after the timeout, falling back to `Searching` after
    /// `max_attempts`.
    pub fn poll_retransmit(&mut self, now: SimTime) -> MnAction {
        let MnState::Registering {
            coa,
            id,
            sent_at,
            attempts,
        } = self.state
        else {
            return MnAction::None;
        };
        if now.saturating_since(sent_at) < self.retransmit_timeout {
            return MnAction::None;
        }
        if attempts + 1 >= self.max_attempts {
            self.state = MnState::Searching;
            self.current_agent = None;
            return MnAction::None;
        }
        self.state = MnState::Registering {
            coa,
            id,
            sent_at: now,
            attempts: attempts + 1,
        };
        self.registrations_sent += 1;
        MnAction::SendRequest(RegistrationRequest {
            mn_home: self.home_addr,
            coa,
            ha: self.ha_addr,
            lifetime: self.desired_lifetime,
            id,
        })
    }

    /// Signals loss of the current link (e.g. left coverage): state drops
    /// to `Searching` so the next advertisement triggers registration.
    pub fn on_link_lost(&mut self) {
        self.state = MnState::Searching;
        self.current_agent = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ReplyCode;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn mn() -> MobileNode {
        MobileNode::new(addr("10.0.0.9"), addr("10.0.0.1"))
    }

    fn adv(agent: &str, seq: u64) -> AgentAdvertisement {
        AgentAdvertisement {
            agent: addr(agent),
            coa: addr(agent),
            max_lifetime: SimDuration::from_secs(300),
            seq,
        }
    }

    fn accept(req: &RegistrationRequest) -> RegistrationReply {
        RegistrationReply {
            mn_home: req.mn_home,
            code: ReplyCode::Accepted,
            lifetime: req.lifetime,
            id: req.id,
        }
    }

    #[test]
    fn full_registration_flow() {
        let mut m = mn();
        assert_eq!(m.state(), MnState::Home);
        let MnAction::SendRequest(req) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!("expected a registration request");
        };
        assert_eq!(req.coa, addr("20.0.0.1"));
        assert!(matches!(m.state(), MnState::Registering { .. }));
        m.on_reply(&accept(&req), SimTime::from_millis(40));
        assert_eq!(m.coa(SimTime::from_secs(1)), Some(addr("20.0.0.1")));
    }

    #[test]
    fn movement_detection_triggers_handoff() {
        let mut m = mn();
        let MnAction::SendRequest(r1) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        m.on_reply(&accept(&r1), SimTime::from_millis(40));
        // New agent appears → re-register.
        let MnAction::SendRequest(r2) =
            m.on_advertisement(&adv("30.0.0.1", 1), SimTime::from_secs(10))
        else {
            panic!("handoff should trigger registration");
        };
        assert_eq!(r2.coa, addr("30.0.0.1"));
        assert_eq!(m.counters().1, 1, "one handoff counted");
        m.on_reply(&accept(&r2), SimTime::from_secs(10));
        assert_eq!(m.coa(SimTime::from_secs(11)), Some(addr("30.0.0.1")));
    }

    #[test]
    fn same_agent_advertisement_is_quiet_when_fresh() {
        let mut m = mn();
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        m.on_reply(&accept(&r), SimTime::ZERO);
        assert_eq!(
            m.on_advertisement(&adv("20.0.0.1", 2), SimTime::from_secs(1)),
            MnAction::None
        );
    }

    #[test]
    fn binding_refresh_past_half_life() {
        let mut m = mn();
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        m.on_reply(&accept(&r), SimTime::ZERO); // expires at 300 s
        let act = m.on_advertisement(&adv("20.0.0.1", 9), SimTime::from_secs(200));
        assert!(
            matches!(act, MnAction::SendRequest(_)),
            "should refresh at t=200 of 300"
        );
    }

    #[test]
    fn denial_returns_to_searching() {
        let mut m = mn();
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        let denial = RegistrationReply {
            mn_home: r.mn_home,
            code: ReplyCode::DeniedFaBusy,
            lifetime: SimDuration::ZERO,
            id: r.id,
        };
        m.on_reply(&denial, SimTime::from_millis(40));
        assert_eq!(m.state(), MnState::Searching);
        assert_eq!(m.coa(SimTime::from_secs(1)), None);
    }

    #[test]
    fn stale_reply_ignored() {
        let mut m = mn();
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        let mut stale = accept(&r);
        stale.id = 9999;
        assert_eq!(m.on_reply(&stale, SimTime::ZERO), MnAction::None);
        assert!(matches!(m.state(), MnState::Registering { .. }));
    }

    #[test]
    fn retransmission_then_give_up() {
        let mut m = mn();
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        let mut sends = 1;
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_secs(2);
            if let MnAction::SendRequest(rr) = m.poll_retransmit(t) {
                assert_eq!(rr.id, r.id, "retransmission reuses the id");
                sends += 1;
            }
        }
        assert_eq!(sends, MobileNode::DEFAULT_MAX_ATTEMPTS - 1 + 1);
        assert_eq!(m.state(), MnState::Searching, "gave up eventually");
    }

    #[test]
    fn no_retransmit_before_timeout() {
        let mut m = mn();
        let _ = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO);
        assert_eq!(m.poll_retransmit(SimTime::from_millis(500)), MnAction::None);
    }

    #[test]
    fn coa_expires() {
        let mut m = mn().with_lifetime(SimDuration::from_secs(10));
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        m.on_reply(&accept(&r), SimTime::ZERO);
        assert!(m.coa(SimTime::from_secs(9)).is_some());
        assert!(m.coa(SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn link_lost_resets() {
        let mut m = mn();
        let MnAction::SendRequest(r) = m.on_advertisement(&adv("20.0.0.1", 1), SimTime::ZERO)
        else {
            panic!()
        };
        m.on_reply(&accept(&r), SimTime::ZERO);
        m.on_link_lost();
        assert_eq!(m.state(), MnState::Searching);
        // Re-hearing the same agent re-registers.
        assert!(matches!(
            m.on_advertisement(&adv("20.0.0.1", 3), SimTime::from_secs(1)),
            MnAction::SendRequest(_)
        ));
    }
}
