//! The Foreign Agent: visitor list, registration relay, detunneling, and
//! smooth-handoff forwarding.

use crate::messages::{AgentAdvertisement, RegistrationReply, RegistrationRequest, ReplyCode};
use mtnet_net::Addr;
use mtnet_sim::FxHashMap;
use mtnet_sim::{SimDuration, SimTime};

/// One visitor-list entry at a foreign agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisitorEntry {
    /// The visitor's home agent.
    pub ha: Addr,
    /// When the entry was installed/refreshed.
    pub registered_at: SimTime,
    /// Granted lifetime (from the HA's reply).
    pub lifetime: SimDuration,
    /// Pending (not yet replied) registration id, if any.
    pub pending_id: Option<u64>,
}

impl VisitorEntry {
    /// True if the visitor registration is confirmed and unexpired.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.pending_id.is_none() && now.saturating_since(self.registered_at) < self.lifetime
    }
}

/// A Foreign Agent (paper §2.2.1): offers its own address as care-of
/// address, relays registrations, detunnels HA traffic, and — for smooth
/// handoff (ref \[5]) — forwards packets for recently departed visitors to
/// their new care-of address.
#[derive(Debug, Clone)]
pub struct ForeignAgent {
    addr: Addr,
    max_visitors: usize,
    max_lifetime: SimDuration,
    adv_seq: u64,
    visitors: FxHashMap<Addr, VisitorEntry>,
    /// Departed visitors whose traffic we still forward: MN → (new CoA,
    /// installed-at). Entries live for `forward_lifetime`.
    forwards: FxHashMap<Addr, (Addr, SimTime)>,
    forward_lifetime: SimDuration,
    relayed_requests: u64,
    forwarded_packets: u64,
}

impl ForeignAgent {
    /// Default visitor-list capacity.
    pub const DEFAULT_MAX_VISITORS: usize = 1024;
    /// Default maximum lifetime advertised.
    pub const DEFAULT_MAX_LIFETIME: SimDuration = SimDuration::from_secs(300);
    /// Default smooth-handoff forwarding lifetime.
    pub const DEFAULT_FORWARD_LIFETIME: SimDuration = SimDuration::from_secs(5);

    /// Creates a foreign agent whose care-of address is `addr`.
    pub fn new(addr: Addr) -> Self {
        ForeignAgent {
            addr,
            max_visitors: Self::DEFAULT_MAX_VISITORS,
            max_lifetime: Self::DEFAULT_MAX_LIFETIME,
            adv_seq: 0,
            visitors: FxHashMap::default(),
            forwards: FxHashMap::default(),
            forward_lifetime: Self::DEFAULT_FORWARD_LIFETIME,
            relayed_requests: 0,
            forwarded_packets: 0,
        }
    }

    /// Caps the visitor list (FA-busy denials beyond it).
    pub fn with_max_visitors(mut self, max: usize) -> Self {
        self.max_visitors = max;
        self
    }

    /// This agent's (care-of) address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Produces the next periodic agent advertisement (paper step 1(a)).
    pub fn make_advertisement(&mut self) -> AgentAdvertisement {
        self.adv_seq += 1;
        AgentAdvertisement {
            agent: self.addr,
            coa: self.addr,
            max_lifetime: self.max_lifetime,
            seq: self.adv_seq,
        }
    }

    /// Handles a registration request from a mobile node. On success the
    /// request should be relayed to the HA (returned as `Ok`); on local
    /// denial a reply is produced directly (returned as `Err`).
    pub fn relay_registration(
        &mut self,
        req: &RegistrationRequest,
        now: SimTime,
    ) -> Result<RegistrationRequest, RegistrationReply> {
        let is_known = self.visitors.contains_key(&req.mn_home);
        if !is_known && self.visitors.len() >= self.max_visitors {
            return Err(RegistrationReply {
                mn_home: req.mn_home,
                code: ReplyCode::DeniedFaBusy,
                lifetime: SimDuration::ZERO,
                id: req.id,
            });
        }
        self.visitors.insert(
            req.mn_home,
            VisitorEntry {
                ha: req.ha,
                registered_at: now,
                lifetime: SimDuration::ZERO,
                pending_id: Some(req.id),
            },
        );
        self.relayed_requests += 1;
        Ok(*req)
    }

    /// Handles a registration reply coming back from the HA; finalizes the
    /// visitor entry and returns the reply to forward to the MN.
    pub fn process_reply(&mut self, reply: &RegistrationReply, now: SimTime) -> RegistrationReply {
        if let Some(entry) = self.visitors.get_mut(&reply.mn_home) {
            if entry.pending_id == Some(reply.id) {
                if reply.accepted() && !reply.lifetime.is_zero() {
                    entry.pending_id = None;
                    entry.registered_at = now;
                    entry.lifetime = reply.lifetime;
                } else {
                    self.visitors.remove(&reply.mn_home);
                }
            }
        }
        *reply
    }

    /// True if `mn` is a confirmed, unexpired visitor — i.e. detunneled
    /// packets for it can be delivered on the local link.
    pub fn has_visitor(&self, mn: Addr, now: SimTime) -> bool {
        self.visitors.get(&mn).is_some_and(|v| v.is_active(now))
    }

    /// The visitor entry for `mn`, if present (possibly pending/expired).
    pub fn visitor(&self, mn: Addr) -> Option<&VisitorEntry> {
        self.visitors.get(&mn)
    }

    /// Number of visitor entries (active or pending).
    pub fn visitor_count(&self) -> usize {
        self.visitors.len()
    }

    /// Installs a smooth-handoff forward: packets arriving for `mn` are
    /// re-tunneled to `new_coa` (paper ref \[5]; triggered by a
    /// `BindingUpdate`). Removes the visitor entry.
    pub fn install_forward(&mut self, mn: Addr, new_coa: Addr, now: SimTime) {
        self.visitors.remove(&mn);
        self.forwards.insert(mn, (new_coa, now));
    }

    /// If a forward exists for `mn`, returns the new CoA to re-tunnel to
    /// and counts the forwarded packet.
    pub fn forward_endpoint(&mut self, mn: Addr, now: SimTime) -> Option<Addr> {
        if self.forwards.is_empty() {
            // Probed for every downlink packet crossing the gateway; skip
            // the hash while no smooth-handoff forward is installed (the
            // overwhelmingly common case).
            return None;
        }
        let (coa, installed) = *self.forwards.get(&mn)?;
        if now.saturating_since(installed) >= self.forward_lifetime {
            self.forwards.remove(&mn);
            return None;
        }
        self.forwarded_packets += 1;
        Some(coa)
    }

    /// Evicts expired visitors and forwards. Returns `(visitors_evicted,
    /// forwards_evicted)`.
    pub fn expire(&mut self, now: SimTime) -> (usize, usize) {
        let v_before = self.visitors.len();
        self.visitors
            .retain(|_, v| v.pending_id.is_some() || v.is_active(now));
        let f_before = self.forwards.len();
        let fl = self.forward_lifetime;
        self.forwards
            .retain(|_, (_, at)| now.saturating_since(*at) < fl);
        (
            v_before - self.visitors.len(),
            f_before - self.forwards.len(),
        )
    }

    /// `(relayed_requests, forwarded_packets)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.relayed_requests, self.forwarded_packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn fa() -> ForeignAgent {
        ForeignAgent::new(addr("20.0.0.1"))
    }

    fn req(home: &str, id: u64) -> RegistrationRequest {
        RegistrationRequest {
            mn_home: addr(home),
            coa: addr("20.0.0.1"),
            ha: addr("10.0.0.1"),
            lifetime: SimDuration::from_secs(100),
            id,
        }
    }

    fn ok_reply(home: &str, id: u64) -> RegistrationReply {
        RegistrationReply {
            mn_home: addr(home),
            code: ReplyCode::Accepted,
            lifetime: SimDuration::from_secs(100),
            id,
        }
    }

    #[test]
    fn advertisement_sequence_increases() {
        let mut f = fa();
        let a1 = f.make_advertisement();
        let a2 = f.make_advertisement();
        assert_eq!(a1.coa, addr("20.0.0.1"));
        assert!(a2.seq > a1.seq);
    }

    #[test]
    fn registration_lifecycle() {
        let mut f = fa();
        let relayed = f
            .relay_registration(&req("10.0.0.9", 1), SimTime::ZERO)
            .unwrap();
        assert_eq!(relayed.coa, addr("20.0.0.1"));
        // Pending entries are not active yet.
        assert!(!f.has_visitor(addr("10.0.0.9"), SimTime::ZERO));
        f.process_reply(&ok_reply("10.0.0.9", 1), SimTime::from_millis(40));
        assert!(f.has_visitor(addr("10.0.0.9"), SimTime::from_secs(1)));
        assert_eq!(f.visitor_count(), 1);
        assert_eq!(f.counters().0, 1);
    }

    #[test]
    fn denied_reply_removes_pending_entry() {
        let mut f = fa();
        f.relay_registration(&req("10.0.0.9", 2), SimTime::ZERO)
            .unwrap();
        let denial = RegistrationReply {
            mn_home: addr("10.0.0.9"),
            code: ReplyCode::DeniedUnknownHome,
            lifetime: SimDuration::ZERO,
            id: 2,
        };
        f.process_reply(&denial, SimTime::ZERO);
        assert_eq!(f.visitor_count(), 0);
    }

    #[test]
    fn mismatched_reply_id_ignored() {
        let mut f = fa();
        f.relay_registration(&req("10.0.0.9", 3), SimTime::ZERO)
            .unwrap();
        f.process_reply(&ok_reply("10.0.0.9", 999), SimTime::ZERO);
        // Still pending — stale reply must not activate the visitor.
        assert!(!f.has_visitor(addr("10.0.0.9"), SimTime::ZERO));
        assert!(f.visitor(addr("10.0.0.9")).unwrap().pending_id.is_some());
    }

    #[test]
    fn visitor_expires() {
        let mut f = fa();
        f.relay_registration(&req("10.0.0.9", 4), SimTime::ZERO)
            .unwrap();
        f.process_reply(&ok_reply("10.0.0.9", 4), SimTime::ZERO);
        assert!(f.has_visitor(addr("10.0.0.9"), SimTime::from_secs(99)));
        assert!(!f.has_visitor(addr("10.0.0.9"), SimTime::from_secs(101)));
        let (v, _) = f.expire(SimTime::from_secs(101));
        assert_eq!(v, 1);
    }

    #[test]
    fn capacity_denial() {
        let mut f = ForeignAgent::new(addr("20.0.0.1")).with_max_visitors(1);
        f.relay_registration(&req("10.0.0.8", 5), SimTime::ZERO)
            .unwrap();
        let denied = f
            .relay_registration(&req("10.0.0.9", 6), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(denied.code, ReplyCode::DeniedFaBusy);
        // Re-registration of the same visitor is allowed at capacity.
        assert!(f
            .relay_registration(&req("10.0.0.8", 7), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn smooth_handoff_forwarding() {
        let mut f = fa();
        f.relay_registration(&req("10.0.0.9", 8), SimTime::ZERO)
            .unwrap();
        f.process_reply(&ok_reply("10.0.0.9", 8), SimTime::ZERO);
        // MN moves: binding update installs a forward.
        f.install_forward(addr("10.0.0.9"), addr("30.0.0.1"), SimTime::from_secs(10));
        assert!(!f.has_visitor(addr("10.0.0.9"), SimTime::from_secs(10)));
        assert_eq!(
            f.forward_endpoint(addr("10.0.0.9"), SimTime::from_secs(11)),
            Some(addr("30.0.0.1"))
        );
        assert_eq!(f.counters().1, 1);
        // Forward expires after its lifetime.
        assert_eq!(
            f.forward_endpoint(addr("10.0.0.9"), SimTime::from_secs(16)),
            None
        );
        // And the entry was garbage-collected by the failed lookup.
        assert_eq!(
            f.forward_endpoint(addr("10.0.0.9"), SimTime::from_secs(11)),
            None
        );
    }

    #[test]
    fn expire_cleans_forwards() {
        let mut f = fa();
        f.install_forward(addr("10.0.0.9"), addr("30.0.0.1"), SimTime::ZERO);
        let (_, fw) = f.expire(SimTime::from_secs(10));
        assert_eq!(fw, 1);
    }
}
