//! Mobile IP control messages.

use mtnet_net::Addr;
use mtnet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Agent advertisement, periodically broadcast by a foreign (or home)
/// agent on its link (RFC 3344 §2.1; paper step 1(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentAdvertisement {
    /// The advertising agent's address.
    pub agent: Addr,
    /// The care-of address offered (FA-CoA mode: the FA's own address).
    pub coa: Addr,
    /// Maximum registration lifetime the agent will grant.
    pub max_lifetime: SimDuration,
    /// Advertisement sequence number (movement detection).
    pub seq: u64,
}

impl AgentAdvertisement {
    /// Wire size in bytes (ICMP router advertisement + mobility extension).
    pub const SIZE_BYTES: u32 = 48;
}

/// Registration request MN → (FA) → HA (paper step 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrationRequest {
    /// The mobile node's permanent home address.
    pub mn_home: Addr,
    /// Requested care-of address.
    pub coa: Addr,
    /// The home agent the request is for.
    pub ha: Addr,
    /// Requested lifetime.
    pub lifetime: SimDuration,
    /// Identification field matching replies to requests (and replay
    /// protection in the RFC).
    pub id: u64,
}

impl RegistrationRequest {
    /// Wire size in bytes (UDP registration request).
    pub const SIZE_BYTES: u32 = 60;

    /// A deregistration (lifetime zero) request for returning home.
    pub fn deregistration(mn_home: Addr, ha: Addr, id: u64) -> Self {
        RegistrationRequest {
            mn_home,
            coa: mn_home,
            ha,
            lifetime: SimDuration::ZERO,
            id,
        }
    }

    /// True if this request tears the binding down.
    pub fn is_deregistration(&self) -> bool {
        self.lifetime.is_zero()
    }
}

/// Reply codes (subset of RFC 3344 §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyCode {
    /// Registration accepted.
    Accepted,
    /// Denied by the home agent: unknown mobile node.
    DeniedUnknownHome,
    /// Denied: requested lifetime too long (granted lifetime returned).
    DeniedLifetimeTooLong,
    /// Denied by the foreign agent: visitor table full.
    DeniedFaBusy,
}

/// Registration reply HA → (FA) → MN (paper step 1(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrationReply {
    /// The mobile node this reply concerns.
    pub mn_home: Addr,
    /// Result code.
    pub code: ReplyCode,
    /// Granted lifetime (zero on denial or deregistration).
    pub lifetime: SimDuration,
    /// Echoed identification field.
    pub id: u64,
}

impl RegistrationReply {
    /// Wire size in bytes.
    pub const SIZE_BYTES: u32 = 44;

    /// True if the registration was accepted.
    pub fn accepted(&self) -> bool {
        self.code == ReplyCode::Accepted
    }
}

/// All Mobile IP control messages, as carried in simulation packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MipMessage {
    /// Periodic agent advertisement.
    Advertisement(AgentAdvertisement),
    /// Registration request (MN→FA or FA→HA leg).
    Request(RegistrationRequest),
    /// Registration reply (HA→FA or FA→MN leg).
    Reply(RegistrationReply),
    /// Binding update to a previous FA: forward in-flight packets to the
    /// new care-of address (smooth handoff, paper ref \[5]).
    BindingUpdate {
        /// The mobile node that moved.
        mn_home: Addr,
        /// Its new care-of address.
        new_coa: Addr,
    },
}

impl MipMessage {
    /// Wire size of the message payload in bytes.
    pub fn size_bytes(&self) -> u32 {
        match self {
            MipMessage::Advertisement(_) => AgentAdvertisement::SIZE_BYTES,
            MipMessage::Request(_) => RegistrationRequest::SIZE_BYTES,
            MipMessage::Reply(_) => RegistrationReply::SIZE_BYTES,
            MipMessage::BindingUpdate { .. } => 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn deregistration_has_zero_lifetime() {
        let r = RegistrationRequest::deregistration(addr("10.0.0.5"), addr("10.0.0.1"), 7);
        assert!(r.is_deregistration());
        assert_eq!(r.coa, r.mn_home, "CoA collapses to home address");
        assert_eq!(r.id, 7);
    }

    #[test]
    fn reply_accepted_flag() {
        let ok = RegistrationReply {
            mn_home: addr("1.1.1.1"),
            code: ReplyCode::Accepted,
            lifetime: SimDuration::from_secs(10),
            id: 1,
        };
        assert!(ok.accepted());
        let denied = RegistrationReply {
            code: ReplyCode::DeniedUnknownHome,
            ..ok
        };
        assert!(!denied.accepted());
    }

    #[test]
    fn sizes_are_positive_and_distinct_enough() {
        let adv = MipMessage::Advertisement(AgentAdvertisement {
            agent: addr("1.1.1.1"),
            coa: addr("1.1.1.1"),
            max_lifetime: SimDuration::from_secs(300),
            seq: 0,
        });
        let req = MipMessage::Request(RegistrationRequest::deregistration(
            addr("1.1.1.2"),
            addr("1.1.1.1"),
            0,
        ));
        assert!(adv.size_bytes() > 0);
        assert!(req.size_bytes() > adv.size_bytes() - 48);
        assert_eq!(
            MipMessage::BindingUpdate {
                mn_home: addr("1.1.1.2"),
                new_coa: addr("2.2.2.2")
            }
            .size_bytes(),
            40
        );
    }
}
