//! Simulated datagrams and IP-in-IP encapsulation.

use crate::addr::Addr;
use mtnet_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identifier (assigned by the traffic source or
/// protocol entity that creates the packet).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

/// Identifier of an application flow (one media stream / session).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FlowId(pub u64);

/// Why an encapsulation header was pushed — used for overhead accounting
/// and for deciding who may detunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TunnelKind {
    /// Home Agent → care-of address tunnel (Mobile IP, Fig 2.2).
    HomeAgent,
    /// Previous-FA → new-FA forwarding tunnel (smooth handoff, ref \[5]).
    SmoothHandoff,
    /// RSMC/gateway internal redirection (paper §4).
    Rsmc,
}

/// One IP-in-IP encapsulation header.
///
/// The byte cost of an outer header is [`EncapHeader::SIZE_BYTES`], counted
/// toward link transmission time while the header is on the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncapHeader {
    /// Tunnel entry point.
    pub outer_src: Addr,
    /// Tunnel exit point.
    pub outer_dst: Addr,
    /// Purpose of the tunnel.
    pub kind: TunnelKind,
}

impl EncapHeader {
    /// Size of a minimal outer IPv4 header in bytes.
    pub const SIZE_BYTES: u32 = 20;
}

/// A simulated datagram.
///
/// `P` is the caller's payload type — protocol crates use their own message
/// enums; application data uses a plain marker. The inner `src`/`dst` never
/// change in flight; tunneling pushes [`EncapHeader`]s instead, exactly like
/// IP-in-IP (RFC 2003), so the Home Agent's encapsulate/decapsulate cycle in
/// Fig 2.2 of the paper is structurally faithful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet<P> {
    /// Unique id.
    pub id: PacketId,
    /// Flow this packet belongs to (zero flow for control traffic).
    pub flow: FlowId,
    /// Per-flow sequence number (for loss/jitter accounting).
    pub seq: u64,
    /// Original (inner) source address.
    pub src: Addr,
    /// Original (inner) destination address.
    pub dst: Addr,
    /// Payload size in bytes, excluding network headers.
    pub payload_bytes: u32,
    /// Creation time at the source.
    pub created_at: SimTime,
    /// Number of hops traversed so far.
    pub hops: u32,
    /// Encapsulation stack; last entry is the outermost header.
    pub encap: Vec<EncapHeader>,
    /// The payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Size of the base (inner) IP header in bytes.
    pub const BASE_HEADER_BYTES: u32 = 20;

    /// Creates a packet with an empty encapsulation stack.
    pub fn new(
        id: PacketId,
        flow: FlowId,
        seq: u64,
        src: Addr,
        dst: Addr,
        payload_bytes: u32,
        created_at: SimTime,
        payload: P,
    ) -> Self {
        Packet {
            id,
            flow,
            seq,
            src,
            dst,
            payload_bytes,
            created_at,
            hops: 0,
            encap: Vec::new(),
            payload,
        }
    }

    /// The address the network should currently route on: the outermost
    /// tunnel destination if encapsulated, otherwise the inner destination.
    pub fn routing_dst(&self) -> Addr {
        self.encap.last().map_or(self.dst, |h| h.outer_dst)
    }

    /// Total on-wire size: payload + inner header + one outer header per
    /// active encapsulation level.
    pub fn wire_bytes(&self) -> u32 {
        self.payload_bytes
            + Self::BASE_HEADER_BYTES
            + EncapHeader::SIZE_BYTES * self.encap.len() as u32
    }

    /// True if at least one tunnel header is present.
    pub fn is_encapsulated(&self) -> bool {
        !self.encap.is_empty()
    }

    /// Pushes a tunnel header (encapsulation).
    pub fn encapsulate(&mut self, outer_src: Addr, outer_dst: Addr, kind: TunnelKind) {
        self.encap.push(EncapHeader {
            outer_src,
            outer_dst,
            kind,
        });
    }

    /// Pops the outermost tunnel header (decapsulation). Returns the header
    /// if one was present.
    pub fn decapsulate(&mut self) -> Option<EncapHeader> {
        self.encap.pop()
    }

    /// Records one forwarding hop.
    pub fn record_hop(&mut self) {
        self.hops += 1;
    }

    /// One-way delay experienced so far if delivered at `now`.
    pub fn delay_at(&self, now: SimTime) -> mtnet_sim::SimDuration {
        now.saturating_since(self.created_at)
    }

    /// Maps the payload, preserving every header field.
    pub fn map_payload<Q>(self, f: impl FnOnce(P) -> Q) -> Packet<Q> {
        Packet {
            id: self.id,
            flow: self.flow,
            seq: self.seq,
            src: self.src,
            dst: self.dst,
            payload_bytes: self.payload_bytes,
            created_at: self.created_at,
            hops: self.hops,
            encap: self.encap,
            payload: f(self.payload),
        }
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn packet() -> Packet<()> {
        Packet::new(
            PacketId(1),
            FlowId(9),
            42,
            addr("10.0.0.1"),
            addr("10.0.0.2"),
            1000,
            SimTime::from_secs(1),
            (),
        )
    }

    #[test]
    fn new_packet_unencapsulated() {
        let p = packet();
        assert!(!p.is_encapsulated());
        assert_eq!(p.routing_dst(), addr("10.0.0.2"));
        assert_eq!(p.wire_bytes(), 1020);
        assert_eq!(p.hops, 0);
    }

    #[test]
    fn encapsulation_changes_routing_dst_and_size() {
        let mut p = packet();
        p.encapsulate(addr("1.1.1.1"), addr("2.2.2.2"), TunnelKind::HomeAgent);
        assert!(p.is_encapsulated());
        assert_eq!(p.routing_dst(), addr("2.2.2.2"));
        assert_eq!(p.wire_bytes(), 1040);
        // inner addresses untouched
        assert_eq!(p.dst, addr("10.0.0.2"));
    }

    #[test]
    fn nested_tunnels_lifo() {
        let mut p = packet();
        p.encapsulate(addr("1.1.1.1"), addr("2.2.2.2"), TunnelKind::HomeAgent);
        p.encapsulate(addr("3.3.3.3"), addr("4.4.4.4"), TunnelKind::SmoothHandoff);
        assert_eq!(p.routing_dst(), addr("4.4.4.4"));
        let top = p.decapsulate().unwrap();
        assert_eq!(top.kind, TunnelKind::SmoothHandoff);
        assert_eq!(p.routing_dst(), addr("2.2.2.2"));
        p.decapsulate().unwrap();
        assert_eq!(p.routing_dst(), addr("10.0.0.2"));
        assert!(p.decapsulate().is_none());
    }

    #[test]
    fn delay_and_hops() {
        let mut p = packet();
        p.record_hop();
        p.record_hop();
        assert_eq!(p.hops, 2);
        assert_eq!(
            p.delay_at(SimTime::from_secs(3)),
            mtnet_sim::SimDuration::from_secs(2)
        );
        // Delivery "before" creation saturates to zero rather than panicking.
        assert_eq!(p.delay_at(SimTime::ZERO), mtnet_sim::SimDuration::ZERO);
    }

    #[test]
    fn map_payload_preserves_headers() {
        let mut p = packet();
        p.encapsulate(addr("1.1.1.1"), addr("2.2.2.2"), TunnelKind::Rsmc);
        let q = p.map_payload(|()| "hello");
        assert_eq!(q.payload, "hello");
        assert_eq!(q.id, PacketId(1));
        assert_eq!(q.seq, 42);
        assert!(q.is_encapsulated());
    }

    #[test]
    fn id_display() {
        assert_eq!(PacketId(7).to_string(), "pkt#7");
        assert_eq!(FlowId(7).to_string(), "flow#7");
    }
}
