//! Point-to-point link model: bandwidth, propagation delay, drop-tail queue.
//!
//! The model is the classic event-driven "virtual busy time" formulation:
//! a packet arriving at time `t` begins serialization at
//! `max(t, busy_until)`; if the implied queueing delay exceeds the
//! configured queue capacity the packet is dropped (drop-tail). No per-queue
//! events are needed, which keeps the simulator's event count proportional
//! to packets, not to queue operations.

use mtnet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// Signal propagation delay.
    pub propagation: SimDuration,
    /// Queue capacity in bytes (drop-tail beyond this backlog).
    pub queue_bytes: u32,
}

impl LinkConfig {
    /// A typical wired backbone link: 100 Mbit/s, 2 ms, 64 KiB queue.
    pub fn backbone() -> Self {
        LinkConfig {
            bandwidth_bps: 100_000_000,
            propagation: SimDuration::from_millis(2),
            queue_bytes: 64 * 1024,
        }
    }

    /// A typical access link: 10 Mbit/s, 1 ms, 32 KiB queue.
    pub fn access() -> Self {
        LinkConfig {
            bandwidth_bps: 10_000_000,
            propagation: SimDuration::from_millis(1),
            queue_bytes: 32 * 1024,
        }
    }

    /// A wide-area Internet path (e.g. foreign domain → home network):
    /// 45 Mbit/s, 25 ms, 128 KiB queue.
    pub fn wide_area() -> Self {
        LinkConfig {
            bandwidth_bps: 45_000_000,
            propagation: SimDuration::from_millis(25),
            queue_bytes: 128 * 1024,
        }
    }

    /// Serialization time for `bytes` on this link.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        assert!(self.bandwidth_bps > 0, "link bandwidth must be positive");
        // Fast path in u64: `bytes * 8e9` fits easily for real packet
        // sizes (up to ~2.3 GB); the u128 route covers the rest with the
        // same exact integer result.
        if bytes < (1 << 31) {
            SimDuration::from_nanos(u64::from(bytes) * 8_000_000_000 / self.bandwidth_bps)
        } else {
            let nanos = (u128::from(bytes) * 8 * 1_000_000_000) / u128::from(self.bandwidth_bps);
            SimDuration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64)
        }
    }
}

/// Per-link transmission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted and (eventually) delivered.
    pub tx_packets: u64,
    /// Bytes accepted.
    pub tx_bytes: u64,
    /// Packets dropped by the drop-tail queue.
    pub dropped_packets: u64,
}

impl LinkStats {
    /// Fraction of offered packets dropped.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.tx_packets + self.dropped_packets;
        if offered == 0 {
            0.0
        } else {
            self.dropped_packets as f64 / offered as f64
        }
    }
}

/// The outcome of offering one packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// Accepted; will arrive at the far end at the given instant.
    Delivered {
        /// Arrival time at the remote end of the link.
        at: SimTime,
    },
    /// Dropped by the full drop-tail queue.
    Dropped,
}

/// A unidirectional link. Construct two for a duplex connection.
///
/// ```
/// use mtnet_net::{Link, LinkConfig, TransmitOutcome};
/// use mtnet_sim::{SimTime, SimDuration};
///
/// let mut link = Link::new(LinkConfig {
///     bandwidth_bps: 8_000_000,             // 1 byte/us
///     propagation: SimDuration::from_millis(1),
///     queue_bytes: 10_000,
/// });
/// match link.transmit(SimTime::ZERO, 1000) {
///     TransmitOutcome::Delivered { at } => {
///         // 1000 us serialization + 1 ms propagation
///         assert_eq!(at, SimTime::from_millis(2));
///     }
///     TransmitOutcome::Dropped => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// `config.serialization(config.queue_bytes)`, precomputed: the
    /// drop-tail threshold is consulted on every transmit and is a pure
    /// function of the static config.
    max_backlog: SimDuration,
    busy_until: SimTime,
    stats: LinkStats,
    /// Administrative state: a downed link (fault injection) refuses all
    /// traffic until restored.
    up: bool,
}

impl Link {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth is zero.
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.bandwidth_bps > 0, "link bandwidth must be positive");
        Link {
            config,
            max_backlog: config.serialization(config.queue_bytes),
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
            up: true,
        }
    }

    /// Whether the link is administratively up (links start up; fault
    /// injection takes them down and back).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Sets the administrative state. A downed link drops every offered
    /// packet; routing must be recomputed by the owner (see
    /// [`crate::Topology::set_link_up`], which also bumps the topology
    /// generation).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Transmission counters so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Instantaneous backlog (queueing delay a new arrival would see) at
    /// `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Offers a packet of `wire_bytes` to the link at time `now`.
    ///
    /// Returns the delivery time at the far end, or `Dropped` if the
    /// drop-tail queue is full.
    pub fn transmit(&mut self, now: SimTime, wire_bytes: u32) -> TransmitOutcome {
        if !self.up {
            self.stats.dropped_packets += 1;
            return TransmitOutcome::Dropped;
        }
        let max_backlog = self.max_backlog;
        let backlog = self.backlog(now);
        if backlog > max_backlog {
            self.stats.dropped_packets += 1;
            return TransmitOutcome::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + self.config.serialization(wire_bytes);
        self.busy_until = done;
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += u64::from(wire_bytes);
        TransmitOutcome::Delivered {
            at: done + self.config.propagation,
        }
    }

    /// Resets queue state and statistics (between experiment repetitions).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.stats = LinkStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_mbps() -> Link {
        // 1 Mbit/s => 1000 bytes takes 8 ms.
        Link::new(LinkConfig {
            bandwidth_bps: 1_000_000,
            propagation: SimDuration::from_millis(5),
            queue_bytes: 3000,
        })
    }

    #[test]
    fn idle_link_delivery_time() {
        let mut l = one_mbps();
        match l.transmit(SimTime::ZERO, 1000) {
            TransmitOutcome::Delivered { at } => {
                assert_eq!(at, SimTime::from_millis(13)); // 8 ser + 5 prop
            }
            TransmitOutcome::Dropped => panic!("dropped on idle link"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = one_mbps();
        let t0 = SimTime::ZERO;
        let TransmitOutcome::Delivered { at: a1 } = l.transmit(t0, 1000) else {
            panic!()
        };
        let TransmitOutcome::Delivered { at: a2 } = l.transmit(t0, 1000) else {
            panic!()
        };
        // Second packet serializes after the first: 16 ms + 5 ms.
        assert_eq!(a1, SimTime::from_millis(13));
        assert_eq!(a2, SimTime::from_millis(21));
    }

    #[test]
    fn drop_tail_when_queue_full() {
        let mut l = one_mbps(); // queue 3000 bytes => 24 ms max backlog
        let t0 = SimTime::ZERO;
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.transmit(t0, 1000) {
                TransmitOutcome::Delivered { .. } => delivered += 1,
                TransmitOutcome::Dropped => dropped += 1,
            }
        }
        assert!(dropped > 0, "expected drops");
        assert!(delivered >= 3, "queue should hold several packets");
        assert_eq!(l.stats().dropped_packets, dropped);
        assert_eq!(l.stats().tx_packets, delivered);
        assert!(l.stats().drop_rate() > 0.0);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = one_mbps();
        for _ in 0..4 {
            l.transmit(SimTime::ZERO, 1000);
        }
        // After enough time the backlog clears and packets flow again.
        let later = SimTime::from_millis(100);
        assert_eq!(l.backlog(later), SimDuration::ZERO);
        assert!(matches!(
            l.transmit(later, 1000),
            TransmitOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn serialization_math() {
        let c = LinkConfig::backbone();
        // 100 Mbit/s: 1250 bytes = 100 us
        assert_eq!(c.serialization(1250), SimDuration::from_micros(100));
        assert_eq!(c.serialization(0), SimDuration::ZERO);
    }

    #[test]
    fn presets_are_sane() {
        for c in [
            LinkConfig::backbone(),
            LinkConfig::access(),
            LinkConfig::wide_area(),
        ] {
            assert!(c.bandwidth_bps > 0);
            assert!(!c.propagation.is_zero());
            assert!(c.queue_bytes > 0);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut l = one_mbps();
        l.transmit(SimTime::ZERO, 1000);
        l.reset();
        assert_eq!(l.stats().tx_packets, 0);
        assert_eq!(l.backlog(SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn drop_rate_zero_when_unused() {
        assert_eq!(LinkStats::default().drop_rate(), 0.0);
    }

    #[test]
    fn down_link_drops_everything_until_restored() {
        let mut l = one_mbps();
        assert!(l.is_up());
        l.set_up(false);
        assert!(!l.is_up());
        assert_eq!(l.transmit(SimTime::ZERO, 100), TransmitOutcome::Dropped);
        assert_eq!(l.stats().dropped_packets, 1);
        assert_eq!(l.stats().tx_packets, 0);
        l.set_up(true);
        assert!(matches!(
            l.transmit(SimTime::from_millis(1), 100),
            TransmitOutcome::Delivered { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        Link::new(LinkConfig {
            bandwidth_bps: 0,
            propagation: SimDuration::ZERO,
            queue_bytes: 1,
        });
    }
}
