//! Generation-keyed shortest-path cache: one Dijkstra per source per
//! topology version, O(1) queries afterwards.
//!
//! [`Topology::next_hop_on_path`] re-runs a full Dijkstra on every call —
//! fine for building routing tables once, ruinous when a simulation asks
//! for the next hop of every packet at every router. [`RouteCache`]
//! computes each source's predecessor tree **once per topology
//! generation** ([`Topology::generation`] is bumped on any node/link
//! addition) and then answers `next_hop` / `hop_count` / `path_delay` with
//! two array reads. Results are bit-identical to the naive methods: both
//! derive from the same predecessor array, so even tie-breaks between
//! equal-cost paths agree.

use crate::topology::{NodeId, Topology};
use mtnet_sim::SimDuration;

/// Per-source shortest-path answers, flattened for O(1) lookup.
#[derive(Debug, Clone)]
struct SourceTree {
    /// First hop on the min-delay path to each destination (`None` when
    /// unreachable or the destination is the source itself).
    first_hop: Vec<Option<NodeId>>,
    /// Hop count to each destination; `u32::MAX` marks unreachable.
    hops: Vec<u32>,
    /// Total propagation delay in nanoseconds; `u64::MAX` marks
    /// unreachable.
    delay_ns: Vec<u64>,
}

impl SourceTree {
    /// Builds the flattened tree from one Dijkstra pass, resolving every
    /// destination's first hop with memoized predecessor walks (O(n)
    /// total).
    fn build(topo: &Topology, src: NodeId) -> SourceTree {
        let best = topo.dijkstra(src);
        let n = best.len();
        let mut tree = SourceTree {
            first_hop: vec![None; n],
            hops: vec![u32::MAX; n],
            delay_ns: vec![u64::MAX; n],
        };
        let s = src.0 as usize;
        tree.hops[s] = 0;
        tree.delay_ns[s] = 0;
        let mut stack = Vec::new();
        for dst in 0..n {
            if tree.hops[dst] != u32::MAX || best[dst].is_none() {
                continue; // already resolved, or unreachable
            }
            // Climb predecessors until hitting a resolved node (the source
            // counts: hops[src] = 0), stacking the unresolved chain.
            debug_assert!(stack.is_empty());
            let mut cur = dst;
            while tree.hops[cur] == u32::MAX {
                stack.push(cur);
                let (_, pred) = best[cur].expect("reachable chain");
                cur = pred.0 as usize;
            }
            // Unwind: each stacked node is one hop past its predecessor.
            while let Some(node) = stack.pop() {
                let (dist, pred) = best[node].expect("reachable chain");
                let p = pred.0 as usize;
                tree.hops[node] = tree.hops[p] + 1;
                tree.delay_ns[node] = dist;
                tree.first_hop[node] = if p == s {
                    Some(NodeId(node as u32))
                } else {
                    tree.first_hop[p]
                };
            }
        }
        tree
    }
}

/// A lazily-built, lazily-invalidated cache of min-delay routes.
///
/// Holds one flattened predecessor tree per source node, built on first use and
/// discarded wholesale when the [`Topology::generation`] it was built
/// against no longer matches — so callers never have to remember to
/// invalidate, and an unchanged topology pays each source's Dijkstra
/// exactly once.
///
/// ```
/// use mtnet_net::{Addr, LinkConfig, RouteCache, Topology};
/// let mut topo = Topology::new();
/// let a = topo.add_node("10.0.0.1".parse().unwrap());
/// let b = topo.add_node("10.0.0.2".parse().unwrap());
/// let c = topo.add_node("10.0.0.3".parse().unwrap());
/// topo.connect(a, b, LinkConfig::backbone());
/// topo.connect(b, c, LinkConfig::backbone());
/// let mut routes = RouteCache::new();
/// assert_eq!(routes.next_hop(&topo, a, c), Some(b));
/// assert_eq!(routes.hop_count(&topo, a, c), Some(2));
/// // Mutating the topology invalidates the cache on the next query.
/// let d = topo.add_node("10.0.0.4".parse().unwrap());
/// topo.connect(c, d, LinkConfig::backbone());
/// assert_eq!(routes.hop_count(&topo, a, d), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteCache {
    /// Topology generation the cached trees were built against.
    generation: u64,
    /// `trees[src]`, built on demand.
    trees: Vec<Option<SourceTree>>,
}

impl RouteCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RouteCache::default()
    }

    /// Number of source trees currently materialized (diagnostics).
    pub fn cached_sources(&self) -> usize {
        self.trees.iter().filter(|t| t.is_some()).count()
    }

    /// Returns the source tree for `src`, (re)building as needed.
    fn tree(&mut self, topo: &Topology, src: NodeId) -> &SourceTree {
        if self.generation != topo.generation() || self.trees.len() != topo.node_count() {
            self.generation = topo.generation();
            self.trees.clear();
            self.trees.resize(topo.node_count(), None);
        }
        let slot = &mut self.trees[src.0 as usize];
        slot.get_or_insert_with(|| SourceTree::build(topo, src))
    }

    /// First hop on the min-delay path `src → dst`; `None` when
    /// unreachable or `src == dst`. Identical to
    /// [`Topology::next_hop_on_path`], amortized O(1).
    ///
    /// # Panics
    ///
    /// Panics if either node is unknown.
    pub fn next_hop(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<NodeId> {
        self.tree(topo, src).first_hop[dst.0 as usize]
    }

    /// Number of hops on the min-delay path (`Some(0)` when `src == dst`);
    /// `None` when unreachable. Identical to [`Topology::hop_count`],
    /// amortized O(1).
    ///
    /// # Panics
    ///
    /// Panics if either node is unknown.
    pub fn hop_count(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<u32> {
        match self.tree(topo, src).hops[dst.0 as usize] {
            u32::MAX => None,
            h => Some(h),
        }
    }

    /// Total propagation delay of the min-delay path (`Some(0)` when
    /// `src == dst`); `None` when unreachable. Amortized O(1).
    ///
    /// # Panics
    ///
    /// Panics if either node is unknown.
    pub fn path_delay(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        match self.tree(topo, src).delay_ns[dst.0 as usize] {
            u64::MAX => None,
            ns => Some(SimDuration::from_nanos(ns)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::Addr;
    use mtnet_sim::SimDuration;

    fn addr(i: u8) -> Addr {
        Addr::from_octets(10, 0, 0, i)
    }

    fn line_plus_slow_direct() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        let c = t.add_node(addr(3));
        let fast = LinkConfig {
            propagation: SimDuration::from_millis(1),
            ..LinkConfig::backbone()
        };
        let slow = LinkConfig {
            propagation: SimDuration::from_millis(50),
            ..LinkConfig::backbone()
        };
        t.connect(a, b, fast);
        t.connect(b, c, fast);
        t.connect(a, c, slow);
        (t, a, b, c)
    }

    #[test]
    fn matches_naive_next_hop_and_hop_count() {
        let (t, ..) = line_plus_slow_direct();
        let mut cache = RouteCache::new();
        for s in 0..t.node_count() as u32 {
            for d in 0..t.node_count() as u32 {
                let (s, d) = (NodeId(s), NodeId(d));
                assert_eq!(cache.next_hop(&t, s, d), t.next_hop_on_path(s, d));
                assert_eq!(cache.hop_count(&t, s, d), t.hop_count(s, d));
            }
        }
    }

    #[test]
    fn path_delay_prefers_fast_multihop() {
        let (t, a, _, c) = line_plus_slow_direct();
        let mut cache = RouteCache::new();
        assert_eq!(
            cache.path_delay(&t, a, c),
            Some(SimDuration::from_millis(2))
        );
        assert_eq!(cache.path_delay(&t, a, a), Some(SimDuration::ZERO));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        let mut cache = RouteCache::new();
        assert_eq!(cache.next_hop(&t, a, b), None);
        assert_eq!(cache.hop_count(&t, a, b), None);
        assert_eq!(cache.path_delay(&t, a, b), None);
    }

    #[test]
    fn mutation_invalidates_lazily() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        let mut cache = RouteCache::new();
        assert_eq!(cache.next_hop(&t, a, b), None);
        // New structure, same cache object: answers must track it.
        t.connect(a, b, LinkConfig::backbone());
        assert_eq!(cache.next_hop(&t, a, b), Some(b));
        let c = t.add_node(addr(3));
        t.connect(b, c, LinkConfig::backbone());
        assert_eq!(cache.next_hop(&t, a, c), Some(b));
        assert_eq!(cache.hop_count(&t, a, c), Some(2));
    }

    #[test]
    fn routes_resolved_during_an_outage_do_not_survive_restoration() {
        // Regression: the cache tree built *while* a link is down encodes
        // the detour. If restoring the link failed to bump the topology
        // generation, those stale detour next-hops would be served
        // forever. Both edges of the down window must invalidate.
        let (mut t, a, b, c) = line_plus_slow_direct();
        let mut cache = RouteCache::new();
        assert_eq!(cache.next_hop(&t, a, c), Some(b));
        let ab = t.link_between(a, b).unwrap();
        t.set_link_up(ab, false).unwrap();
        // Resolved mid-outage: the slow direct link is all that's left.
        assert_eq!(cache.next_hop(&t, a, c), Some(c));
        t.set_link_up(ab, true).unwrap();
        // Restoration must evict the detour tree: fresh Dijkstra agrees.
        assert_eq!(cache.next_hop(&t, a, c), t.next_hop_on_path(a, c));
        assert_eq!(cache.next_hop(&t, a, c), Some(b));
        assert_eq!(
            cache.path_delay(&t, a, c),
            Some(SimDuration::from_millis(2))
        );
    }

    #[test]
    fn caches_one_tree_per_source() {
        let (t, a, b, _) = line_plus_slow_direct();
        let mut cache = RouteCache::new();
        assert_eq!(cache.cached_sources(), 0);
        cache.next_hop(&t, a, b);
        cache.next_hop(&t, a, NodeId(2));
        assert_eq!(cache.cached_sources(), 1, "one source queried twice");
        cache.next_hop(&t, b, a);
        assert_eq!(cache.cached_sources(), 2);
    }
}
