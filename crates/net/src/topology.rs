//! Network topology: a directed graph of nodes and links, with shortest
//! paths for auto-populating routing tables.

use crate::addr::{Addr, Prefix};
use crate::link::{Link, LinkConfig};
use crate::routing::RoutingTable;
use mtnet_sim::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Identifier of a node (router, host, base station…) in a [`Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a unidirectional link in a [`Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Errors returned by [`Topology`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Referenced a node id that was never added.
    UnknownNode(NodeId),
    /// Referenced a link id that was never added.
    UnknownLink(LinkId),
    /// No link connects the two nodes in the requested direction.
    NoLink(NodeId, NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::NoLink(a, b) => write!(f, "no link from {a} to {b}"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[derive(Debug, Clone)]
struct NodeEntry {
    addr: Addr,
    /// Outgoing adjacency: (neighbor, link id).
    out: Vec<(NodeId, LinkId)>,
}

#[derive(Debug)]
struct LinkEntry {
    from: NodeId,
    to: NodeId,
    link: Link,
}

/// A directed graph of nodes and [`Link`]s.
///
/// The topology owns the mutable link state (queues, statistics); the
/// simulation asks it to transmit packets hop by hop. Shortest paths (by
/// propagation delay) can be computed to fill [`RoutingTable`]s, or — on
/// hot paths — served O(1) from a [`crate::RouteCache`] keyed to this
/// topology's [`generation`](Topology::generation).
///
/// ```
/// use mtnet_net::{Topology, LinkConfig, Addr};
/// let mut topo = Topology::new();
/// let a = topo.add_node("10.0.0.1".parse().unwrap());
/// let b = topo.add_node("10.0.0.2".parse().unwrap());
/// topo.connect(a, b, LinkConfig::backbone());
/// assert_eq!(topo.next_hop_on_path(a, b), Some(b));
/// ```
#[derive(Debug, Default)]
pub struct Topology {
    nodes: Vec<NodeEntry>,
    links: Vec<LinkEntry>,
    /// Structure version: bumped by every mutation that can change
    /// shortest paths — node/link additions and administrative up/down
    /// transitions (see [`set_link_up`](Topology::set_link_up)) — so
    /// shortest-path caches can invalidate lazily. Link *traffic* state
    /// (queues, stats) is not structure — it never affects Dijkstra
    /// weights.
    generation: u64,
    /// O(1) reverse index for [`node_by_addr`](Topology::node_by_addr);
    /// first-added node wins on duplicate addresses.
    by_addr: FxHashMap<Addr, NodeId>,
    /// O(1) index for [`link_between`](Topology::link_between);
    /// first-added link wins on parallel edges (matching the adjacency
    /// scan it replaces — hub nodes in metro worlds have hundreds of
    /// out-links, and the lookup sits on the per-hop forwarding path).
    by_pair: FxHashMap<(NodeId, NodeId), LinkId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Structure version. Any mutation that can change shortest paths
    /// (adding nodes or links, taking a link down or up) bumps it;
    /// [`crate::RouteCache`] compares generations to invalidate lazily.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Adds a node with the given address; returns its id.
    pub fn add_node(&mut self, addr: Addr) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeEntry {
            addr,
            out: Vec::new(),
        });
        self.by_addr.entry(addr).or_insert(id);
        self.generation += 1;
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The address assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn addr_of(&self, node: NodeId) -> Addr {
        self.nodes[node.0 as usize].addr
    }

    /// Finds the node owning `addr`, if any (O(1); the first-added node
    /// wins if an address was reused).
    pub fn node_by_addr(&self, addr: Addr) -> Option<NodeId> {
        self.by_addr.get(&addr).copied()
    }

    /// Adds a unidirectional link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either node is unknown.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!((from.0 as usize) < self.nodes.len(), "unknown node {from}");
        assert!((to.0 as usize) < self.nodes.len(), "unknown node {to}");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkEntry {
            from,
            to,
            link: Link::new(config),
        });
        self.nodes[from.0 as usize].out.push((to, id));
        self.by_pair.entry((from, to)).or_insert(id);
        self.generation += 1;
        id
    }

    /// Adds a duplex connection (two unidirectional links with the same
    /// config). Returns `(forward, reverse)` link ids.
    pub fn connect(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> (LinkId, LinkId) {
        (self.add_link(a, b, config), self.add_link(b, a, config))
    }

    /// The link from `from` to `to`, if one exists (O(1); the
    /// first-added link wins if parallel edges exist).
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.by_pair.get(&(from, to)).copied()
    }

    /// Mutable access to a link's queue/statistics state.
    pub fn link_mut(&mut self, id: LinkId) -> Result<&mut Link, TopologyError> {
        self.links
            .get_mut(id.0 as usize)
            .map(|e| &mut e.link)
            .ok_or(TopologyError::UnknownLink(id))
    }

    /// Shared access to a link.
    pub fn link(&self, id: LinkId) -> Result<&Link, TopologyError> {
        self.links
            .get(id.0 as usize)
            .map(|e| &e.link)
            .ok_or(TopologyError::UnknownLink(id))
    }

    /// Sets a link's administrative state, bumping the topology
    /// generation on every **actual** transition — down *and*, crucially,
    /// back up. Routes resolved while the link was down are just as stale
    /// after restoration as routes resolved before the failure; a bump on
    /// both edges of the window keeps [`crate::RouteCache`] honest in each
    /// direction. Returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownLink`] for an id that was never
    /// added.
    pub fn set_link_up(&mut self, id: LinkId, up: bool) -> Result<bool, TopologyError> {
        let entry = self
            .links
            .get_mut(id.0 as usize)
            .ok_or(TopologyError::UnknownLink(id))?;
        if entry.link.is_up() == up {
            return Ok(false);
        }
        entry.link.set_up(up);
        self.generation += 1;
        Ok(true)
    }

    /// Endpoints of a link as `(from, to)`.
    pub fn link_endpoints(&self, id: LinkId) -> Result<(NodeId, NodeId), TopologyError> {
        self.links
            .get(id.0 as usize)
            .map(|e| (e.from, e.to))
            .ok_or(TopologyError::UnknownLink(id))
    }

    /// Outgoing neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .get(node.0 as usize)
            .into_iter()
            .flat_map(|n| n.out.iter().map(|&(to, _)| to))
    }

    /// Dijkstra from `src`, weighted by link propagation delay (nanos),
    /// returning the predecessor map.
    pub(crate) fn dijkstra(&self, src: NodeId) -> Vec<Option<(u64, NodeId)>> {
        // dist/pred indexed by node id; pred[src] = src.
        let n = self.nodes.len();
        let mut best: Vec<Option<(u64, NodeId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        best[src.0 as usize] = Some((0, src));
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            match best[u.0 as usize] {
                Some((bd, _)) if bd < d => continue,
                _ => {}
            }
            for &(v, lid) in &self.nodes[u.0 as usize].out {
                let link = &self.links[lid.0 as usize].link;
                if !link.is_up() {
                    continue; // downed links carry no routes
                }
                let w = link.config().propagation.as_nanos().max(1);
                let nd = d.saturating_add(w);
                let better = match best[v.0 as usize] {
                    None => true,
                    Some((bd, _)) => nd < bd,
                };
                if better {
                    best[v.0 as usize] = Some((nd, u));
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        best
    }

    /// First hop on the min-delay path `src → dst`, or `None` if
    /// unreachable (or `src == dst`).
    pub fn next_hop_on_path(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        let best = self.dijkstra(src);
        // Walk predecessors back from dst to src.
        let mut cur = dst;
        loop {
            let (_, pred) = best[cur.0 as usize]?;
            if pred == src {
                return Some(cur);
            }
            if pred == cur {
                return None; // src unreachable marker
            }
            cur = pred;
        }
    }

    /// Number of hops on the min-delay path, or `None` if unreachable.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        if src == dst {
            return Some(0);
        }
        let best = self.dijkstra(src);
        let mut cur = dst;
        let mut hops = 0;
        loop {
            let (_, pred) = best[cur.0 as usize]?;
            hops += 1;
            if pred == src {
                return Some(hops);
            }
            cur = pred;
        }
    }

    /// Builds a complete host-route routing table for `node`: one `/32`
    /// route per other node via the min-delay first hop, plus routes for
    /// any `(prefix, owner)` pairs given in `prefixes`.
    pub fn build_routing_table(&self, node: NodeId, prefixes: &[(Prefix, NodeId)]) -> RoutingTable {
        let mut table = RoutingTable::new();
        let best = self.dijkstra(node);
        let first_hop = |dst: NodeId| -> Option<NodeId> {
            if dst == node {
                return None;
            }
            let mut cur = dst;
            loop {
                let (_, pred) = best[cur.0 as usize]?;
                if pred == node {
                    return Some(cur);
                }
                cur = pred;
            }
        };
        for (i, other) in self.nodes.iter().enumerate() {
            let dst = NodeId(i as u32);
            if let Some(hop) = first_hop(dst) {
                table.insert(Prefix::host(other.addr), hop);
            }
        }
        for &(prefix, owner) in prefixes {
            if owner == node {
                continue;
            }
            if let Some(hop) = first_hop(owner) {
                table.insert(prefix, hop);
            }
        }
        table
    }

    /// Builds routing tables for every node at once.
    pub fn build_all_routing_tables(
        &self,
        prefixes: &[(Prefix, NodeId)],
    ) -> HashMap<NodeId, RoutingTable> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .map(|n| (n, self.build_routing_table(n, prefixes)))
            .collect()
    }

    /// Resets all link queues and statistics.
    pub fn reset_links(&mut self) {
        for e in &mut self.links {
            e.link.reset();
        }
    }

    /// Minimum propagation delay over links whose endpoints `group`
    /// assigns to different groups — the conservative lookahead of a
    /// partitioned simulation: nothing executed in one group can reach
    /// another sooner than this. Administrative link state is ignored
    /// (a downed boundary link may come back up mid-window), and queue
    /// and transmission delays only ever *add* to propagation, so the
    /// bound is safe. `None` when no link crosses the partition.
    pub fn min_cross_partition_delay(
        &self,
        group: impl Fn(NodeId) -> u32,
    ) -> Option<mtnet_sim::SimDuration> {
        self.links
            .iter()
            .filter(|e| group(e.from) != group(e.to))
            .map(|e| e.link.config().propagation)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtnet_sim::SimDuration;

    fn addr(i: u8) -> Addr {
        Addr::from_octets(10, 0, 0, i)
    }

    /// a - b - c line plus a slow direct a-c path.
    fn line_plus_slow_direct() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        let c = t.add_node(addr(3));
        let fast = LinkConfig {
            propagation: SimDuration::from_millis(1),
            ..LinkConfig::backbone()
        };
        let slow = LinkConfig {
            propagation: SimDuration::from_millis(50),
            ..LinkConfig::backbone()
        };
        t.connect(a, b, fast);
        t.connect(b, c, fast);
        t.connect(a, c, slow);
        (t, a, b, c)
    }

    #[test]
    fn add_and_query_nodes() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.addr_of(a), addr(1));
        assert_eq!(t.node_by_addr(addr(1)), Some(a));
        assert_eq!(t.node_by_addr(addr(9)), None);
    }

    #[test]
    fn connect_creates_duplex() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        let (f, r) = t.connect(a, b, LinkConfig::backbone());
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.link_endpoints(f).unwrap(), (a, b));
        assert_eq!(t.link_endpoints(r).unwrap(), (b, a));
        assert_eq!(t.link_between(a, b), Some(f));
        assert_eq!(t.link_between(b, a), Some(r));
    }

    #[test]
    fn dijkstra_prefers_low_delay_multihop() {
        let (t, a, b, c) = line_plus_slow_direct();
        // 2 ms via b beats 50 ms direct.
        assert_eq!(t.next_hop_on_path(a, c), Some(b));
        assert_eq!(t.hop_count(a, c), Some(2));
    }

    #[test]
    fn next_hop_self_is_none() {
        let (t, a, _, _) = line_plus_slow_direct();
        assert_eq!(t.next_hop_on_path(a, a), None);
        assert_eq!(t.hop_count(a, a), Some(0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        // no links
        assert_eq!(t.next_hop_on_path(a, b), None);
        assert_eq!(t.hop_count(a, b), None);
    }

    #[test]
    fn directed_link_is_one_way() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        t.add_link(a, b, LinkConfig::backbone());
        assert_eq!(t.next_hop_on_path(a, b), Some(b));
        assert_eq!(t.next_hop_on_path(b, a), None);
    }

    #[test]
    fn routing_tables_route_everywhere() {
        let (t, a, b, c) = line_plus_slow_direct();
        let table = t.build_routing_table(a, &[]);
        assert_eq!(table.lookup(addr(2)), Some(b));
        assert_eq!(table.lookup(addr(3)), Some(b), "should prefer fast path");
        // No route to self.
        assert_eq!(table.lookup(addr(1)), None);
        let all = t.build_all_routing_tables(&[]);
        assert_eq!(all.len(), 3);
        assert_eq!(all[&c].lookup(addr(1)), Some(b));
    }

    #[test]
    fn routing_table_includes_prefix_owners() {
        let (t, a, b, c) = line_plus_slow_direct();
        let home: Prefix = "192.168.0.0/16".parse().unwrap();
        let table = t.build_routing_table(a, &[(home, c)]);
        assert_eq!(table.lookup("192.168.4.4".parse().unwrap()), Some(b));
        // Owner's own table skips its own prefix.
        let own = t.build_routing_table(c, &[(home, c)]);
        assert_eq!(own.lookup("192.168.4.4".parse().unwrap()), None);
    }

    #[test]
    fn link_mut_and_errors() {
        let (mut t, ..) = line_plus_slow_direct();
        assert!(t.link_mut(LinkId(0)).is_ok());
        assert_eq!(
            t.link_mut(LinkId(999)).unwrap_err(),
            TopologyError::UnknownLink(LinkId(999))
        );
        let e = TopologyError::NoLink(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("no link"));
    }

    #[test]
    fn downed_link_is_routed_around_and_restored() {
        let (mut t, a, b, c) = line_plus_slow_direct();
        // Fast path a-b-c wins while healthy.
        assert_eq!(t.next_hop_on_path(a, c), Some(b));
        let ab = t.link_between(a, b).unwrap();
        assert!(t.set_link_up(ab, false).unwrap());
        // Only the slow direct path remains.
        assert_eq!(t.next_hop_on_path(a, c), Some(c));
        assert!(t.set_link_up(ab, true).unwrap());
        assert_eq!(t.next_hop_on_path(a, c), Some(b));
    }

    #[test]
    fn set_link_up_bumps_generation_on_both_transitions_only() {
        let (mut t, a, b, _) = line_plus_slow_direct();
        let ab = t.link_between(a, b).unwrap();
        let g0 = t.generation();
        // No-op transitions must not invalidate caches.
        assert!(!t.set_link_up(ab, true).unwrap());
        assert_eq!(t.generation(), g0);
        assert!(t.set_link_up(ab, false).unwrap());
        assert_eq!(t.generation(), g0 + 1);
        assert!(!t.set_link_up(ab, false).unwrap());
        assert_eq!(t.generation(), g0 + 1);
        // The restore edge bumps too: routes resolved during the outage
        // are stale the moment the link returns.
        assert!(t.set_link_up(ab, true).unwrap());
        assert_eq!(t.generation(), g0 + 2);
        assert!(matches!(
            t.set_link_up(LinkId(999), false),
            Err(TopologyError::UnknownLink(_))
        ));
    }

    #[test]
    fn fully_partitioned_node_is_unreachable() {
        let mut t = Topology::new();
        let a = t.add_node(addr(1));
        let b = t.add_node(addr(2));
        let (f, r) = t.connect(a, b, LinkConfig::backbone());
        t.set_link_up(f, false).unwrap();
        t.set_link_up(r, false).unwrap();
        assert_eq!(t.next_hop_on_path(a, b), None);
        assert_eq!(t.hop_count(a, b), None);
    }

    #[test]
    fn min_cross_partition_delay_picks_the_boundary_minimum() {
        let (t, a, _, _) = line_plus_slow_direct();
        // Put `a` alone in group 1: crossings are a-b (1 ms, duplex) and
        // a-c (50 ms, duplex).
        let d = t.min_cross_partition_delay(|n| u32::from(n == a));
        assert_eq!(d, Some(SimDuration::from_millis(1)));
        // Everything in one group: no crossing.
        assert_eq!(t.min_cross_partition_delay(|_| 0), None);
    }

    #[test]
    fn reset_links_clears_stats() {
        let (mut t, a, b, _) = line_plus_slow_direct();
        let lid = t.link_between(a, b).unwrap();
        t.link_mut(lid)
            .unwrap()
            .transmit(mtnet_sim::SimTime::ZERO, 100);
        assert_eq!(t.link(lid).unwrap().stats().tx_packets, 1);
        t.reset_links();
        assert_eq!(t.link(lid).unwrap().stats().tx_packets, 0);
    }
}
