//! Longest-prefix-match forwarding tables.

use crate::addr::{Addr, Prefix};
use crate::topology::NodeId;
use std::collections::HashMap;

/// A longest-prefix-match routing table mapping prefixes to next-hop nodes.
///
/// Entries are stored per prefix length, so lookup scans at most 33 buckets
/// from most- to least-specific — simple, predictable, and fast enough for
/// the topology sizes the experiments use (tens of routers).
///
/// ```
/// use mtnet_net::{RoutingTable, NodeId};
/// let mut t = RoutingTable::new();
/// t.set_default(NodeId(0));
/// t.insert("10.0.0.0/8".parse().unwrap(), NodeId(1));
/// assert_eq!(t.lookup("10.9.9.9".parse().unwrap()), Some(NodeId(1)));
/// assert_eq!(t.lookup("8.8.8.8".parse().unwrap()), Some(NodeId(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    /// buckets[len] maps canonical network address -> next hop.
    buckets: Vec<HashMap<Addr, NodeId>>,
}

impl RoutingTable {
    /// Creates an empty table (no default route).
    pub fn new() -> Self {
        RoutingTable {
            buckets: (0..=32).map(|_| HashMap::new()).collect(),
        }
    }

    /// Inserts or replaces a route. Returns the previous next hop, if any.
    pub fn insert(&mut self, prefix: Prefix, next_hop: NodeId) -> Option<NodeId> {
        self.buckets[prefix.len() as usize].insert(prefix.network(), next_hop)
    }

    /// Installs the default route (`0.0.0.0/0`).
    pub fn set_default(&mut self, next_hop: NodeId) -> Option<NodeId> {
        self.insert(Prefix::DEFAULT, next_hop)
    }

    /// Removes a route. Returns the removed next hop, if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<NodeId> {
        self.buckets[prefix.len() as usize].remove(&prefix.network())
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Addr) -> Option<NodeId> {
        for len in (0..=32u8).rev() {
            let network = Prefix::new(dst, len).network();
            if let Some(&hop) = self.buckets[len as usize].get(&network) {
                return Some(hop);
            }
        }
        None
    }

    /// The specific prefix that would match `dst`, with its next hop.
    pub fn lookup_entry(&self, dst: Addr) -> Option<(Prefix, NodeId)> {
        for len in (0..=32u8).rev() {
            let p = Prefix::new(dst, len);
            if let Some(&hop) = self.buckets[len as usize].get(&p.network()) {
                return Some((p, hop));
            }
        }
        None
    }

    /// Total number of routes (including the default, if set).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(HashMap::len).sum()
    }

    /// True when the table has no routes at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all routes as `(prefix, next_hop)`.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, NodeId)> + '_ {
        self.buckets.iter().enumerate().flat_map(|(len, bucket)| {
            bucket
                .iter()
                .map(move |(&net, &hop)| (Prefix::new(net, len as u8), hop))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }
    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.insert(pfx("10.0.0.0/8"), NodeId(1));
        t.insert(pfx("10.1.0.0/16"), NodeId(2));
        t.insert(pfx("10.1.2.0/24"), NodeId(3));
        assert_eq!(t.lookup(addr("10.1.2.3")), Some(NodeId(3)));
        assert_eq!(t.lookup(addr("10.1.9.9")), Some(NodeId(2)));
        assert_eq!(t.lookup(addr("10.200.0.1")), Some(NodeId(1)));
        assert_eq!(t.lookup(addr("11.0.0.1")), None);
    }

    #[test]
    fn host_route_beats_subnet() {
        let mut t = RoutingTable::new();
        t.insert(pfx("10.0.0.0/8"), NodeId(1));
        t.insert(Prefix::host(addr("10.5.5.5")), NodeId(9));
        assert_eq!(t.lookup(addr("10.5.5.5")), Some(NodeId(9)));
        assert_eq!(t.lookup(addr("10.5.5.6")), Some(NodeId(1)));
    }

    #[test]
    fn default_route_catches_all() {
        let mut t = RoutingTable::new();
        t.set_default(NodeId(7));
        assert_eq!(t.lookup(addr("1.2.3.4")), Some(NodeId(7)));
        assert_eq!(t.lookup(addr("255.255.255.255")), Some(NodeId(7)));
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut t = RoutingTable::new();
        assert_eq!(t.insert(pfx("10.0.0.0/8"), NodeId(1)), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.lookup(addr("10.0.0.1")), Some(NodeId(2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_route() {
        let mut t = RoutingTable::new();
        t.insert(pfx("10.0.0.0/8"), NodeId(1));
        assert_eq!(t.remove(pfx("10.0.0.0/8")), Some(NodeId(1)));
        assert_eq!(t.remove(pfx("10.0.0.0/8")), None);
        assert!(t.is_empty());
        assert_eq!(t.lookup(addr("10.0.0.1")), None);
    }

    #[test]
    fn lookup_entry_reports_matched_prefix() {
        let mut t = RoutingTable::new();
        t.insert(pfx("10.1.0.0/16"), NodeId(2));
        let (p, hop) = t.lookup_entry(addr("10.1.3.4")).unwrap();
        assert_eq!(p, pfx("10.1.0.0/16"));
        assert_eq!(hop, NodeId(2));
    }

    #[test]
    fn iter_round_trips() {
        let mut t = RoutingTable::new();
        t.insert(pfx("10.0.0.0/8"), NodeId(1));
        t.insert(pfx("20.0.0.0/8"), NodeId(2));
        t.set_default(NodeId(0));
        let mut routes: Vec<_> = t.iter().collect();
        routes.sort_by_key(|(p, _)| (p.len(), p.network()));
        assert_eq!(routes.len(), 3);
        assert_eq!(routes[0].0, Prefix::DEFAULT);
    }

    #[test]
    fn non_canonical_prefix_still_matches() {
        let mut t = RoutingTable::new();
        // Host bits set; Prefix::new canonicalizes.
        t.insert(Prefix::new(addr("10.1.2.3"), 16), NodeId(4));
        assert_eq!(t.lookup(addr("10.1.99.99")), Some(NodeId(4)));
    }
}
