//! # mtnet-net — packet-level IP network substrate
//!
//! The wired-network substrate under the Mobile IP / Cellular IP
//! reproduction. It provides:
//!
//! * [`Addr`] / [`Prefix`] — IPv4-style 32-bit addressing with
//!   longest-prefix-match semantics.
//! * [`Packet`] — a simulated datagram carrying a caller-defined payload and
//!   an IP-in-IP encapsulation stack (for Home-Agent tunneling, Fig 2.2 of
//!   the paper).
//! * [`Link`] — a bandwidth + propagation-delay + drop-tail-queue link model
//!   computing per-packet delivery times.
//! * [`RoutingTable`] — longest-prefix-match forwarding with a default route.
//! * [`Topology`] — a graph of nodes and links with Dijkstra shortest paths,
//!   used to auto-populate routing tables.
//! * [`RouteCache`] — a generation-keyed shortest-path cache answering
//!   `next_hop` / `hop_count` / `path_delay` in O(1) after one Dijkstra
//!   per source per topology version.
//!
//! The substrate is protocol-agnostic: payloads are a generic parameter, so
//! protocol crates define their own message enums.
//!
//! ```
//! use mtnet_net::{Addr, Prefix, RoutingTable, NodeId};
//!
//! let mut table = RoutingTable::new();
//! table.insert("10.0.0.0/8".parse().unwrap(), NodeId(1));
//! table.insert("10.1.0.0/16".parse().unwrap(), NodeId(2));
//! let dst: Addr = "10.1.2.3".parse().unwrap();
//! assert_eq!(table.lookup(dst), Some(NodeId(2))); // longest prefix wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod link;
mod packet;
mod routecache;
mod routing;
mod topology;

pub use addr::{Addr, ParseAddrError, ParsePrefixError, Prefix};
pub use link::{Link, LinkConfig, LinkStats, TransmitOutcome};
pub use packet::{EncapHeader, FlowId, Packet, PacketId, TunnelKind};
pub use routecache::RouteCache;
pub use routing::RoutingTable;
pub use topology::{LinkId, NodeId, Topology, TopologyError};
