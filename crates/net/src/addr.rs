//! IPv4-style addresses and CIDR prefixes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit network-layer address (IPv4-shaped; the paper targets IPv4 and
/// explicitly defers IPv6 to future work).
///
/// ```
/// use mtnet_net::Addr;
/// let a: Addr = "192.168.1.7".parse().unwrap();
/// assert_eq!(a.to_string(), "192.168.1.7");
/// assert_eq!(a.octets(), [192, 168, 1, 7]);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u32);

impl Addr {
    /// The all-zero (unspecified) address.
    pub const UNSPECIFIED: Addr = Addr(0);

    /// Builds an address from four dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// True for the unspecified (0.0.0.0) address.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Self {
        Addr(v)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error parsing an [`Addr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError(String);

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {:?}", self.0)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddrError(s.to_owned());
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for slot in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            *slot = part.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        let [a, b, c, d] = octets;
        Ok(Addr::from_octets(a, b, c, d))
    }
}

/// A CIDR prefix: a network address plus mask length.
///
/// ```
/// use mtnet_net::{Addr, Prefix};
/// let p: Prefix = "10.1.0.0/16".parse().unwrap();
/// assert!(p.contains("10.1.200.3".parse().unwrap()));
/// assert!(!p.contains("10.2.0.1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    network: Addr,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        network: Addr(0),
        len: 0,
    };

    /// Creates a prefix, canonicalizing the network address (host bits are
    /// zeroed).
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            network: Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// A host route (`/32`) for one address.
    pub fn host(addr: Addr) -> Prefix {
        Prefix::new(addr, 32)
    }

    const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The canonical network address.
    pub fn network(&self) -> Addr {
        self.network
    }

    /// The mask length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 & Self::mask(self.len) == self.network.0
    }

    /// The `i`-th host address inside this prefix (0 = network address).
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the prefix capacity.
    pub fn host_at(&self, i: u32) -> Addr {
        let capacity = if self.len == 32 {
            1u64
        } else {
            1u64 << (32 - self.len)
        };
        assert!(
            u64::from(i) < capacity,
            "host index {i} out of range for /{}",
            self.len
        );
        Addr(self.network.0 | i)
    }
}

/// Error parsing a [`Prefix`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix syntax: {:?}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError(s.to_owned());
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let addr: Addr = addr.parse().map_err(|_| err())?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        Ok(Prefix::new(addr, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_round_trip() {
        let a = Addr::from_octets(10, 20, 30, 40);
        assert_eq!(a.to_string(), "10.20.30.40");
        assert_eq!("10.20.30.40".parse::<Addr>().unwrap(), a);
        assert_eq!(a.octets(), [10, 20, 30, 40]);
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert!(bad.parse::<Addr>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn addr_error_display() {
        let e = "x".parse::<Addr>().unwrap_err();
        assert!(e.to_string().contains("invalid address"));
    }

    #[test]
    fn unspecified() {
        assert!(Addr::UNSPECIFIED.is_unspecified());
        assert!(!Addr::from_octets(1, 0, 0, 0).is_unspecified());
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 16);
        assert_eq!(p.network().to_string(), "10.1.0.0");
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "172.16.0.0/12".parse().unwrap();
        assert!(p.contains("172.16.0.1".parse().unwrap()));
        assert!(p.contains("172.31.255.255".parse().unwrap()));
        assert!(!p.contains("172.32.0.0".parse().unwrap()));
    }

    #[test]
    fn default_prefix_contains_everything() {
        assert!(Prefix::DEFAULT.contains(Addr(0)));
        assert!(Prefix::DEFAULT.contains(Addr(u32::MAX)));
        assert!(Prefix::DEFAULT.is_default());
    }

    #[test]
    fn host_prefix() {
        let a: Addr = "1.2.3.4".parse().unwrap();
        let p = Prefix::host(a);
        assert_eq!(p.len(), 32);
        assert!(p.contains(a));
        assert!(!p.contains("1.2.3.5".parse().unwrap()));
        assert_eq!(p.host_at(0), a);
    }

    #[test]
    fn host_at_indexing() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(p.host_at(5).to_string(), "10.0.0.5");
        assert_eq!(p.host_at(255).to_string(), "10.0.0.255");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn host_at_overflow_panics() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        p.host_at(256);
    }

    #[test]
    #[should_panic(expected = "> 32")]
    fn prefix_len_validation() {
        Prefix::new(Addr(0), 33);
    }

    #[test]
    fn prefix_parse_rejects_garbage() {
        for bad in ["10.0.0.0", "10.0.0.0/33", "x/8", "10.0.0.0/"] {
            assert!(bad.parse::<Prefix>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ordering_usable_in_maps() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Addr> = ["1.1.1.1", "0.0.0.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(set.iter().next().unwrap().to_string(), "0.0.0.1");
    }
}
