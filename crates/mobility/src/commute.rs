//! Straight-line commute trajectories for controlled handoff experiments.

use crate::geometry::Point;
use crate::model::{Leg, MobilityModel};
use mtnet_sim::{RngStream, SimDuration};

/// A constant-speed straight path from `from` to `to`, then parked at the
/// destination. Used by the inter-domain handoff experiments (Figs 3.2–3.3)
/// where the node must cross cell and domain boundaries at a known time.
///
/// With [`LinearCommute::round_trip`], the node shuttles back and forth
/// forever — handy for generating a steady stream of handoffs.
#[derive(Debug, Clone)]
pub struct LinearCommute {
    from: Point,
    to: Point,
    speed: f64,
    round_trip: bool,
    /// Which endpoint the *next* leg departs from (for round trips).
    outbound: bool,
    arrived: bool,
}

impl LinearCommute {
    /// Creates a one-way commute.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive and finite, or if the endpoints
    /// coincide.
    pub fn new(from: Point, to: Point, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        assert!(from.distance(to) > 1e-9, "endpoints must differ");
        LinearCommute {
            from,
            to,
            speed,
            round_trip: false,
            outbound: true,
            arrived: false,
        }
    }

    /// Makes the node shuttle back and forth indefinitely.
    pub fn round_trip(mut self) -> Self {
        self.round_trip = true;
        self
    }

    /// Travel time for one leg.
    pub fn leg_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.from.distance(self.to) / self.speed)
    }

    /// The configured speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

impl MobilityModel for LinearCommute {
    fn next_leg(&mut self, current: Point, _rng: &mut RngStream) -> Leg {
        if self.round_trip {
            let (a, b) = if self.outbound {
                (self.from, self.to)
            } else {
                (self.to, self.from)
            };
            self.outbound = !self.outbound;
            // `current` may differ from `a` by floating error; use exact endpoints.
            let _ = current;
            return Leg::travel(a, b, self.speed);
        }
        if self.arrived {
            return Leg::pause(self.to, SimDuration::from_secs(3600));
        }
        self.arrived = true;
        Leg::travel(self.from, self.to, self.speed)
    }

    fn start(&self) -> Point {
        self.from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trajectory;
    use mtnet_sim::SimTime;

    fn rng() -> RngStream {
        RngStream::derive(1, "commute")
    }

    #[test]
    fn one_way_reaches_and_parks() {
        let m = LinearCommute::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 10.0);
        assert_eq!(m.leg_duration(), SimDuration::from_secs(10));
        let mut traj = Trajectory::new(Box::new(m));
        let mut r = rng();
        assert_eq!(
            traj.position(SimTime::from_secs(5), &mut r),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            traj.position(SimTime::from_secs(10), &mut r),
            Point::new(100.0, 0.0)
        );
        // Parked long after arrival.
        assert_eq!(
            traj.position(SimTime::from_secs(1000), &mut r),
            Point::new(100.0, 0.0)
        );
        assert_eq!(traj.speed(SimTime::from_secs(1000), &mut r), 0.0);
    }

    #[test]
    fn round_trip_shuttles() {
        let m = LinearCommute::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 10.0).round_trip();
        let mut traj = Trajectory::new(Box::new(m));
        let mut r = rng();
        // Out: t in [0,10); back: t in [10,20); out again...
        assert_eq!(
            traj.position(SimTime::from_secs(5), &mut r),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            traj.position(SimTime::from_secs(15), &mut r),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            traj.position(SimTime::from_secs(20), &mut r),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            traj.position(SimTime::from_secs(25), &mut r),
            Point::new(50.0, 0.0)
        );
        // Always moving at configured speed.
        assert_eq!(traj.speed(SimTime::from_secs(17), &mut r), 10.0);
    }

    #[test]
    fn diagonal_path_geometry() {
        let m = LinearCommute::new(Point::new(0.0, 0.0), Point::new(300.0, 400.0), 50.0);
        assert_eq!(m.leg_duration(), SimDuration::from_secs(10));
        let mut traj = Trajectory::new(Box::new(m));
        let mut r = rng();
        let mid = traj.position(SimTime::from_secs(5), &mut r);
        assert!((mid.x - 150.0).abs() < 1e-6);
        assert!((mid.y - 200.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speed_validation() {
        LinearCommute::new(Point::ORIGIN, Point::new(1.0, 0.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn distinct_endpoints_required() {
        LinearCommute::new(Point::ORIGIN, Point::ORIGIN, 1.0);
    }

    #[test]
    fn accessors() {
        let m = LinearCommute::new(Point::ORIGIN, Point::new(10.0, 0.0), 2.5);
        assert_eq!(m.speed(), 2.5);
        assert_eq!(m.start(), Point::ORIGIN);
    }
}
