//! The mobility-model trait and lazily materialized trajectories.

use crate::geometry::Point;
use mtnet_sim::{RngStream, SimDuration, SimTime};

/// One straight constant-speed segment of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leg {
    /// Start position.
    pub from: Point,
    /// End position.
    pub to: Point,
    /// Leg duration (movement plus any trailing pause).
    pub duration: SimDuration,
    /// Movement speed during the leg in m/s (0 for pauses).
    pub speed: f64,
}

impl Leg {
    /// A stationary leg at `at` for `duration`.
    pub fn pause(at: Point, duration: SimDuration) -> Leg {
        Leg {
            from: at,
            to: at,
            duration,
            speed: 0.0,
        }
    }

    /// A movement leg between two points at `speed` m/s.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive and finite.
    pub fn travel(from: Point, to: Point, speed: f64) -> Leg {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        let duration = SimDuration::from_secs_f64(from.distance(to) / speed);
        Leg {
            from,
            to,
            duration,
            speed,
        }
    }

    /// Position `elapsed` into the leg.
    pub fn position_at(&self, elapsed: SimDuration) -> Point {
        if self.duration.is_zero() {
            return self.to;
        }
        let t = elapsed.as_secs_f64() / self.duration.as_secs_f64();
        self.from.lerp(self.to, t)
    }
}

/// A generator of consecutive trajectory legs.
///
/// Implementations must be deterministic given the `RngStream` handed in:
/// all randomness comes from that stream.
pub trait MobilityModel {
    /// Produces the next leg, starting wherever the previous leg ended.
    ///
    /// The first call receives the model's configured start point via its
    /// own state; subsequent calls continue from `current`.
    fn next_leg(&mut self, current: Point, rng: &mut RngStream) -> Leg;

    /// The initial position of the node.
    fn start(&self) -> Point;
}

/// A node that never moves — the degenerate mobility model.
#[derive(Debug, Clone, Copy)]
pub struct Stationary {
    at: Point,
}

impl Stationary {
    /// Creates a stationary node at `at`.
    pub fn new(at: Point) -> Self {
        Stationary { at }
    }
}

impl MobilityModel for Stationary {
    fn next_leg(&mut self, _current: Point, _rng: &mut RngStream) -> Leg {
        Leg::pause(self.at, SimDuration::from_secs(3600))
    }

    fn start(&self) -> Point {
        self.at
    }
}

/// A trajectory: legs materialized on demand from a [`MobilityModel`],
/// with position and speed queries at (per-trajectory non-decreasing)
/// times.
///
/// Memory is **O(1) per trajectory**, not proportional to simulated
/// time: simulation queries are non-decreasing, so once the cursor has
/// moved far enough past a leg it is pruned from the cached window
/// (the metro tier carries 10^6 of these — an ever-growing leg history
/// would dominate the whole world's footprint). Queries may still go
/// backwards *within* the retained window (same-instant re-queries,
/// short replays); a query before the window is a caller bug and
/// trips a debug assertion.
pub struct Trajectory {
    model: Box<dyn MobilityModel + Send>,
    /// Cumulative end time of each cached leg.
    ends: Vec<SimTime>,
    legs: Vec<Leg>,
    /// Start time of `legs[0]`: `SimTime::ZERO` until pruning discards
    /// consumed history, then the end of the last pruned leg.
    origin: SimTime,
    /// Index of the leg that answered the last query. Simulation queries
    /// are (per-trajectory) non-decreasing in time, so the next answer is
    /// almost always this leg or the one after — an O(1) forward step
    /// instead of a binary search per query.
    cursor: usize,
}

impl std::fmt::Debug for Trajectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trajectory")
            .field("cached_legs", &self.legs.len())
            .field(
                "horizon",
                &self.ends.last().copied().unwrap_or(SimTime::ZERO),
            )
            .finish()
    }
}

impl Trajectory {
    /// Legs already consumed by the advancing cursor are pruned once this
    /// many pile up. Large enough that a trajectory serving ordinary
    /// monotone queries never reallocates after warm-up, small enough
    /// that the retained window stays a few KiB per node.
    const PRUNE_THRESHOLD: usize = 32;

    /// Wraps a model into an empty trajectory.
    pub fn new(model: Box<dyn MobilityModel + Send>) -> Self {
        Trajectory {
            model,
            ends: Vec::new(),
            legs: Vec::new(),
            origin: SimTime::ZERO,
            cursor: 0,
        }
    }

    /// Drops legs the cursor has fully passed. The current leg (and
    /// everything after it) is always retained, so monotone and
    /// same-instant queries are unaffected; only a query that travels
    /// backwards past the retained window would notice — see the type
    /// docs.
    fn prune(&mut self) {
        if self.cursor < Self::PRUNE_THRESHOLD {
            return;
        }
        self.origin = self.ends[self.cursor - 1];
        self.ends.drain(..self.cursor);
        self.legs.drain(..self.cursor);
        self.cursor = 0;
    }

    /// Extends the cached legs to cover time `t`.
    fn materialize_to(&mut self, t: SimTime, rng: &mut RngStream) {
        let mut horizon = self.ends.last().copied().unwrap_or(self.origin);
        while horizon <= t {
            let current = self
                .legs
                .last()
                .map(|l| l.to)
                .unwrap_or_else(|| self.model.start());
            let leg = self.model.next_leg(current, rng);
            // Zero-length legs would stall materialization forever.
            let duration = leg.duration.max(SimDuration::from_millis(1));
            horizon += duration;
            self.ends.push(horizon);
            self.legs.push(leg);
        }
    }

    /// Index of the first leg whose end is strictly after `t` (clamped
    /// to the last leg) — `partition_point(ends, e <= t)`, served from
    /// the monotone-query cursor when possible.
    fn leg_index_at(&mut self, t: SimTime) -> usize {
        debug_assert!(
            t >= self.origin,
            "trajectory query at {t:?} is before the retained window \
             (origin {:?}): backwards queries must stay within it",
            self.origin
        );
        let n = self.legs.len();
        let mut i = self.cursor.min(n - 1);
        let start = if i == 0 {
            self.origin
        } else {
            self.ends[i - 1]
        };
        if t < start {
            // Backwards query (tests, short replays) within the retained
            // window: full binary search.
            i = self.ends.partition_point(|e| *e <= t).min(n - 1);
        } else {
            while i < n - 1 && self.ends[i] <= t {
                i += 1;
            }
        }
        self.cursor = i;
        i
    }

    /// Position at time `t` (materializing legs as needed).
    pub fn position(&mut self, t: SimTime, rng: &mut RngStream) -> Point {
        self.prune();
        self.materialize_to(t, rng);
        let i = self.leg_index_at(t);
        let leg_start = if i == 0 {
            self.origin
        } else {
            self.ends[i - 1]
        };
        self.legs[i].position_at(t.saturating_since(leg_start))
    }

    /// Instantaneous speed (m/s) at time `t`.
    pub fn speed(&mut self, t: SimTime, rng: &mut RngStream) -> f64 {
        self.prune();
        self.materialize_to(t, rng);
        let i = self.leg_index_at(t);
        self.legs[i].speed
    }

    /// Number of legs currently cached.
    pub fn cached_legs(&self) -> usize {
        self.legs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::derive(1, "trajectory-test")
    }

    #[test]
    fn leg_travel_duration() {
        let l = Leg::travel(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 10.0);
        assert_eq!(l.duration, SimDuration::from_secs(10));
        assert_eq!(
            l.position_at(SimDuration::from_secs(5)),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            l.position_at(SimDuration::from_secs(20)),
            Point::new(100.0, 0.0)
        );
    }

    #[test]
    fn leg_pause_stays_put() {
        let l = Leg::pause(Point::new(7.0, 7.0), SimDuration::from_secs(3));
        assert_eq!(l.speed, 0.0);
        assert_eq!(
            l.position_at(SimDuration::from_secs(1)),
            Point::new(7.0, 7.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn leg_zero_speed_rejected() {
        Leg::travel(Point::ORIGIN, Point::new(1.0, 0.0), 0.0);
    }

    #[test]
    fn stationary_never_moves() {
        let mut traj = Trajectory::new(Box::new(Stationary::new(Point::new(5.0, 5.0))));
        let mut r = rng();
        for secs in [0u64, 100, 10_000] {
            assert_eq!(
                traj.position(SimTime::from_secs(secs), &mut r),
                Point::new(5.0, 5.0)
            );
            assert_eq!(traj.speed(SimTime::from_secs(secs), &mut r), 0.0);
        }
    }

    /// A scripted model emitting fixed legs, for deterministic tests.
    struct Scripted {
        legs: Vec<Leg>,
        i: usize,
    }

    impl MobilityModel for Scripted {
        fn next_leg(&mut self, _c: Point, _r: &mut RngStream) -> Leg {
            let leg = self.legs[self.i % self.legs.len()];
            self.i += 1;
            leg
        }
        fn start(&self) -> Point {
            self.legs[0].from
        }
    }

    #[test]
    fn trajectory_interpolates_across_legs() {
        let legs = vec![
            Leg::travel(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 10.0), // 10 s
            Leg::pause(Point::new(100.0, 0.0), SimDuration::from_secs(5)),   // 5 s
            Leg::travel(Point::new(100.0, 0.0), Point::new(100.0, 50.0), 5.0), // 10 s
        ];
        let mut traj = Trajectory::new(Box::new(Scripted { legs, i: 0 }));
        let mut r = rng();
        assert_eq!(
            traj.position(SimTime::from_secs(5), &mut r),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            traj.position(SimTime::from_secs(12), &mut r),
            Point::new(100.0, 0.0)
        );
        assert_eq!(
            traj.position(SimTime::from_secs(20), &mut r),
            Point::new(100.0, 25.0)
        );
        // Speeds per segment.
        assert_eq!(traj.speed(SimTime::from_secs(5), &mut r), 10.0);
        assert_eq!(traj.speed(SimTime::from_secs(12), &mut r), 0.0);
        assert_eq!(traj.speed(SimTime::from_secs(20), &mut r), 5.0);
    }

    #[test]
    fn backwards_queries_use_cache() {
        let legs = vec![Leg::travel(
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            1.0,
        )];
        let mut traj = Trajectory::new(Box::new(Scripted { legs, i: 0 }));
        let mut r = rng();
        let late = traj.position(SimTime::from_secs(90), &mut r);
        let early = traj.position(SimTime::from_secs(10), &mut r);
        assert!((late.x - 90.0).abs() < 1e-9);
        assert!((early.x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_keeps_cache_bounded_and_answers_bit_exact() {
        use crate::geometry::Rect;
        use crate::speed::SpeedClass;
        use crate::waypoint::RandomWaypoint;

        let mk = || {
            Trajectory::new(Box::new(
                RandomWaypoint::new(Rect::square(1000.0), SpeedClass::Pedestrian)
                    .with_pause(SimDuration::from_secs(5)),
            ))
        };
        let (mut dense, mut sparse) = (mk(), mk());
        let (mut rd, mut rs) = (rng(), rng());
        // Dense queries every second prune the cache over and over; sparse
        // checkpoint queries never trigger pruning between checkpoints. Both
        // must materialize identical legs and answer bit for bit.
        for secs in 0..=20_000u64 {
            let t = SimTime::from_secs(secs);
            let p = dense.position(t, &mut rd);
            if secs % 1000 == 0 {
                assert_eq!(p, sparse.position(t, &mut rs), "position at {t:?}");
                assert_eq!(
                    dense.speed(t, &mut rd),
                    sparse.speed(t, &mut rs),
                    "speed at {t:?}"
                );
            }
        }
        // A pedestrian crosses a 1 km square in minutes: 20 000 s of walking
        // is thousands of legs. The dense cache must stay a small window.
        assert!(
            dense.cached_legs() < 2 * Trajectory::PRUNE_THRESHOLD,
            "dense cache holds {} legs",
            dense.cached_legs()
        );
    }

    #[test]
    fn debug_reports_cache() {
        let mut traj = Trajectory::new(Box::new(Stationary::new(Point::ORIGIN)));
        let mut r = rng();
        traj.position(SimTime::from_secs(1), &mut r);
        assert!(format!("{traj:?}").contains("cached_legs"));
        assert!(traj.cached_legs() >= 1);
    }
}
