//! 2-D geometry in meters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A position in the plane, in meters.
///
/// ```
/// use mtnet_mobility::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

/// A displacement in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    /// `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl Vec2 {
    /// Creates a vector.
    pub const fn new(x: f64, y: f64) -> Vec2 {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Unit vector in the same direction; zero vector if degenerate.
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len <= f64::EPSILON {
            Vec2::default()
        } else {
            Vec2::new(self.x / len, self.y / len)
        }
    }

    /// A unit vector at `angle` radians from the +x axis.
    pub fn from_angle(angle: f64) -> Vec2 {
        Vec2::new(angle.cos(), angle.sin())
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle (movement area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if `max` is not component-wise ≥ `min`.
    pub fn new(min: Point, max: Point) -> Rect {
        assert!(max.x >= min.x && max.y >= min.y, "degenerate rect");
        Rect { min, max }
    }

    /// A square of side `side` with lower-left corner at the origin.
    pub fn square(side: f64) -> Rect {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_clamp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
        assert_eq!(a.lerp(b, 2.0), b, "t is clamped");
        assert_eq!(a.lerp(b, -1.0), a, "t is clamped");
    }

    #[test]
    fn vector_ops() {
        let v = Point::new(3.0, 4.0) - Point::ORIGIN;
        assert_eq!(v.length(), 5.0);
        let u = v.normalized();
        assert!((u.length() - 1.0).abs() < 1e-12);
        assert_eq!(Point::ORIGIN + v * 2.0, Point::new(6.0, 8.0));
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(Vec2::default().normalized(), Vec2::default());
    }

    #[test]
    fn from_angle_unit_circle() {
        let v = Vec2::from_angle(std::f64::consts::FRAC_PI_2);
        assert!(v.x.abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rect_queries() {
        let r = Rect::square(100.0);
        assert_eq!(r.width(), 100.0);
        assert_eq!(r.height(), 100.0);
        assert_eq!(r.center(), Point::new(50.0, 50.0));
        assert!(r.contains(Point::new(0.0, 100.0)));
        assert!(!r.contains(Point::new(-0.1, 50.0)));
        assert_eq!(r.clamp(Point::new(-5.0, 200.0)), Point::new(0.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rect_validation() {
        Rect::new(Point::new(1.0, 1.0), Point::new(0.0, 0.0));
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(1.25, 3.0).to_string(), "(1.2, 3.0)");
    }
}
