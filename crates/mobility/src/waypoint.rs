//! The random-waypoint model.

use crate::geometry::{Point, Rect};
use crate::model::{Leg, MobilityModel};
use crate::speed::SpeedClass;
use mtnet_sim::{RngStream, SimDuration};

/// Classic random waypoint: pick a uniform destination in the area, travel
/// at a uniform speed from the class range, optionally pause, repeat.
///
/// ```
/// use mtnet_mobility::{RandomWaypoint, Rect, SpeedClass, Trajectory};
/// use mtnet_sim::{RngStream, SimTime};
///
/// let model = RandomWaypoint::new(Rect::square(1000.0), SpeedClass::Pedestrian);
/// let mut traj = Trajectory::new(Box::new(model));
/// let mut rng = RngStream::derive(7, "mn0");
/// let p = traj.position(SimTime::from_secs(300), &mut rng);
/// assert!(Rect::square(1000.0).contains(p));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: Rect,
    speed_range: (f64, f64),
    pause: SimDuration,
    start: Point,
    /// Alternates between travel and pause legs when pause > 0.
    pause_next: bool,
}

impl RandomWaypoint {
    /// Creates a model over `area` with speeds from `class` and no pauses,
    /// starting at the area center.
    pub fn new(area: Rect, class: SpeedClass) -> Self {
        RandomWaypoint {
            area,
            speed_range: class.range(),
            pause: SimDuration::ZERO,
            start: area.center(),
            pause_next: false,
        }
    }

    /// Sets the pause time between legs.
    pub fn with_pause(mut self, pause: SimDuration) -> Self {
        self.pause = pause;
        self
    }

    /// Sets an explicit speed range in m/s, overriding the class range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min <= max`.
    pub fn with_speed_range(mut self, min: f64, max: f64) -> Self {
        assert!(min > 0.0 && min <= max, "invalid speed range");
        self.speed_range = (min, max);
        self
    }

    /// Sets the start position (clamped into the area).
    pub fn with_start(mut self, start: Point) -> Self {
        self.start = self.area.clamp(start);
        self
    }

    /// The movement area.
    pub fn area(&self) -> Rect {
        self.area
    }
}

impl MobilityModel for RandomWaypoint {
    fn next_leg(&mut self, current: Point, rng: &mut RngStream) -> Leg {
        if self.pause_next && !self.pause.is_zero() {
            self.pause_next = false;
            return Leg::pause(current, self.pause);
        }
        self.pause_next = true;
        // Re-draw until destination differs measurably from current so that
        // Leg::travel always has a positive length.
        let mut dest = current;
        for _ in 0..16 {
            dest = Point::new(
                rng.uniform(self.area.min.x, self.area.max.x),
                rng.uniform(self.area.min.y, self.area.max.y),
            );
            if dest.distance(current) > 1.0 {
                break;
            }
        }
        if dest.distance(current) <= 1.0 {
            return Leg::pause(current, SimDuration::from_secs(1));
        }
        let speed = rng.uniform(self.speed_range.0, self.speed_range.1);
        Leg::travel(current, dest, speed)
    }

    fn start(&self) -> Point {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trajectory;
    use mtnet_sim::SimTime;

    #[test]
    fn stays_inside_area() {
        let area = Rect::square(500.0);
        let model = RandomWaypoint::new(area, SpeedClass::UrbanVehicle);
        let mut traj = Trajectory::new(Box::new(model));
        let mut r = RngStream::derive(3, "rwp");
        for secs in (0..600).step_by(7) {
            let p = traj.position(SimTime::from_secs(secs), &mut r);
            assert!(area.contains(p), "escaped area at t={secs}: {p}");
        }
    }

    #[test]
    fn speeds_inside_class_range() {
        let model = RandomWaypoint::new(Rect::square(1000.0), SpeedClass::Highway);
        let mut traj = Trajectory::new(Box::new(model));
        let mut r = RngStream::derive(4, "rwp2");
        let (lo, hi) = SpeedClass::Highway.range();
        let mut moving_samples = 0;
        for secs in (0..1000).step_by(11) {
            let s = traj.speed(SimTime::from_secs(secs), &mut r);
            if s > 0.0 {
                moving_samples += 1;
                assert!((lo..=hi).contains(&s), "speed {s} outside [{lo},{hi}]");
            }
        }
        assert!(moving_samples > 10, "node should move most of the time");
    }

    #[test]
    fn pause_legs_alternate() {
        let model = RandomWaypoint::new(Rect::square(100.0), SpeedClass::Pedestrian)
            .with_pause(SimDuration::from_secs(30));
        let mut m = model;
        let mut r = RngStream::derive(5, "rwp3");
        let l1 = m.next_leg(Point::ORIGIN, &mut r);
        let l2 = m.next_leg(l1.to, &mut r);
        assert!(l1.speed > 0.0, "first leg travels");
        assert_eq!(l2.speed, 0.0, "second leg pauses");
        assert_eq!(l2.duration, SimDuration::from_secs(30));
    }

    #[test]
    fn deterministic_given_stream() {
        let mk = || {
            let model = RandomWaypoint::new(Rect::square(800.0), SpeedClass::UrbanVehicle);
            let mut traj = Trajectory::new(Box::new(model));
            let mut r = RngStream::derive(9, "det");
            traj.position(SimTime::from_secs(500), &mut r)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn with_start_clamps() {
        let model = RandomWaypoint::new(Rect::square(100.0), SpeedClass::Pedestrian)
            .with_start(Point::new(-50.0, 50.0));
        assert_eq!(model.start(), Point::new(0.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "invalid speed range")]
    fn bad_speed_range_rejected() {
        RandomWaypoint::new(Rect::square(10.0), SpeedClass::Pedestrian).with_speed_range(5.0, 1.0);
    }

    #[test]
    fn area_accessor() {
        let area = Rect::square(42.0);
        assert_eq!(
            RandomWaypoint::new(area, SpeedClass::Pedestrian).area(),
            area
        );
    }
}
