//! Speed classes used by the tier-selection heuristic.
//!
//! The paper's handoff strategy (§3.2) selects the tier a node should use
//! from three factors, the first being "the speed of MN". These classes
//! mirror the populations the multi-tier literature ([6], [7] in the paper)
//! uses: pedestrians, urban vehicles and highway vehicles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mobility population class with its speed range in m/s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedClass {
    /// Walking users: 0.5 – 2 m/s.
    Pedestrian,
    /// City driving: 5 – 15 m/s (18 – 54 km/h).
    UrbanVehicle,
    /// Highway driving: 20 – 35 m/s (72 – 126 km/h).
    Highway,
}

impl SpeedClass {
    /// All classes, for sweeps.
    pub const ALL: [SpeedClass; 3] = [
        SpeedClass::Pedestrian,
        SpeedClass::UrbanVehicle,
        SpeedClass::Highway,
    ];

    /// `(min, max)` speed in m/s.
    pub fn range(self) -> (f64, f64) {
        match self {
            SpeedClass::Pedestrian => (0.5, 2.0),
            SpeedClass::UrbanVehicle => (5.0, 15.0),
            SpeedClass::Highway => (20.0, 35.0),
        }
    }

    /// Midpoint speed in m/s.
    pub fn typical(self) -> f64 {
        let (lo, hi) = self.range();
        (lo + hi) / 2.0
    }

    /// Parses the stable textual label used by scenario-spec files and
    /// sweep axes (the same strings [`SpeedClass`]'s `Display` renders).
    pub fn parse_label(label: &str) -> Option<SpeedClass> {
        match label {
            "pedestrian" => Some(SpeedClass::Pedestrian),
            "urban-vehicle" => Some(SpeedClass::UrbanVehicle),
            "highway" => Some(SpeedClass::Highway),
            _ => None,
        }
    }

    /// Classifies a raw speed into the nearest class.
    pub fn classify(speed_mps: f64) -> SpeedClass {
        if speed_mps < 3.5 {
            SpeedClass::Pedestrian
        } else if speed_mps < 17.5 {
            SpeedClass::UrbanVehicle
        } else {
            SpeedClass::Highway
        }
    }
}

impl fmt::Display for SpeedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpeedClass::Pedestrian => "pedestrian",
            SpeedClass::UrbanVehicle => "urban-vehicle",
            SpeedClass::Highway => "highway",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_ordered_and_disjoint() {
        let (p_lo, p_hi) = SpeedClass::Pedestrian.range();
        let (u_lo, u_hi) = SpeedClass::UrbanVehicle.range();
        let (h_lo, h_hi) = SpeedClass::Highway.range();
        assert!(p_lo < p_hi && p_hi < u_lo);
        assert!(u_lo < u_hi && u_hi < h_lo);
        assert!(h_lo < h_hi);
    }

    #[test]
    fn typical_inside_range() {
        for class in SpeedClass::ALL {
            let (lo, hi) = class.range();
            let t = class.typical();
            assert!(t > lo && t < hi);
        }
    }

    #[test]
    fn classify_round_trips_typical() {
        for class in SpeedClass::ALL {
            assert_eq!(SpeedClass::classify(class.typical()), class);
        }
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(SpeedClass::classify(0.0), SpeedClass::Pedestrian);
        assert_eq!(SpeedClass::classify(10.0), SpeedClass::UrbanVehicle);
        assert_eq!(SpeedClass::classify(100.0), SpeedClass::Highway);
    }

    #[test]
    fn display_names() {
        assert_eq!(SpeedClass::Pedestrian.to_string(), "pedestrian");
        assert_eq!(SpeedClass::Highway.to_string(), "highway");
    }
}
