//! Manhattan-grid mobility: movement constrained to a street grid.

use crate::geometry::{Point, Rect};
use crate::model::{Leg, MobilityModel};
use crate::speed::SpeedClass;
use mtnet_sim::RngStream;

/// Movement along a regular street grid: at every intersection the node
/// continues straight, turns left, or turns right with configurable
/// probabilities; it u-turns only at the area boundary. Models urban
/// vehicle traffic where micro-cells sit on street corners.
///
/// ```
/// use mtnet_mobility::{ManhattanGrid, SpeedClass, Trajectory};
/// use mtnet_sim::{RngStream, SimTime};
/// let model = ManhattanGrid::new(2000.0, 200.0, SpeedClass::UrbanVehicle);
/// let mut traj = Trajectory::new(Box::new(model));
/// let mut rng = RngStream::derive(11, "car");
/// let p = traj.position(SimTime::from_secs(120), &mut rng);
/// assert!(p.x >= 0.0 && p.x <= 2000.0);
/// ```
#[derive(Debug, Clone)]
pub struct ManhattanGrid {
    area: Rect,
    block: f64,
    speed_range: (f64, f64),
    p_turn: f64,
    /// Current heading as a unit grid direction (±1, 0) or (0, ±1).
    heading: (i8, i8),
}

impl ManhattanGrid {
    /// Creates a grid of `side × side` meters with the given block size and
    /// speed class. Starts at the center intersection heading east.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not positive or exceeds `side`.
    pub fn new(side: f64, block: f64, class: SpeedClass) -> Self {
        assert!(block > 0.0 && block <= side, "invalid block size");
        ManhattanGrid {
            area: Rect::square(side),
            block,
            speed_range: class.range(),
            p_turn: 0.25,
            heading: (1, 0),
        }
    }

    /// Sets the probability of turning (split evenly left/right) at each
    /// intersection; the remainder continues straight.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn with_turn_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.p_turn = p;
        self
    }

    /// Snaps a coordinate onto the nearest grid line.
    fn snap(&self, v: f64) -> f64 {
        (v / self.block).round() * self.block
    }

    fn turn_left(h: (i8, i8)) -> (i8, i8) {
        (-h.1, h.0)
    }

    fn turn_right(h: (i8, i8)) -> (i8, i8) {
        (h.1, -h.0)
    }
}

impl MobilityModel for ManhattanGrid {
    fn next_leg(&mut self, current: Point, rng: &mut RngStream) -> Leg {
        // Keep the node on grid lines (start positions may be off-grid).
        let here = self
            .area
            .clamp(Point::new(self.snap(current.x), self.snap(current.y)));

        // Choose heading: straight with prob 1-p_turn, else left/right.
        let u = rng.next_f64();
        let mut heading = if u < self.p_turn / 2.0 {
            Self::turn_left(self.heading)
        } else if u < self.p_turn {
            Self::turn_right(self.heading)
        } else {
            self.heading
        };

        // If the chosen heading would leave the area, rotate until it
        // doesn't (guaranteed possible in a rectangle).
        for _ in 0..4 {
            let next = Point::new(
                here.x + f64::from(heading.0) * self.block,
                here.y + f64::from(heading.1) * self.block,
            );
            if self.area.contains(next) {
                break;
            }
            heading = Self::turn_left(heading);
        }
        self.heading = heading;

        let dest = self.area.clamp(Point::new(
            here.x + f64::from(heading.0) * self.block,
            here.y + f64::from(heading.1) * self.block,
        ));
        if dest.distance(here) < 1.0 {
            // Degenerate corner: pause briefly rather than emit a zero leg.
            return Leg::pause(here, mtnet_sim::SimDuration::from_secs(1));
        }
        let speed = rng.uniform(self.speed_range.0, self.speed_range.1);
        Leg::travel(here, dest, speed)
    }

    fn start(&self) -> Point {
        let c = self.area.center();
        Point::new(self.snap(c.x), self.snap(c.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trajectory;
    use mtnet_sim::SimTime;

    #[test]
    fn stays_in_area_and_on_grid_at_leg_ends() {
        let mut model = ManhattanGrid::new(1000.0, 100.0, SpeedClass::UrbanVehicle);
        let mut r = RngStream::derive(2, "mh");
        let mut pos = model.start();
        for _ in 0..200 {
            let leg = model.next_leg(pos, &mut r);
            pos = leg.to;
            assert!(model.area.contains(pos), "left area: {pos}");
            let on_x = (pos.x / 100.0).fract().abs() < 1e-9;
            let on_y = (pos.y / 100.0).fract().abs() < 1e-9;
            assert!(on_x && on_y, "off grid: {pos}");
        }
    }

    #[test]
    fn legs_are_axis_aligned() {
        let mut model = ManhattanGrid::new(1000.0, 100.0, SpeedClass::UrbanVehicle);
        let mut r = RngStream::derive(4, "mh2");
        let mut pos = model.start();
        for _ in 0..100 {
            let leg = model.next_leg(pos, &mut r);
            let dx = (leg.to.x - leg.from.x).abs();
            let dy = (leg.to.y - leg.from.y).abs();
            assert!(dx < 1e-9 || dy < 1e-9, "diagonal leg {leg:?}");
            pos = leg.to;
        }
    }

    #[test]
    fn turns_occur_with_nonzero_probability() {
        let mut model =
            ManhattanGrid::new(5000.0, 100.0, SpeedClass::UrbanVehicle).with_turn_probability(0.8);
        let mut r = RngStream::derive(6, "mh3");
        let mut pos = model.start();
        let mut horizontal = 0;
        let mut vertical = 0;
        for _ in 0..100 {
            let leg = model.next_leg(pos, &mut r);
            if (leg.to.x - leg.from.x).abs() > 1e-9 {
                horizontal += 1;
            } else {
                vertical += 1;
            }
            pos = leg.to;
        }
        assert!(
            horizontal > 10 && vertical > 10,
            "h={horizontal} v={vertical}"
        );
    }

    #[test]
    fn straight_only_when_turn_probability_zero() {
        let mut model = ManhattanGrid::new(10_000.0, 100.0, SpeedClass::UrbanVehicle)
            .with_turn_probability(0.0);
        let mut r = RngStream::derive(8, "mh4");
        let mut pos = model.start();
        for _ in 0..20 {
            let leg = model.next_leg(pos, &mut r);
            assert!(
                (leg.to.y - leg.from.y).abs() < 1e-9,
                "turned without p_turn"
            );
            pos = leg.to;
        }
    }

    #[test]
    fn trajectory_integration() {
        let model = ManhattanGrid::new(1000.0, 200.0, SpeedClass::UrbanVehicle);
        let area = Rect::square(1000.0);
        let mut traj = Trajectory::new(Box::new(model));
        let mut r = RngStream::derive(10, "mh5");
        for secs in (0..600).step_by(13) {
            assert!(area.contains(traj.position(SimTime::from_secs(secs), &mut r)));
        }
    }

    #[test]
    #[should_panic(expected = "invalid block")]
    fn block_validation() {
        ManhattanGrid::new(100.0, 0.0, SpeedClass::Pedestrian);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn turn_probability_validation() {
        ManhattanGrid::new(100.0, 10.0, SpeedClass::Pedestrian).with_turn_probability(1.5);
    }

    #[test]
    fn rotations_are_inverse() {
        let h = (1i8, 0i8);
        assert_eq!(ManhattanGrid::turn_right(ManhattanGrid::turn_left(h)), h);
    }
}
