//! # mtnet-mobility — mobility models for mobile nodes
//!
//! Generates piecewise-linear trajectories for mobile nodes. The multi-tier
//! handoff strategy of the paper keys on **speed** (pedestrians should live
//! in micro/pico cells, vehicles in macro cells), so trajectories expose
//! instantaneous speed as a first-class quantity.
//!
//! * [`Point`] / [`Vec2`] — 2-D geometry in meters.
//! * [`SpeedClass`] — pedestrian / urban-vehicle / highway speed ranges.
//! * [`MobilityModel`] — the leg-generator trait.
//! * [`RandomWaypoint`] — the classic random-waypoint model.
//! * [`ManhattanGrid`] — street-grid movement with turn probabilities.
//! * [`LinearCommute`] — a straight constant-speed path (domain-crossing
//!   experiments, Figs 3.2–3.3).
//! * [`Stationary`] — a node that never moves.
//! * [`Trajectory`] — lazily materialized legs with O(log n) position
//!   queries at arbitrary times.
//!
//! ```
//! use mtnet_mobility::{LinearCommute, Point, Trajectory};
//! use mtnet_sim::{RngStream, SimTime};
//!
//! let model = LinearCommute::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0), 10.0);
//! let mut traj = Trajectory::new(Box::new(model));
//! let mut rng = RngStream::derive(1, "demo");
//! let p = traj.position(SimTime::from_secs(50), &mut rng);
//! assert!((p.x - 500.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commute;
mod geometry;
mod manhattan;
mod model;
mod speed;
mod waypoint;

pub use commute::LinearCommute;
pub use geometry::{Point, Rect, Vec2};
pub use manhattan::ManhattanGrid;
pub use model::{Leg, MobilityModel, Stationary, Trajectory};
pub use speed::SpeedClass;
pub use waypoint::RandomWaypoint;
