//! Hard and semisoft handoff semantics (paper §2.2.2, Fig 2.4).

use crate::tree::CipTree;
use mtnet_net::{Addr, NodeId};
use mtnet_sim::FxHashMap;
use mtnet_sim::{SimDuration, SimTime};

/// Which Cellular IP handoff scheme a node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffKind {
    /// Hard handoff: the node abruptly retunes to the new BS and sends a
    /// route-update from there. Packets already descending the old path
    /// below the crossover BS are lost for roughly the MN↔crossover
    /// round-trip time (the paper's own characterization).
    Hard,
    /// Semisoft handoff: the node first sends a *semisoft packet* to the
    /// new BS (creating the new mapping and starting a bicast at the
    /// crossover), keeps listening to the old BS for the semisoft delay,
    /// then retunes. Loss approaches zero at the cost of duplicated
    /// packets during the window.
    Semisoft {
        /// How long the crossover bicasts to both paths.
        delay: SimDuration,
    },
}

impl HandoffKind {
    /// The default semisoft delay used by the Cellular IP papers (~100 ms).
    pub fn default_semisoft() -> Self {
        HandoffKind::Semisoft {
            delay: SimDuration::from_millis(100),
        }
    }

    /// Expected packet-loss window for this scheme given the tree geometry
    /// and per-hop one-way latency.
    ///
    /// * Hard: round trip between the new BS and the crossover BS — the
    ///   time the old downlink branch keeps swallowing packets after the
    ///   radio retunes ("equal to the round-trip time between the MN and
    ///   the crossover base station", Fig 2.4).
    /// * Semisoft: zero if the semisoft delay covers the route-update
    ///   propagation to the crossover, else the uncovered remainder.
    pub fn loss_window(
        &self,
        tree: &CipTree,
        old_bs: NodeId,
        new_bs: NodeId,
        per_hop: SimDuration,
    ) -> SimDuration {
        let crossover = tree.crossover(old_bs, new_bs);
        let hops_up = tree.hops_to_ancestor(new_bs, crossover) as u64;
        let round_trip = per_hop.saturating_mul(2 * hops_up);
        match self {
            HandoffKind::Hard => round_trip,
            HandoffKind::Semisoft { delay } => round_trip - *delay, // saturating
        }
    }
}

/// Tracks nodes in their semisoft (bicast) window so the crossover BS can
/// duplicate downlink packets to both the old and new branches.
#[derive(Debug, Clone, Default)]
pub struct SemisoftController {
    /// mn → (old_bs, new_bs, window_end)
    windows: FxHashMap<Addr, (NodeId, NodeId, SimTime)>,
    bicasts: u64,
}

impl SemisoftController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        SemisoftController::default()
    }

    /// Opens a bicast window for `mn` moving `old_bs → new_bs`, lasting
    /// `delay` from `now`.
    pub fn begin(
        &mut self,
        mn: Addr,
        old_bs: NodeId,
        new_bs: NodeId,
        now: SimTime,
        delay: SimDuration,
    ) {
        self.windows.insert(mn, (old_bs, new_bs, now + delay));
    }

    /// If `mn` is inside a bicast window at `now`, returns `(old_bs,
    /// new_bs)` — the crossover should send a copy down each branch.
    /// Counts the bicast for overhead accounting.
    pub fn bicast_targets(&mut self, mn: Addr, now: SimTime) -> Option<(NodeId, NodeId)> {
        if self.windows.is_empty() {
            // Every downlink hop probes this; skip the hash while no
            // handoff is in flight (the overwhelmingly common case).
            return None;
        }
        let (old, new, end) = *self.windows.get(&mn)?;
        if now >= end {
            self.windows.remove(&mn);
            return None;
        }
        self.bicasts += 1;
        Some((old, new))
    }

    /// Closes the window early (node completed the handoff).
    pub fn complete(&mut self, mn: Addr) {
        self.windows.remove(&mn);
    }

    /// Number of open windows.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Total bicast packets duplicated (the semisoft overhead metric).
    pub fn bicast_count(&self) -> u64 {
        self.bicasts
    }

    /// Drops windows that ended before `now`; returns how many.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let before = self.windows.len();
        self.windows.retain(|_, (_, _, end)| now < *end);
        before - self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// gateway(0) ── 1 ── 3, 4 ; 2 ── 5
    fn tree() -> CipTree {
        let mut t = CipTree::new(NodeId(0));
        t.add_bs(NodeId(1), NodeId(0));
        t.add_bs(NodeId(2), NodeId(0));
        t.add_bs(NodeId(3), NodeId(1));
        t.add_bs(NodeId(4), NodeId(1));
        t.add_bs(NodeId(5), NodeId(2));
        t
    }

    fn addr() -> Addr {
        "20.0.0.9".parse().unwrap()
    }

    #[test]
    fn hard_loss_window_scales_with_crossover_distance() {
        let t = tree();
        let hop = SimDuration::from_millis(5);
        // Siblings: crossover is the shared parent, 1 hop up → 10 ms RTT.
        assert_eq!(
            HandoffKind::Hard.loss_window(&t, NodeId(3), NodeId(4), hop),
            SimDuration::from_millis(10)
        );
        // Across the tree: crossover is the gateway, 2 hops up → 20 ms.
        assert_eq!(
            HandoffKind::Hard.loss_window(&t, NodeId(3), NodeId(5), hop),
            SimDuration::from_millis(20)
        );
    }

    #[test]
    fn semisoft_covers_loss_when_delay_sufficient() {
        let t = tree();
        let hop = SimDuration::from_millis(5);
        let semisoft = HandoffKind::default_semisoft();
        assert_eq!(
            semisoft.loss_window(&t, NodeId(3), NodeId(5), hop),
            SimDuration::ZERO
        );
        // Tiny delay leaves a remainder.
        let tight = HandoffKind::Semisoft {
            delay: SimDuration::from_millis(4),
        };
        assert_eq!(
            tight.loss_window(&t, NodeId(3), NodeId(4), hop),
            SimDuration::from_millis(6)
        );
    }

    #[test]
    fn semisoft_always_at_most_hard() {
        let t = tree();
        let hop = SimDuration::from_millis(7);
        for (a, b) in [(3u32, 4u32), (3, 5), (4, 5), (1, 5)] {
            let hard = HandoffKind::Hard.loss_window(&t, NodeId(a), NodeId(b), hop);
            let semi = HandoffKind::default_semisoft().loss_window(&t, NodeId(a), NodeId(b), hop);
            assert!(semi <= hard, "{a}->{b}: semisoft {semi} > hard {hard}");
        }
    }

    #[test]
    fn bicast_window_lifecycle() {
        let mut c = SemisoftController::new();
        c.begin(
            addr(),
            NodeId(3),
            NodeId(4),
            SimTime::ZERO,
            SimDuration::from_millis(100),
        );
        assert_eq!(c.open_windows(), 1);
        assert_eq!(
            c.bicast_targets(addr(), SimTime::from_millis(50)),
            Some((NodeId(3), NodeId(4)))
        );
        assert_eq!(c.bicast_count(), 1);
        // Past the window: no bicast, entry garbage-collected.
        assert_eq!(c.bicast_targets(addr(), SimTime::from_millis(100)), None);
        assert_eq!(c.open_windows(), 0);
    }

    #[test]
    fn unknown_mn_no_bicast() {
        let mut c = SemisoftController::new();
        assert_eq!(c.bicast_targets(addr(), SimTime::ZERO), None);
        assert_eq!(c.bicast_count(), 0);
    }

    #[test]
    fn complete_closes_early() {
        let mut c = SemisoftController::new();
        c.begin(
            addr(),
            NodeId(3),
            NodeId(4),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        c.complete(addr());
        assert_eq!(c.bicast_targets(addr(), SimTime::from_millis(1)), None);
    }

    #[test]
    fn sweep_expires_windows() {
        let mut c = SemisoftController::new();
        c.begin(
            addr(),
            NodeId(3),
            NodeId(4),
            SimTime::ZERO,
            SimDuration::from_millis(10),
        );
        assert_eq!(c.sweep(SimTime::from_millis(5)), 0);
        assert_eq!(c.sweep(SimTime::from_millis(10)), 1);
    }
}
