//! Per-mobile-node Cellular IP state: active vs idle, and the three
//! protocol timers.

use mtnet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The three Cellular IP timers (paper §2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CipTimers {
    /// How often an **active** node transmits route-update packets
    /// ("route-update-time"). Must be shorter than the routing-cache
    /// lifetime or mappings flap.
    pub route_update: SimDuration,
    /// How often an **idle** node transmits paging-update packets
    /// ("paging-update-time"). Much longer than `route_update` — that gap
    /// is the protocol's whole energy/overhead win.
    pub paging_update: SimDuration,
    /// How long after the last data packet a node stays active
    /// ("active-state-timeout").
    pub active_timeout: SimDuration,
}

impl Default for CipTimers {
    /// Values in the range the Cellular IP papers use: 1 s route updates,
    /// 60 s paging updates, 5 s active timeout.
    fn default() -> Self {
        CipTimers {
            route_update: SimDuration::from_secs(1),
            paging_update: SimDuration::from_secs(60),
            active_timeout: SimDuration::from_secs(5),
        }
    }
}

impl CipTimers {
    /// Routing-cache lifetime consistent with these timers (a small
    /// multiple of the refresh period, as the protocol requires).
    pub fn route_cache_lifetime(&self) -> SimDuration {
        self.route_update.saturating_mul(3)
    }

    /// Paging-cache lifetime consistent with these timers.
    pub fn paging_cache_lifetime(&self) -> SimDuration {
        self.paging_update.saturating_mul(3)
    }
}

/// Whether a node currently maintains routing-cache state (active) or only
/// paging-cache state (idle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MnMode {
    /// Sending/receiving recently: routing caches are kept fresh.
    Active,
    /// No data for `active_timeout`: only coarse paging state remains.
    Idle,
}

/// Tracks one mobile node's CIP mode transitions.
///
/// ```
/// use mtnet_cellularip::{MnCipState, CipTimers, MnMode};
/// use mtnet_sim::SimTime;
///
/// let timers = CipTimers::default();
/// let mut s = MnCipState::new(timers, SimTime::ZERO);
/// assert_eq!(s.mode(SimTime::from_secs(1)), MnMode::Active);
/// // 5 s of silence → idle
/// assert_eq!(s.mode(SimTime::from_secs(6)), MnMode::Idle);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MnCipState {
    timers: CipTimers,
    last_data: SimTime,
    /// Transition counters.
    activations: u64,
    was_active: bool,
}

impl MnCipState {
    /// Creates a node considered active as of `now` (it just attached).
    pub fn new(timers: CipTimers, now: SimTime) -> Self {
        MnCipState {
            timers,
            last_data: now,
            activations: 1,
            was_active: true,
        }
    }

    /// The configured timers.
    pub fn timers(&self) -> CipTimers {
        self.timers
    }

    /// Records data activity (sent or received) at `now`.
    pub fn touch(&mut self, now: SimTime) {
        if !self.is_active(now) {
            self.activations += 1;
        }
        self.was_active = true;
        self.last_data = self.last_data.max(now);
    }

    /// True while within `active_timeout` of the last data packet.
    pub fn is_active(&self, now: SimTime) -> bool {
        now.saturating_since(self.last_data) < self.timers.active_timeout
    }

    /// Current mode.
    pub fn mode(&self, now: SimTime) -> MnMode {
        if self.is_active(now) {
            MnMode::Active
        } else {
            MnMode::Idle
        }
    }

    /// The update period the node should currently use: route-update-time
    /// while active, paging-update-time while idle.
    pub fn update_period(&self, now: SimTime) -> SimDuration {
        match self.mode(now) {
            MnMode::Active => self.timers.route_update,
            MnMode::Idle => self.timers.paging_update,
        }
    }

    /// How many idle→active transitions have occurred (paging load proxy).
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn default_timers_sane() {
        let t = CipTimers::default();
        assert!(t.route_update < t.active_timeout);
        assert!(t.active_timeout < t.paging_update);
        assert!(t.route_cache_lifetime() > t.route_update);
        assert!(t.paging_cache_lifetime() > t.paging_update);
    }

    #[test]
    fn active_until_timeout() {
        let s = MnCipState::new(CipTimers::default(), secs(0));
        assert!(s.is_active(secs(4)));
        assert!(!s.is_active(secs(5)));
        assert_eq!(s.mode(secs(10)), MnMode::Idle);
    }

    #[test]
    fn touch_extends_activity() {
        let mut s = MnCipState::new(CipTimers::default(), secs(0));
        s.touch(secs(4));
        assert!(s.is_active(secs(8)));
        assert!(!s.is_active(secs(9)));
    }

    #[test]
    fn reactivation_counted() {
        let mut s = MnCipState::new(CipTimers::default(), secs(0));
        assert_eq!(s.activations(), 1);
        s.touch(secs(2)); // still active, no new activation
        assert_eq!(s.activations(), 1);
        s.touch(secs(100)); // was idle → reactivates
        assert_eq!(s.activations(), 2);
    }

    #[test]
    fn update_period_switches_with_mode() {
        let t = CipTimers::default();
        let s = MnCipState::new(t, secs(0));
        assert_eq!(s.update_period(secs(1)), t.route_update);
        assert_eq!(s.update_period(secs(100)), t.paging_update);
    }

    #[test]
    fn touch_never_moves_backwards() {
        let mut s = MnCipState::new(CipTimers::default(), secs(10));
        s.touch(secs(5)); // out-of-order event
        assert!(s.is_active(secs(14)), "later activity must not be erased");
    }
}
