//! The base-station tree of a Cellular IP access network.

use mtnet_net::NodeId;

/// The wired tree of base stations rooted at the gateway router
/// (paper Fig 2.3). All routing in Cellular IP is along this tree:
/// uplink packets climb to the gateway; downlink packets follow
/// routing-cache mappings from the gateway down.
#[derive(Debug, Clone)]
pub struct CipTree {
    gateway: NodeId,
    /// child → parent, indexed densely by node id (`None` for the
    /// gateway and for nodes outside the tree) — parent/contains probes
    /// are per-hop hot in the packet simulation.
    parents: Vec<Option<NodeId>>,
    /// Number of registered base stations.
    bs_count: usize,
}

impl CipTree {
    /// Creates a tree containing only the gateway.
    pub fn new(gateway: NodeId) -> Self {
        CipTree {
            gateway,
            parents: Vec::new(),
            bs_count: 0,
        }
    }

    /// The gateway (root).
    pub fn gateway(&self) -> NodeId {
        self.gateway
    }

    /// Adds a base station under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `bs` already exists, equals the gateway, or `parent` is
    /// not in the tree.
    pub fn add_bs(&mut self, bs: NodeId, parent: NodeId) {
        assert_ne!(bs, self.gateway, "gateway cannot be re-added");
        assert!(self.parent(bs).is_none(), "duplicate base station {bs}");
        assert!(
            parent == self.gateway || self.parent(parent).is_some(),
            "parent {parent} not in tree"
        );
        let idx = bs.0 as usize;
        if self.parents.len() <= idx {
            self.parents.resize(idx + 1, None);
        }
        self.parents[idx] = Some(parent);
        self.bs_count += 1;
    }

    /// True if `node` is the gateway or a registered BS.
    pub fn contains(&self, node: NodeId) -> bool {
        node == self.gateway || self.parent(node).is_some()
    }

    /// Number of base stations (excluding the gateway).
    pub fn bs_count(&self) -> usize {
        self.bs_count
    }

    /// The parent of `bs` (`None` for the gateway or unknown nodes).
    pub fn parent(&self, bs: NodeId) -> Option<NodeId> {
        self.parents.get(bs.0 as usize).copied().flatten()
    }

    /// Path from `bs` up to and including the gateway: `[bs, …, gateway]`.
    ///
    /// # Panics
    ///
    /// Panics if `bs` is not in the tree.
    pub fn uplink_path(&self, bs: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        self.uplink_path_into(bs, &mut path);
        path
    }

    /// [`CipTree::uplink_path`] into a caller-owned buffer (cleared
    /// first) — the arena-reuse variant the per-update climb paths use so
    /// control-plane traffic stays off the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `bs` is not in the tree.
    pub fn uplink_path_into(&self, bs: NodeId, path: &mut Vec<NodeId>) {
        assert!(self.contains(bs), "unknown base station {bs}");
        path.clear();
        path.push(bs);
        let mut cur = bs;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
    }

    /// Depth of `bs` (gateway = 0). Allocation-free parent walk.
    ///
    /// # Panics
    ///
    /// Panics if `bs` is not in the tree.
    pub fn depth(&self, bs: NodeId) -> usize {
        assert!(self.contains(bs), "unknown base station {bs}");
        let mut depth = 0;
        let mut cur = bs;
        while let Some(p) = self.parent(cur) {
            depth += 1;
            cur = p;
        }
        depth
    }

    /// The **crossover base station** between the paths of `old` and `new`:
    /// the deepest node common to both uplink paths (paper Fig 2.4 —
    /// "the common branch node between the old and new base stations").
    /// Classic two-pointer LCA walk — no allocation, this runs per bicast
    /// packet while a semisoft window is open.
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the tree.
    pub fn crossover(&self, old: NodeId, new: NodeId) -> NodeId {
        let (mut a, mut b) = (old, new);
        let mut da = self.depth(a);
        let mut db = self.depth(b);
        while da > db {
            a = self.parent(a).expect("depth counted");
            da -= 1;
        }
        while db > da {
            b = self.parent(b).expect("depth counted");
            db -= 1;
        }
        while a != b {
            a = self.parent(a).expect("gateway is always common");
            b = self.parent(b).expect("gateway is always common");
        }
        a
    }

    /// Hops from `bs` up to `ancestor` (0 if equal).
    ///
    /// # Panics
    ///
    /// Panics if `ancestor` is not on the uplink path of `bs`.
    pub fn hops_to_ancestor(&self, bs: NodeId, ancestor: NodeId) -> usize {
        assert!(self.contains(bs), "unknown base station {bs}");
        let mut hops = 0;
        let mut cur = bs;
        while cur != ancestor {
            cur = self.parent(cur).expect("not an ancestor");
            hops += 1;
        }
        hops
    }

    /// All base stations, in deterministic (id) order.
    pub fn base_stations(&self) -> Vec<NodeId> {
        self.parents
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// gateway(0) ── 1 ── 3
    ///           │      └ 4
    ///           └ 2 ── 5
    fn tree() -> CipTree {
        let mut t = CipTree::new(NodeId(0));
        t.add_bs(NodeId(1), NodeId(0));
        t.add_bs(NodeId(2), NodeId(0));
        t.add_bs(NodeId(3), NodeId(1));
        t.add_bs(NodeId(4), NodeId(1));
        t.add_bs(NodeId(5), NodeId(2));
        t
    }

    #[test]
    fn uplink_paths() {
        let t = tree();
        assert_eq!(
            t.uplink_path(NodeId(3)),
            vec![NodeId(3), NodeId(1), NodeId(0)]
        );
        assert_eq!(t.uplink_path(NodeId(0)), vec![NodeId(0)]);
        assert_eq!(t.depth(NodeId(3)), 2);
        assert_eq!(t.depth(NodeId(0)), 0);
    }

    #[test]
    fn crossover_siblings_is_parent() {
        let t = tree();
        // 3 and 4 share parent 1 — the textbook Fig 2.4 case.
        assert_eq!(t.crossover(NodeId(3), NodeId(4)), NodeId(1));
    }

    #[test]
    fn crossover_distant_is_gateway() {
        let t = tree();
        assert_eq!(t.crossover(NodeId(3), NodeId(5)), NodeId(0));
    }

    #[test]
    fn crossover_with_self_or_ancestor() {
        let t = tree();
        assert_eq!(t.crossover(NodeId(3), NodeId(3)), NodeId(3));
        assert_eq!(t.crossover(NodeId(3), NodeId(1)), NodeId(1));
    }

    #[test]
    fn hops_to_ancestor() {
        let t = tree();
        assert_eq!(t.hops_to_ancestor(NodeId(3), NodeId(1)), 1);
        assert_eq!(t.hops_to_ancestor(NodeId(3), NodeId(0)), 2);
        assert_eq!(t.hops_to_ancestor(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    #[should_panic(expected = "not an ancestor")]
    fn hops_to_non_ancestor_panics() {
        tree().hops_to_ancestor(NodeId(3), NodeId(2));
    }

    #[test]
    fn contains_and_counts() {
        let t = tree();
        assert!(t.contains(NodeId(0)));
        assert!(t.contains(NodeId(5)));
        assert!(!t.contains(NodeId(99)));
        assert_eq!(t.bs_count(), 5);
        assert_eq!(t.base_stations().len(), 5);
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(0)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_bs_rejected() {
        let mut t = tree();
        t.add_bs(NodeId(3), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "not in tree")]
    fn orphan_parent_rejected() {
        let mut t = tree();
        t.add_bs(NodeId(9), NodeId(42));
    }
}
