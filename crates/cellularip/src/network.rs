//! The assembled Cellular IP access network: tree + per-node caches.

use crate::cache::SoftStateCache;
use crate::state::CipTimers;
use crate::tree::CipTree;
use mtnet_net::{Addr, NodeId};
use mtnet_sim::SimTime;

/// Static configuration of a Cellular IP network.
#[derive(Debug, Clone, Copy, Default)]
pub struct CipConfig {
    /// Protocol timers (route/paging update periods, active timeout).
    pub timers: CipTimers,
}

/// Outcome of paging an idle mobile node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageOutcome {
    /// Paging caches pinpointed the node: page sent down one path of the
    /// given length (in hops), to the returned base station.
    Directed {
        /// The BS whose paging-cache chain located the node.
        bs: NodeId,
        /// Hops traversed from the gateway.
        hops: usize,
    },
    /// No paging state: the page floods to every base station.
    Flooded {
        /// Number of base stations paged.
        paged_bs: usize,
    },
}

impl PageOutcome {
    /// Number of page messages transmitted (overhead metric).
    pub fn messages(&self) -> usize {
        match self {
            PageOutcome::Directed { hops, .. } => *hops,
            PageOutcome::Flooded { paged_bs } => *paged_bs,
        }
    }
}

/// A Cellular IP access network: the BS tree plus the distributed
/// routing and paging caches, driven by route-/paging-update packets.
///
/// Per the protocol, *data* packets from a mobile node refresh routing
/// caches exactly like route-update packets do — use
/// [`CipNetwork::route_update`] for both.
#[derive(Debug)]
pub struct CipNetwork {
    tree: CipTree,
    config: CipConfig,
    /// Per-node routing cache: mn → next hop downlink (the node itself
    /// means "deliver over the air here"). Indexed densely by `NodeId`
    /// (`None` for ids outside this access network), so the per-packet
    /// next-hop probe is an array read instead of a map lookup.
    route_caches: Vec<Option<SoftStateCache<Addr, NodeId>>>,
    /// Per-node paging cache (coarser lifetime), same dense layout.
    paging_caches: Vec<Option<SoftStateCache<Addr, NodeId>>>,
    /// Reused uplink-path buffer for the per-update climb loops
    /// (route/paging updates arrive per active node per period — with
    /// reuse they never touch the allocator after warm-up).
    path_scratch: Vec<NodeId>,
    route_update_messages: u64,
    paging_update_messages: u64,
}

impl CipNetwork {
    /// Creates a network with only the gateway.
    pub fn new(gateway: NodeId, config: CipConfig) -> Self {
        let mut net = CipNetwork {
            tree: CipTree::new(gateway),
            config,
            route_caches: Vec::new(),
            paging_caches: Vec::new(),
            path_scratch: Vec::new(),
            route_update_messages: 0,
            paging_update_messages: 0,
        };
        net.install_caches(gateway);
        net
    }

    fn install_caches(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.route_caches.len() <= idx {
            self.route_caches.resize_with(idx + 1, || None);
            self.paging_caches.resize_with(idx + 1, || None);
        }
        self.route_caches[idx] = Some(SoftStateCache::new(
            self.config.timers.route_cache_lifetime(),
        ));
        self.paging_caches[idx] = Some(SoftStateCache::new(
            self.config.timers.paging_cache_lifetime(),
        ));
    }

    fn route_cache(&self, node: NodeId) -> Option<&SoftStateCache<Addr, NodeId>> {
        self.route_caches.get(node.0 as usize)?.as_ref()
    }

    fn route_cache_mut(&mut self, node: NodeId) -> Option<&mut SoftStateCache<Addr, NodeId>> {
        self.route_caches.get_mut(node.0 as usize)?.as_mut()
    }

    fn paging_cache(&self, node: NodeId) -> Option<&SoftStateCache<Addr, NodeId>> {
        self.paging_caches.get(node.0 as usize)?.as_ref()
    }

    fn paging_cache_mut(&mut self, node: NodeId) -> Option<&mut SoftStateCache<Addr, NodeId>> {
        self.paging_caches.get_mut(node.0 as usize)?.as_mut()
    }

    /// Adds a base station under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if the tree invariants are violated (see [`CipTree::add_bs`]).
    pub fn add_bs(&mut self, bs: NodeId, parent: NodeId) {
        self.tree.add_bs(bs, parent);
        self.install_caches(bs);
    }

    /// The underlying tree.
    pub fn tree(&self) -> &CipTree {
        &self.tree
    }

    /// The configuration.
    pub fn config(&self) -> &CipConfig {
        &self.config
    }

    /// Processes a route-update (or uplink data) packet from `mn` attached
    /// at `bs`: refreshes the mn→downlink mapping at every node on the
    /// uplink path. Returns the number of cache refreshes (= path length).
    ///
    /// # Panics
    ///
    /// Panics if `bs` is not in the tree.
    pub fn route_update(&mut self, mn: Addr, bs: NodeId, now: SimTime) -> usize {
        self.route_update_messages += 1;
        let mut path = std::mem::take(&mut self.path_scratch);
        self.tree.uplink_path_into(bs, &mut path);
        let mut came_from = bs; // at the attach BS the mapping is itself
        for &node in &path {
            self.route_cache_mut(node)
                .expect("cache exists for every tree node")
                .refresh(mn, came_from, now);
            came_from = node;
        }
        let len = path.len();
        self.path_scratch = path;
        len
    }

    /// Processes a paging-update packet from an idle `mn` at `bs`.
    pub fn paging_update(&mut self, mn: Addr, bs: NodeId, now: SimTime) -> usize {
        self.paging_update_messages += 1;
        let mut path = std::mem::take(&mut self.path_scratch);
        self.tree.uplink_path_into(bs, &mut path);
        let mut came_from = bs;
        for &node in &path {
            self.paging_cache_mut(node)
                .expect("cache exists for every tree node")
                .refresh(mn, came_from, now);
            came_from = node;
        }
        let len = path.len();
        self.path_scratch = path;
        len
    }

    /// Refreshes the routing-cache mapping `mn → came_from` at a single
    /// node — used by packet-level simulations where the route-update
    /// packet climbs the tree hop by hop with real link delays (so the
    /// crossover BS learns the new path only after the propagation time
    /// that determines the hard-handoff loss window).
    ///
    /// `came_from == node` marks `node` as the attach BS.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the tree.
    pub fn refresh_route_at(&mut self, node: NodeId, mn: Addr, came_from: NodeId, now: SimTime) {
        self.route_cache_mut(node)
            .expect("unknown node")
            .refresh(mn, came_from, now);
    }

    /// Per-node paging-cache refresh; see [`CipNetwork::refresh_route_at`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the tree.
    pub fn refresh_paging_at(&mut self, node: NodeId, mn: Addr, came_from: NodeId, now: SimTime) {
        self.paging_cache_mut(node)
            .expect("unknown node")
            .refresh(mn, came_from, now);
    }

    /// Resolves the downlink path gateway → attach BS for `mn` using live
    /// routing-cache entries. `None` if any hop has expired (the packet
    /// would be dropped or trigger paging).
    pub fn downlink_path(&self, mn: Addr, now: SimTime) -> Option<Vec<NodeId>> {
        let mut path = vec![self.tree.gateway()];
        let mut cur = self.tree.gateway();
        loop {
            let next = *self.route_cache(cur)?.get(&mn, now)?;
            if next == cur {
                return Some(path); // cur is the attach BS
            }
            path.push(next);
            cur = next;
        }
    }

    /// The base station `mn` is currently routed to, if routing state is
    /// live. Allocation-free chain walk (the gateway-rescue and page
    /// paths call this per rescued packet — see [`CipNetwork::downlink_path`]
    /// for the materialized variant).
    pub fn locate(&self, mn: Addr, now: SimTime) -> Option<NodeId> {
        let mut cur = self.tree.gateway();
        loop {
            let next = *self.route_cache(cur)?.get(&mn, now)?;
            if next == cur {
                return Some(cur); // cur is the attach BS
            }
            cur = next;
        }
    }

    /// The next downlink hop for `mn` at `node` (`Some(node)` itself means
    /// deliver over the air).
    pub fn next_hop(&self, node: NodeId, mn: Addr, now: SimTime) -> Option<NodeId> {
        self.route_cache(node)?.get(&mn, now).copied()
    }

    /// Clears the routing state for `mn` along the uplink path of `bs`
    /// (explicit teardown after a handoff, if the scheme uses one).
    pub fn clear_route(&mut self, mn: Addr, bs: NodeId) {
        let mut path = std::mem::take(&mut self.path_scratch);
        self.tree.uplink_path_into(bs, &mut path);
        for &node in &path {
            if let Some(c) = self.route_cache_mut(node) {
                c.remove(&mn);
            }
        }
        self.path_scratch = path;
    }

    /// Pages an idle `mn`: follows paging caches from the gateway; if the
    /// chain breaks, the page floods to all base stations.
    pub fn page(&self, mn: Addr, now: SimTime) -> PageOutcome {
        let mut cur = self.tree.gateway();
        let mut hops = 0;
        loop {
            let next = self
                .paging_cache(cur)
                .and_then(|c| c.get(&mn, now))
                .copied();
            match next {
                Some(n) if n == cur => return PageOutcome::Directed { bs: cur, hops },
                Some(n) => {
                    cur = n;
                    hops += 1;
                }
                None => {
                    return PageOutcome::Flooded {
                        paged_bs: self.tree.bs_count(),
                    };
                }
            }
        }
    }

    /// Sweeps every cache; returns total evictions.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let mut evicted = 0;
        for c in self.route_caches.iter_mut().flatten() {
            evicted += c.sweep(now);
        }
        for c in self.paging_caches.iter_mut().flatten() {
            evicted += c.sweep(now);
        }
        evicted
    }

    /// `(route_updates, paging_updates)` message counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.route_update_messages, self.paging_update_messages)
    }

    /// Total live routing-cache entries across all nodes (state-size
    /// metric).
    pub fn total_route_entries(&self, now: SimTime) -> usize {
        self.route_caches
            .iter()
            .flatten()
            .map(|c| c.live_count(now))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    /// gateway(0) ── 1 ── 3, 4 ; 2 ── 5
    fn net() -> CipNetwork {
        let mut n = CipNetwork::new(NodeId(0), CipConfig::default());
        n.add_bs(NodeId(1), NodeId(0));
        n.add_bs(NodeId(2), NodeId(0));
        n.add_bs(NodeId(3), NodeId(1));
        n.add_bs(NodeId(4), NodeId(1));
        n.add_bs(NodeId(5), NodeId(2));
        n
    }

    #[test]
    fn route_update_installs_full_path() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        let refreshes = n.route_update(mn, NodeId(3), SimTime::ZERO);
        assert_eq!(refreshes, 3); // 3, 1, 0
        assert_eq!(
            n.downlink_path(mn, SimTime::from_millis(500)),
            Some(vec![NodeId(0), NodeId(1), NodeId(3)])
        );
        assert_eq!(n.locate(mn, SimTime::from_millis(500)), Some(NodeId(3)));
        assert_eq!(n.next_hop(NodeId(3), mn, SimTime::ZERO), Some(NodeId(3)));
    }

    #[test]
    fn routing_state_expires_without_refresh() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        n.route_update(mn, NodeId(3), SimTime::ZERO);
        let lifetime = CipTimers::default().route_cache_lifetime();
        assert!(n.downlink_path(mn, SimTime::ZERO + lifetime).is_none());
        assert_eq!(n.total_route_entries(SimTime::ZERO + lifetime), 0);
    }

    #[test]
    fn periodic_refresh_keeps_path_alive() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        let period = CipTimers::default().route_update;
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            n.route_update(mn, NodeId(3), t);
            t += period;
        }
        assert!(n.downlink_path(mn, t).is_some());
        assert_eq!(n.counters().0, 10);
    }

    #[test]
    fn handoff_switches_downlink_path() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        n.route_update(mn, NodeId(3), SimTime::ZERO);
        // Hard handoff: route update from the new BS re-points the
        // crossover (node 1).
        n.route_update(mn, NodeId(4), SimTime::from_millis(100));
        assert_eq!(
            n.downlink_path(mn, SimTime::from_millis(200)),
            Some(vec![NodeId(0), NodeId(1), NodeId(4)])
        );
        // The stale mapping at the old BS (3) remains until expiry but is
        // unreachable from the gateway.
        assert_eq!(
            n.next_hop(NodeId(3), mn, SimTime::from_millis(200)),
            Some(NodeId(3))
        );
    }

    #[test]
    fn clear_route_removes_mappings() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        n.route_update(mn, NodeId(3), SimTime::ZERO);
        n.clear_route(mn, NodeId(3));
        assert!(n.downlink_path(mn, SimTime::ZERO).is_none());
    }

    #[test]
    fn paging_directed_when_cache_live() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        n.paging_update(mn, NodeId(5), SimTime::ZERO);
        let outcome = n.page(mn, SimTime::from_secs(30));
        assert_eq!(
            outcome,
            PageOutcome::Directed {
                bs: NodeId(5),
                hops: 2
            }
        );
        assert_eq!(outcome.messages(), 2);
    }

    #[test]
    fn paging_floods_without_state() {
        let n = net();
        let outcome = n.page(addr("20.0.9.9"), SimTime::ZERO);
        assert_eq!(outcome, PageOutcome::Flooded { paged_bs: 5 });
        assert_eq!(outcome.messages(), 5);
    }

    #[test]
    fn paging_outlives_routing() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        n.route_update(mn, NodeId(3), SimTime::ZERO);
        n.paging_update(mn, NodeId(3), SimTime::ZERO);
        // Long after routing state died, paging still finds the node.
        let t = SimTime::from_secs(30);
        assert!(n.downlink_path(mn, t).is_none());
        assert!(matches!(n.page(mn, t), PageOutcome::Directed { bs, .. } if bs == NodeId(3)));
    }

    #[test]
    fn sweep_counts_evictions() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        n.route_update(mn, NodeId(3), SimTime::ZERO);
        // 3 route entries die; paging untouched.
        assert_eq!(n.sweep(SimTime::from_secs(10)), 3);
    }

    #[test]
    fn per_node_refresh_builds_path_incrementally() {
        let mut n = net();
        let mn = addr("20.0.1.9");
        // Hop-by-hop: BS 3 first, then its parent, then the gateway.
        n.refresh_route_at(NodeId(3), mn, NodeId(3), SimTime::ZERO);
        assert!(
            n.downlink_path(mn, SimTime::ZERO).is_none(),
            "gateway not yet updated"
        );
        n.refresh_route_at(NodeId(1), mn, NodeId(3), SimTime::from_millis(5));
        n.refresh_route_at(NodeId(0), mn, NodeId(1), SimTime::from_millis(10));
        assert_eq!(
            n.downlink_path(mn, SimTime::from_millis(11)),
            Some(vec![NodeId(0), NodeId(1), NodeId(3)])
        );
        // Paging variant.
        n.refresh_paging_at(NodeId(0), mn, NodeId(1), SimTime::from_millis(10));
        assert!(n.page(mn, SimTime::from_millis(11)).messages() > 0);
    }

    #[test]
    fn two_nodes_coexist() {
        let mut n = net();
        let a = addr("20.0.1.1");
        let b = addr("20.0.1.2");
        n.route_update(a, NodeId(3), SimTime::ZERO);
        n.route_update(b, NodeId(5), SimTime::ZERO);
        let t = SimTime::from_millis(1);
        assert_eq!(n.locate(a, t), Some(NodeId(3)));
        assert_eq!(n.locate(b, t), Some(NodeId(5)));
        assert_eq!(n.total_route_entries(t), 6);
    }
}
