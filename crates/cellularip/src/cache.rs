//! Soft-state mappings: the primitive under routing caches, paging caches
//! and the paper's `micro_table`/`macro_table`.

use mtnet_sim::FxHashMap;
use mtnet_sim::{SimDuration, SimTime};
use std::hash::Hash;

/// A map whose entries expire unless refreshed within a lifetime.
///
/// This is exactly the paper's rule for cell tables (§3.1): *"All records
/// in micro_table and macro_table have a specific time-limitation. Over the
/// limit time and does not have any location information from this MN, the
/// location record of the MN will be erased."* — and likewise Cellular IP's
/// routing-cache rule.
///
/// ```
/// use mtnet_cellularip::SoftStateCache;
/// use mtnet_sim::{SimDuration, SimTime};
///
/// let mut cache = SoftStateCache::new(SimDuration::from_secs(3));
/// cache.refresh("mn1", 42, SimTime::ZERO);
/// assert_eq!(cache.get(&"mn1", SimTime::from_secs(2)), Some(&42));
/// assert_eq!(cache.get(&"mn1", SimTime::from_secs(3)), None); // expired
/// ```
#[derive(Debug, Clone)]
pub struct SoftStateCache<K, V> {
    lifetime: SimDuration,
    entries: FxHashMap<K, (V, SimTime)>,
    refreshes: u64,
    expirations: u64,
}

impl<K: Eq + Hash + Clone, V> SoftStateCache<K, V> {
    /// Creates a cache whose entries live `lifetime` past their last
    /// refresh.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is zero.
    pub fn new(lifetime: SimDuration) -> Self {
        assert!(!lifetime.is_zero(), "soft state needs a positive lifetime");
        SoftStateCache {
            lifetime,
            entries: FxHashMap::default(),
            refreshes: 0,
            expirations: 0,
        }
    }

    /// The configured entry lifetime.
    pub fn lifetime(&self) -> SimDuration {
        self.lifetime
    }

    /// Inserts or refreshes an entry at `now`. Returns the previous value
    /// if one existed (expired or not).
    pub fn refresh(&mut self, key: K, value: V, now: SimTime) -> Option<V> {
        self.refreshes += 1;
        self.entries.insert(key, (value, now)).map(|(v, _)| v)
    }

    /// The live value for `key` at `now`, if present and unexpired.
    pub fn get(&self, key: &K, now: SimTime) -> Option<&V> {
        self.entries
            .get(key)
            .filter(|(_, at)| now.saturating_since(*at) < self.lifetime)
            .map(|(v, _)| v)
    }

    /// Like [`SoftStateCache::get`] without the expiry check — for
    /// inspecting stale state in tests and statistics.
    pub fn get_even_stale(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|(v, _)| v)
    }

    /// Age of the entry for `key` at `now`.
    pub fn age(&self, key: &K, now: SimTime) -> Option<SimDuration> {
        self.entries
            .get(key)
            .map(|(_, at)| now.saturating_since(*at))
    }

    /// Removes an entry outright (the paper's "Delete Location Message").
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|(v, _)| v)
    }

    /// Drops every entry at once — a node crash losing its soft state
    /// wholesale. The refresh/expiration counters survive: they describe
    /// the run, not the box.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Evicts entries that expired before `now`; returns how many.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let lifetime = self.lifetime;
        let before = self.entries.len();
        self.entries
            .retain(|_, (_, at)| now.saturating_since(*at) < lifetime);
        let evicted = before - self.entries.len();
        self.expirations += evicted as u64;
        evicted
    }

    /// Number of stored entries (live and stale-but-unswept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries still live at `now`.
    pub fn live_count(&self, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|(_, at)| now.saturating_since(*at) < self.lifetime)
            .count()
    }

    /// `(refreshes, expirations)` counters for signaling-overhead
    /// accounting.
    pub fn counters(&self) -> (u64, u64) {
        (self.refreshes, self.expirations)
    }

    /// Iterates over live entries at `now`.
    pub fn iter_live(&self, now: SimTime) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter(move |(_, (_, at))| now.saturating_since(*at) < self.lifetime)
            .map(|(k, (v, _))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cache() -> SoftStateCache<&'static str, u32> {
        SoftStateCache::new(SimDuration::from_secs(5))
    }

    #[test]
    fn refresh_and_get() {
        let mut c = cache();
        assert_eq!(c.refresh("a", 1, secs(0)), None);
        assert_eq!(c.get(&"a", secs(4)), Some(&1));
        assert_eq!(c.refresh("a", 2, secs(4)), Some(1));
        assert_eq!(c.get(&"a", secs(8)), Some(&2), "refresh extends life");
    }

    #[test]
    fn expiry_boundary_exclusive() {
        let mut c = cache();
        c.refresh("a", 1, secs(10));
        assert!(c.get(&"a", secs(14)).is_some());
        assert!(c.get(&"a", secs(15)).is_none(), "lifetime is exclusive");
        assert_eq!(c.get_even_stale(&"a"), Some(&1), "stale entry still stored");
    }

    #[test]
    fn sweep_evicts_and_counts() {
        let mut c = cache();
        c.refresh("a", 1, secs(0));
        c.refresh("b", 2, secs(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.sweep(secs(6)), 1); // a dead, b alive
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters(), (2, 1));
    }

    #[test]
    fn remove_is_immediate() {
        let mut c = cache();
        c.refresh("a", 1, secs(0));
        assert_eq!(c.remove(&"a"), Some(1));
        assert_eq!(c.get(&"a", secs(0)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut c = cache();
        c.refresh("a", 1, secs(0));
        c.refresh("b", 2, secs(1));
        c.sweep(secs(5)); // "a" expires: counters now (2, 1)
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&"b", secs(1)), None);
        assert_eq!(c.counters(), (2, 1), "history survives the crash");
    }

    #[test]
    fn live_count_vs_len() {
        let mut c = cache();
        c.refresh("a", 1, secs(0));
        c.refresh("b", 2, secs(4));
        assert_eq!(c.len(), 2);
        assert_eq!(c.live_count(secs(6)), 1);
    }

    #[test]
    fn age_reporting() {
        let mut c = cache();
        c.refresh("a", 1, secs(2));
        assert_eq!(c.age(&"a", secs(5)), Some(SimDuration::from_secs(3)));
        assert_eq!(c.age(&"zz", secs(5)), None);
    }

    #[test]
    fn iter_live_filters() {
        let mut c = cache();
        c.refresh("a", 1, secs(0));
        c.refresh("b", 2, secs(4));
        let live: Vec<_> = c.iter_live(secs(6)).collect();
        assert_eq!(live, vec![(&"b", &2)]);
    }

    #[test]
    #[should_panic(expected = "positive lifetime")]
    fn zero_lifetime_rejected() {
        SoftStateCache::<u8, u8>::new(SimDuration::ZERO);
    }
}
