//! # mtnet-cellularip — Cellular IP access networks
//!
//! Implements the micro-tier mobility protocol of the paper (§2.2.2):
//! a tree of base stations under a gateway router, with
//!
//! * [`SoftStateCache`] — the soft-state mapping primitive behind
//!   routing caches, paging caches and the paper's cell tables;
//! * [`CipTree`] — the base-station tree: uplink paths and the **crossover
//!   base station** (common branch node of old and new paths, Fig 2.4);
//! * [`CipNetwork`] — routing-cache maintenance from route-update packets,
//!   hop-by-hop downlink path resolution, paging for idle nodes;
//! * [`MnCipState`] — per-node active/idle state machine driven by
//!   `route-update-time`, `paging-update-time` and `active-state-timeout`;
//! * [`HandoffKind`] — hard vs semisoft handoff semantics and their
//!   loss-window arithmetic.
//!
//! ```
//! use mtnet_cellularip::{CipNetwork, CipConfig};
//! use mtnet_net::{Addr, NodeId};
//! use mtnet_sim::SimTime;
//!
//! // gateway(0) over two base stations 1 and 2
//! let mut net = CipNetwork::new(NodeId(0), CipConfig::default());
//! net.add_bs(NodeId(1), NodeId(0));
//! net.add_bs(NodeId(2), NodeId(0));
//!
//! let mn: Addr = "20.0.1.7".parse().unwrap();
//! net.route_update(mn, NodeId(1), SimTime::ZERO);
//! assert_eq!(net.downlink_path(mn, SimTime::ZERO), Some(vec![NodeId(0), NodeId(1)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod handoff;
mod network;
mod state;
mod tree;

pub use cache::SoftStateCache;
pub use handoff::{HandoffKind, SemisoftController};
pub use network::{CipConfig, CipNetwork, PageOutcome};
pub use state::{CipTimers, MnCipState, MnMode};
pub use tree::CipTree;
