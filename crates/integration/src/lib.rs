//! Integration test anchor crate (tests live in /tests).
