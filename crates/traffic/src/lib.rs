//! # mtnet-traffic — multimedia workloads and per-flow QoS accounting
//!
//! The paper's target workload is "mobile multimedia communication": voice,
//! video and data sessions running while the node moves and hands off. This
//! crate provides:
//!
//! * [`ArrivalProcess`] — packet-arrival generators:
//!   [`Cbr`] (constant bit rate voice), [`OnOffVbr`] (exponential on/off
//!   video), [`ParetoWeb`] (heavy-tailed web/data bursts).
//! * [`SessionProcess`] — Poisson call arrivals with exponential holding
//!   times (classic Erlang traffic for blocking experiments).
//! * [`FlowQos`] — per-flow loss / one-way-delay / jitter (RFC 3550) /
//!   throughput accounting, the metric set every experiment reports.
//!
//! ```
//! use mtnet_traffic::{ArrivalProcess, Cbr};
//! use mtnet_sim::RngStream;
//!
//! let mut voice = Cbr::voice();
//! let mut rng = RngStream::derive(1, "flow0");
//! let a = voice.next_arrival(&mut rng);
//! assert_eq!(a.gap.as_millis_f64(), 20.0); // 50 pps
//! assert_eq!(a.bytes, 160);                // 64 kbit/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;
mod qos;
mod sessions;

pub use generators::{Arrival, ArrivalProcess, Cbr, OnOffVbr, ParetoWeb};
pub use qos::{FlowQos, QosReport};
pub use sessions::{SessionEvent, SessionProcess};
