//! Packet-arrival generators for multimedia flows.

use mtnet_sim::{RngStream, SimDuration};

/// One generated packet arrival: the gap since the previous packet and the
/// payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Inter-arrival gap.
    pub gap: SimDuration,
    /// Payload size in bytes.
    pub bytes: u32,
}

/// A source of packet arrivals. Implementations draw all randomness from
/// the provided stream, so flows are independently reproducible.
pub trait ArrivalProcess {
    /// Produces the next arrival.
    fn next_arrival(&mut self, rng: &mut RngStream) -> Arrival;

    /// Long-run average offered rate in bits per second (for sizing links
    /// and sanity-checking experiments).
    fn mean_rate_bps(&self) -> f64;
}

/// Constant-bit-rate traffic: fixed packet size at fixed intervals.
/// Models telephony voice (G.711-style) and is the most
/// handoff-loss-sensitive workload in the reproduction.
#[derive(Debug, Clone, Copy)]
pub struct Cbr {
    interval: SimDuration,
    bytes: u32,
}

impl Cbr {
    /// Creates a CBR source emitting `bytes` every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `bytes` is zero.
    pub fn new(interval: SimDuration, bytes: u32) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        assert!(bytes > 0, "packet size must be positive");
        Cbr { interval, bytes }
    }

    /// 64 kbit/s voice: 160-byte frames every 20 ms.
    pub fn voice() -> Self {
        Cbr::new(SimDuration::from_millis(20), 160)
    }

    /// A paced stream at `rate_bps` using `bytes`-sized packets.
    pub fn with_rate(rate_bps: u64, bytes: u32) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        let interval = SimDuration::from_secs_f64(f64::from(bytes) * 8.0 / rate_bps as f64);
        Cbr::new(interval.max(SimDuration::from_nanos(1)), bytes)
    }
}

impl ArrivalProcess for Cbr {
    fn next_arrival(&mut self, _rng: &mut RngStream) -> Arrival {
        Arrival {
            gap: self.interval,
            bytes: self.bytes,
        }
    }

    fn mean_rate_bps(&self) -> f64 {
        f64::from(self.bytes) * 8.0 / self.interval.as_secs_f64()
    }
}

/// Exponential on/off VBR traffic: bursts of CBR packets (talkspurts /
/// video GOPs) separated by silent gaps. The standard packet-voice/video
/// model of the Mobile-IP era evaluations.
#[derive(Debug, Clone, Copy)]
pub struct OnOffVbr {
    /// Packet spacing while ON.
    interval: SimDuration,
    bytes: u32,
    mean_on: f64,
    mean_off: f64,
    /// Remaining ON time before the next silence, in seconds.
    on_remaining: f64,
}

impl OnOffVbr {
    /// Creates an on/off source: while ON, emits `bytes` every `interval`;
    /// ON periods are exponential with mean `mean_on_secs`, OFF periods
    /// exponential with mean `mean_off_secs`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(interval: SimDuration, bytes: u32, mean_on_secs: f64, mean_off_secs: f64) -> Self {
        assert!(!interval.is_zero() && bytes > 0, "bad packet parameters");
        assert!(
            mean_on_secs > 0.0 && mean_off_secs > 0.0,
            "bad on/off means"
        );
        OnOffVbr {
            interval,
            bytes,
            mean_on: mean_on_secs,
            mean_off: mean_off_secs,
            on_remaining: 0.0,
        }
    }

    /// A 384 kbit/s-peak video source with 1 s talkspurts and 0.5 s gaps:
    /// 480-byte packets every 10 ms while ON.
    pub fn video() -> Self {
        OnOffVbr::new(SimDuration::from_millis(10), 480, 1.0, 0.5)
    }

    /// Fraction of time the source is ON.
    pub fn duty_cycle(&self) -> f64 {
        self.mean_on / (self.mean_on + self.mean_off)
    }
}

impl ArrivalProcess for OnOffVbr {
    fn next_arrival(&mut self, rng: &mut RngStream) -> Arrival {
        let step = self.interval.as_secs_f64();
        if self.on_remaining >= step {
            self.on_remaining -= step;
            return Arrival {
                gap: self.interval,
                bytes: self.bytes,
            };
        }
        // Burst exhausted: silence, then a fresh burst starts.
        let off = rng.exponential(self.mean_off);
        self.on_remaining = rng.exponential(self.mean_on);
        Arrival {
            gap: SimDuration::from_secs_f64(self.on_remaining.mul_add(0.0, off) + step),
            bytes: self.bytes,
        }
    }

    fn mean_rate_bps(&self) -> f64 {
        let peak = f64::from(self.bytes) * 8.0 / self.interval.as_secs_f64();
        peak * self.duty_cycle()
    }
}

/// Heavy-tailed web/data traffic: Pareto-distributed burst sizes fetched at
/// link pace, separated by exponential think times. Supplies the
/// "mobile Internet" background load of the paper's §1 motivation.
#[derive(Debug, Clone, Copy)]
pub struct ParetoWeb {
    /// Mean think time between fetches, seconds.
    mean_think: f64,
    /// Pareto scale (minimum burst) in bytes.
    min_burst: f64,
    /// Pareto shape; 1 < alpha <= 2 gives the heavy tail seen in traffic
    /// studies.
    alpha: f64,
    /// MTU-sized packets the burst is chopped into.
    mtu: u32,
    /// Bytes still to emit from the current burst.
    burst_remaining: u64,
    /// Packet spacing within a burst.
    in_burst_gap: SimDuration,
}

impl ParetoWeb {
    /// Creates a web source.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or `alpha <= 1` (infinite mean).
    pub fn new(mean_think_secs: f64, min_burst_bytes: f64, alpha: f64, mtu: u32) -> Self {
        assert!(
            mean_think_secs > 0.0 && min_burst_bytes > 0.0 && mtu > 0,
            "bad parameters"
        );
        assert!(alpha > 1.0, "alpha must exceed 1 for a finite mean");
        ParetoWeb {
            mean_think: mean_think_secs,
            min_burst: min_burst_bytes,
            alpha,
            mtu,
            burst_remaining: 0,
            in_burst_gap: SimDuration::from_millis(2),
        }
    }

    /// Typical browsing: 10 s think time, 12 KiB minimum page, alpha 1.5,
    /// 1400-byte packets.
    pub fn browsing() -> Self {
        ParetoWeb::new(10.0, 12.0 * 1024.0, 1.5, 1400)
    }

    /// Mean burst size in bytes.
    pub fn mean_burst_bytes(&self) -> f64 {
        self.min_burst * self.alpha / (self.alpha - 1.0)
    }
}

impl ArrivalProcess for ParetoWeb {
    fn next_arrival(&mut self, rng: &mut RngStream) -> Arrival {
        if self.burst_remaining == 0 {
            let think = rng.exponential(self.mean_think);
            // Cap single bursts at 100x the mean so one astronomically rare
            // draw cannot dominate an entire experiment run.
            let cap = self.mean_burst_bytes() * 100.0;
            let burst = rng.pareto(self.min_burst, self.alpha).min(cap);
            self.burst_remaining = burst as u64;
            let bytes = self.burst_remaining.min(u64::from(self.mtu)) as u32;
            self.burst_remaining -= u64::from(bytes);
            return Arrival {
                gap: SimDuration::from_secs_f64(think),
                bytes,
            };
        }
        let bytes = self.burst_remaining.min(u64::from(self.mtu)) as u32;
        self.burst_remaining -= u64::from(bytes);
        Arrival {
            gap: self.in_burst_gap,
            bytes,
        }
    }

    fn mean_rate_bps(&self) -> f64 {
        // One burst per think period (burst transfer time << think time).
        self.mean_burst_bytes() * 8.0 / self.mean_think
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::derive(17, "traffic-test")
    }

    #[test]
    fn cbr_is_perfectly_regular() {
        let mut c = Cbr::voice();
        let mut r = rng();
        for _ in 0..100 {
            let a = c.next_arrival(&mut r);
            assert_eq!(a.gap, SimDuration::from_millis(20));
            assert_eq!(a.bytes, 160);
        }
        assert!((c.mean_rate_bps() - 64_000.0).abs() < 1.0);
    }

    #[test]
    fn cbr_with_rate_matches_request() {
        let c = Cbr::with_rate(128_000, 320);
        assert!((c.mean_rate_bps() - 128_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn cbr_zero_interval_rejected() {
        Cbr::new(SimDuration::ZERO, 100);
    }

    #[test]
    fn onoff_long_run_rate_close_to_mean() {
        let mut v = OnOffVbr::video();
        let mut r = rng();
        let mut total_bits = 0.0;
        let mut total_secs = 0.0;
        for _ in 0..200_000 {
            let a = v.next_arrival(&mut r);
            total_bits += f64::from(a.bytes) * 8.0;
            total_secs += a.gap.as_secs_f64();
        }
        let measured = total_bits / total_secs;
        let expected = v.mean_rate_bps();
        let err = (measured - expected).abs() / expected;
        assert!(
            err < 0.1,
            "measured {measured:.0} vs expected {expected:.0}"
        );
    }

    #[test]
    fn onoff_has_bursts_and_gaps() {
        let mut v = OnOffVbr::video();
        let mut r = rng();
        let gaps: Vec<f64> = (0..10_000)
            .map(|_| v.next_arrival(&mut r).gap.as_secs_f64())
            .collect();
        let short = gaps.iter().filter(|&&g| g < 0.011).count();
        let long = gaps.iter().filter(|&&g| g > 0.1).count();
        assert!(
            short > 5_000,
            "expected mostly in-burst packets, got {short}"
        );
        assert!(long > 50, "expected some silences, got {long}");
    }

    #[test]
    fn onoff_duty_cycle() {
        let v = OnOffVbr::new(SimDuration::from_millis(10), 100, 2.0, 2.0);
        assert_eq!(v.duty_cycle(), 0.5);
    }

    #[test]
    #[should_panic(expected = "bad on/off means")]
    fn onoff_bad_means_rejected() {
        OnOffVbr::new(SimDuration::from_millis(10), 100, 0.0, 1.0);
    }

    #[test]
    fn pareto_bursts_chop_into_mtu() {
        let mut w = ParetoWeb::browsing();
        let mut r = rng();
        // First arrival opens a burst after a think time.
        let first = w.next_arrival(&mut r);
        assert!(first.gap.as_secs_f64() > 0.01, "think time expected");
        assert!(first.bytes <= 1400);
        // Continuation packets come fast.
        let mut saw_continuation = false;
        for _ in 0..50 {
            let a = w.next_arrival(&mut r);
            assert!(a.bytes <= 1400);
            if a.gap == SimDuration::from_millis(2) {
                saw_continuation = true;
            }
        }
        assert!(saw_continuation, "bursts should span multiple packets");
    }

    #[test]
    fn pareto_mean_burst_formula() {
        let w = ParetoWeb::new(1.0, 1000.0, 2.0, 500);
        assert_eq!(w.mean_burst_bytes(), 2000.0);
        assert!((w.mean_rate_bps() - 16_000.0).abs() < 1.0);
    }

    #[test]
    fn pareto_min_burst_respected() {
        let mut w = ParetoWeb::new(0.1, 5000.0, 1.5, 10_000);
        let mut r = rng();
        // Burst opener carries min(burst, mtu); burst >= 5000 so the opener
        // is at least min_burst when mtu allows.
        let a = w.next_arrival(&mut r);
        assert!(a.bytes >= 5000);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn pareto_alpha_validation() {
        ParetoWeb::new(1.0, 100.0, 1.0, 100);
    }

    #[test]
    fn generators_deterministic_per_stream() {
        let run = || {
            let mut v = OnOffVbr::video();
            let mut r = RngStream::derive(5, "det");
            (0..100)
                .map(|_| v.next_arrival(&mut r).gap.as_nanos())
                .sum::<u64>()
        };
        assert_eq!(run(), run());
    }
}
