//! Poisson session (call) arrivals with exponential holding times.

use mtnet_sim::{RngStream, SimDuration, SimTime};

/// A session lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// A new call starts (admission should be attempted).
    Start {
        /// Monotone session index.
        session: u64,
        /// Holding time if admitted.
        duration: SimDuration,
    },
}

/// Generates Poisson call arrivals with exponential holding times — the
/// classic Erlang offered-load model used for blocking-probability
/// experiments (paper §3.2 factor 3: "the resources of BS").
///
/// ```
/// use mtnet_traffic::SessionProcess;
/// use mtnet_sim::{RngStream, SimTime};
/// let mut calls = SessionProcess::new(0.5, 120.0); // 0.5 calls/s, 2 min mean
/// assert!((calls.offered_erlangs() - 60.0).abs() < 1e-9);
/// let mut rng = RngStream::derive(1, "calls");
/// let (t, ev) = calls.next_session(SimTime::ZERO, &mut rng);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SessionProcess {
    arrival_rate: f64,
    mean_holding_secs: f64,
    next_index: u64,
}

impl SessionProcess {
    /// Creates a process with `arrival_rate` calls per second and
    /// `mean_holding_secs` mean call duration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(arrival_rate: f64, mean_holding_secs: f64) -> Self {
        assert!(
            arrival_rate > 0.0 && mean_holding_secs > 0.0,
            "bad session parameters"
        );
        SessionProcess {
            arrival_rate,
            mean_holding_secs,
            next_index: 0,
        }
    }

    /// Offered load in Erlangs (`rate × holding`).
    pub fn offered_erlangs(&self) -> f64 {
        self.arrival_rate * self.mean_holding_secs
    }

    /// Draws the next session start after `now`. Returns the start time and
    /// the event (carrying the holding time).
    pub fn next_session(&mut self, now: SimTime, rng: &mut RngStream) -> (SimTime, SessionEvent) {
        let gap = rng.exponential(1.0 / self.arrival_rate);
        let duration = rng.exponential(self.mean_holding_secs);
        let session = self.next_index;
        self.next_index += 1;
        (
            now + SimDuration::from_secs_f64(gap),
            SessionEvent::Start {
                session,
                duration: SimDuration::from_secs_f64(duration),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_load() {
        assert_eq!(SessionProcess::new(2.0, 30.0).offered_erlangs(), 60.0);
    }

    #[test]
    fn arrival_rate_statistics() {
        let mut p = SessionProcess::new(10.0, 5.0);
        let mut r = RngStream::derive(2, "sess");
        let mut t = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            let (next, _) = p.next_session(t, &mut r);
            t = next;
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!((rate - 10.0).abs() < 0.3, "measured rate {rate}");
    }

    #[test]
    fn holding_time_statistics() {
        let mut p = SessionProcess::new(1.0, 7.0);
        let mut r = RngStream::derive(3, "hold");
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let (_, SessionEvent::Start { duration, .. }) = p.next_session(SimTime::ZERO, &mut r);
            total += duration.as_secs_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 0.2, "mean holding {mean}");
    }

    #[test]
    fn session_indices_monotone() {
        let mut p = SessionProcess::new(1.0, 1.0);
        let mut r = RngStream::derive(4, "idx");
        let mut last = None;
        for _ in 0..10 {
            let (_, SessionEvent::Start { session, .. }) = p.next_session(SimTime::ZERO, &mut r);
            if let Some(prev) = last {
                assert_eq!(session, prev + 1);
            }
            last = Some(session);
        }
    }

    #[test]
    #[should_panic(expected = "bad session parameters")]
    fn parameter_validation() {
        SessionProcess::new(0.0, 1.0);
    }
}
