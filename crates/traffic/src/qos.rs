//! Per-flow QoS accounting: loss, delay, jitter, throughput.

use mtnet_metrics::{Histogram, Summary};
use mtnet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tracks the QoS of one flow from sequence numbers and timestamps.
///
/// * **Loss** — sent vs received counts (sequence numbers make duplicates
///   and reordering visible).
/// * **One-way delay** — histogram of nanosecond delays.
/// * **Jitter** — RFC 3550 §6.4.1 interarrival jitter: a running estimate
///   `J += (|D| - J) / 16` over consecutive delay differences.
/// * **Throughput** — received payload bytes over the observation window.
///
/// ```
/// use mtnet_traffic::FlowQos;
/// use mtnet_sim::{SimTime, SimDuration};
///
/// let mut q = FlowQos::new();
/// q.record_sent(0, SimTime::ZERO, 160);
/// q.record_received(0, SimTime::ZERO, SimTime::from_millis(40), 160);
/// q.record_sent(1, SimTime::from_millis(20), 160);
/// // packet 1 lost
/// let report = q.report(SimDuration::from_secs(1));
/// assert_eq!(report.sent, 2);
/// assert_eq!(report.received, 1);
/// assert_eq!(report.loss_rate, 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowQos {
    sent: u64,
    received: u64,
    duplicates: u64,
    out_of_order: u64,
    bytes_received: u64,
    delay_ns: Histogram,
    jitter_ns: f64,
    last_delay_ns: Option<i128>,
    highest_seq_received: Option<u64>,
    delay_summary: Summary,
}

/// A finished flow's QoS figures, as reported by experiments.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QosReport {
    /// Packets sent by the source.
    pub sent: u64,
    /// Distinct packets delivered.
    pub received: u64,
    /// Fraction of sent packets never delivered.
    pub loss_rate: f64,
    /// Mean one-way delay in milliseconds.
    pub mean_delay_ms: f64,
    /// 95th-percentile one-way delay in milliseconds.
    pub p95_delay_ms: f64,
    /// Final RFC 3550 jitter estimate in milliseconds.
    pub jitter_ms: f64,
    /// Goodput in bits per second over the observation window.
    pub throughput_bps: f64,
    /// Packets delivered more than once.
    pub duplicates: u64,
    /// Packets delivered behind a higher sequence number.
    pub out_of_order: u64,
}

impl FlowQos {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FlowQos::default()
    }

    /// Records a packet leaving the source.
    pub fn record_sent(&mut self, _seq: u64, _at: SimTime, _bytes: u32) {
        self.sent += 1;
    }

    /// Records a packet arriving at the sink.
    ///
    /// `sent_at`/`received_at` compute the one-way delay; `seq` drives
    /// loss, duplicate and reordering detection.
    pub fn record_received(
        &mut self,
        seq: u64,
        sent_at: SimTime,
        received_at: SimTime,
        bytes: u32,
    ) {
        if let Some(delay) = self.record_received_compact(seq, sent_at, received_at, bytes) {
            self.delay_ns.record(delay.as_nanos());
            self.delay_summary.record(delay.as_millis_f64());
        }
    }

    /// [`FlowQos::record_received`] minus the per-flow delay
    /// distribution: counts, bytes and jitter update exactly as usual,
    /// but the delay histogram and summary stay empty. Returns the
    /// one-way delay when the packet counted as delivered (`None` for a
    /// duplicate), so the caller can stream it into a shared world-level
    /// accumulator instead — the aggregate-QoS mode metro-scale worlds
    /// use to keep per-flow trackers at a constant few hundred bytes.
    pub fn record_received_compact(
        &mut self,
        seq: u64,
        sent_at: SimTime,
        received_at: SimTime,
        bytes: u32,
    ) -> Option<SimDuration> {
        match self.highest_seq_received {
            Some(h) if seq == h => {
                self.duplicates += 1;
                return None;
            }
            Some(h) if seq < h => {
                self.out_of_order += 1;
                // Still counts as delivered.
            }
            _ => self.highest_seq_received = Some(seq),
        }
        if self.highest_seq_received.is_none_or(|h| seq > h) {
            self.highest_seq_received = Some(seq);
        }
        self.received += 1;
        self.bytes_received += u64::from(bytes);

        let delay = received_at.saturating_since(sent_at);

        // RFC 3550 jitter: J += (|D(i-1,i)| - J) / 16 where D is the
        // difference of one-way delays (transit times) of consecutive
        // received packets.
        let delay_ns = i128::from(delay.as_nanos());
        if let Some(prev) = self.last_delay_ns {
            let d = (delay_ns - prev).unsigned_abs() as f64;
            self.jitter_ns += (d - self.jitter_ns) / 16.0;
        }
        self.last_delay_ns = Some(delay_ns);
        Some(delay)
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Current loss fraction.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - (self.received.min(self.sent) as f64 / self.sent as f64)
        }
    }

    /// Current jitter estimate.
    pub fn jitter(&self) -> SimDuration {
        SimDuration::from_nanos(self.jitter_ns as u64)
    }

    /// Overwrites the sent-side counters from `other`, keeping every
    /// receive-side figure untouched. Used when the send and receive
    /// ends of one flow were tracked by different replicas of the same
    /// world (sharded execution): the sink replica's tracker adopts the
    /// source replica's sent count and the result equals a single
    /// tracker that saw both ends.
    pub fn adopt_sent(&mut self, other: &FlowQos) {
        self.sent = other.sent;
    }

    /// Merges another tracker (e.g. summing per-handoff windows).
    pub fn merge(&mut self, other: &FlowQos) {
        self.sent += other.sent;
        self.received += other.received;
        self.duplicates += other.duplicates;
        self.out_of_order += other.out_of_order;
        self.bytes_received += other.bytes_received;
        self.delay_ns.merge(&other.delay_ns);
        self.delay_summary.merge(&other.delay_summary);
        // Jitter: keep the max of the two running estimates (conservative).
        self.jitter_ns = self.jitter_ns.max(other.jitter_ns);
    }

    /// Produces the final report over an observation window of `window`.
    pub fn report(&self, window: SimDuration) -> QosReport {
        let secs = window.as_secs_f64();
        QosReport {
            sent: self.sent,
            received: self.received,
            loss_rate: self.loss_rate(),
            mean_delay_ms: self.delay_summary.mean(),
            p95_delay_ms: self
                .delay_ns
                .percentile(95.0)
                .map_or(0.0, |ns| ns as f64 / 1e6),
            jitter_ms: self.jitter_ns / 1e6,
            throughput_bps: if secs > 0.0 {
                self.bytes_received as f64 * 8.0 / secs
            } else {
                0.0
            },
            duplicates: self.duplicates,
            out_of_order: self.out_of_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn no_loss_perfect_flow() {
        let mut q = FlowQos::new();
        for seq in 0..100u64 {
            let t = ms(seq * 20);
            q.record_sent(seq, t, 160);
            q.record_received(seq, t, t + SimDuration::from_millis(50), 160);
        }
        let r = q.report(SimDuration::from_secs(2));
        assert_eq!(r.sent, 100);
        assert_eq!(r.received, 100);
        assert_eq!(r.loss_rate, 0.0);
        assert!((r.mean_delay_ms - 50.0).abs() < 1e-9);
        // Constant delay => zero jitter.
        assert_eq!(r.jitter_ms, 0.0);
        // 100 * 160 B * 8 / 2 s = 64 kbit/s
        assert!((r.throughput_bps - 64_000.0).abs() < 1.0);
    }

    #[test]
    fn loss_detected() {
        let mut q = FlowQos::new();
        for seq in 0..10u64 {
            q.record_sent(seq, ms(seq), 100);
            if seq % 2 == 0 {
                q.record_received(seq, ms(seq), ms(seq + 5), 100);
            }
        }
        assert_eq!(q.loss_rate(), 0.5);
    }

    #[test]
    fn duplicates_not_double_counted() {
        let mut q = FlowQos::new();
        q.record_sent(0, ms(0), 100);
        q.record_received(0, ms(0), ms(5), 100);
        q.record_received(0, ms(0), ms(6), 100);
        let r = q.report(SimDuration::from_secs(1));
        assert_eq!(r.received, 1);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.loss_rate, 0.0);
    }

    #[test]
    fn reordering_detected_but_counted_delivered() {
        let mut q = FlowQos::new();
        for seq in [0u64, 2, 1, 3] {
            q.record_sent(seq, ms(seq * 10), 100);
        }
        q.record_received(0, ms(0), ms(5), 100);
        q.record_received(2, ms(20), ms(26), 100);
        q.record_received(1, ms(10), ms(27), 100); // late
        q.record_received(3, ms(30), ms(35), 100);
        let r = q.report(SimDuration::from_secs(1));
        assert_eq!(r.received, 4);
        assert_eq!(r.out_of_order, 1);
        assert_eq!(r.loss_rate, 0.0);
    }

    #[test]
    fn jitter_rises_with_variable_delay() {
        let mut steady = FlowQos::new();
        let mut jumpy = FlowQos::new();
        for seq in 0..64u64 {
            let t = ms(seq * 20);
            steady.record_sent(seq, t, 100);
            steady.record_received(seq, t, t + SimDuration::from_millis(40), 100);
            jumpy.record_sent(seq, t, 100);
            let d = if seq % 2 == 0 { 20 } else { 80 };
            jumpy.record_received(seq, t, t + SimDuration::from_millis(d), 100);
        }
        assert_eq!(steady.jitter(), SimDuration::ZERO);
        let j = jumpy.report(SimDuration::from_secs(2)).jitter_ms;
        // D alternates ±60 ms; RFC 3550 converges toward 60.
        assert!(j > 30.0, "jitter {j} too small");
    }

    #[test]
    fn p95_reflects_tail() {
        let mut q = FlowQos::new();
        for seq in 0..100u64 {
            let t = ms(seq);
            q.record_sent(seq, t, 100);
            let d = if seq < 95 { 10 } else { 200 };
            q.record_received(seq, t, t + SimDuration::from_millis(d), 100);
        }
        let r = q.report(SimDuration::from_secs(1));
        assert!(
            r.p95_delay_ms <= 15.0,
            "p95 {} should be near 10",
            r.p95_delay_ms
        );
        assert!(r.mean_delay_ms > 10.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FlowQos::new();
        let mut b = FlowQos::new();
        a.record_sent(0, ms(0), 100);
        a.record_received(0, ms(0), ms(10), 100);
        b.record_sent(1, ms(20), 100);
        let mut m = FlowQos::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.sent(), 2);
        assert_eq!(m.received(), 1);
        assert_eq!(m.loss_rate(), 0.5);
    }

    #[test]
    fn adopt_sent_reunites_a_split_flow() {
        // Source end tracked by one replica, sink end by another.
        let mut source_end = FlowQos::new();
        let mut sink_end = FlowQos::new();
        for seq in 0..10u64 {
            source_end.record_sent(seq, ms(seq * 20), 160);
            if seq < 7 {
                sink_end.record_received(seq, ms(seq * 20), ms(seq * 20 + 40), 160);
            }
        }
        sink_end.adopt_sent(&source_end);
        let r = sink_end.report(SimDuration::from_secs(1));
        assert_eq!(r.sent, 10);
        assert_eq!(r.received, 7);
        assert!((r.loss_rate - 0.3).abs() < 1e-12);
        assert!(r.mean_delay_ms > 0.0, "receive side untouched");
    }

    #[test]
    fn compact_matches_full_except_delay_distribution() {
        let mut full = FlowQos::new();
        let mut compact = FlowQos::new();
        for seq in [0u64, 1, 1, 3, 2] {
            let t = ms(seq * 20);
            let d = SimDuration::from_millis(10 + seq * 7);
            full.record_sent(seq, t, 120);
            compact.record_sent(seq, t, 120);
            full.record_received(seq, t, t + d, 120);
            let returned = compact.record_received_compact(seq, t, t + d, 120);
            // Duplicates return None; delivered packets return the delay.
            if seq == 1 && compact.duplicates > 0 && returned.is_none() {
                continue;
            }
            assert_eq!(returned, Some(d));
        }
        let f = full.report(SimDuration::from_secs(1));
        let c = compact.report(SimDuration::from_secs(1));
        assert_eq!(c.sent, f.sent);
        assert_eq!(c.received, f.received);
        assert_eq!(c.duplicates, f.duplicates);
        assert_eq!(c.out_of_order, f.out_of_order);
        assert_eq!(c.jitter_ms, f.jitter_ms);
        assert_eq!(c.throughput_bps, f.throughput_bps);
        // The per-flow delay distribution is the one thing compact skips.
        assert_eq!(c.mean_delay_ms, 0.0);
        assert_eq!(c.p95_delay_ms, 0.0);
        assert!(f.mean_delay_ms > 0.0);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = FlowQos::new().report(SimDuration::ZERO);
        assert_eq!(r.sent, 0);
        assert_eq!(r.loss_rate, 0.0);
        assert_eq!(r.throughput_bps, 0.0);
        assert_eq!(r.p95_delay_ms, 0.0);
    }
}
