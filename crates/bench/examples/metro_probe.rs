//! Metro-tier tuning probe: runs `ScenarioSpec::metro()` with `key=value`
//! overrides from the command line and prints wall time, event count,
//! events/s, peak RSS and page-fault counts — the quickest way to answer
//! "what does this knob cost at scale" without editing an experiment.
//! Set `MTNET_EVPROF=1` for a per-event-type cost breakdown.
//!
//! ```text
//! cargo run --release --example metro_probe -- duration_s=12 pedestrians=10000 domains=8
//! ```
use mtnet_core::spec::ScenarioSpec;

fn vm_hwm_bytes() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// (minor, major) page faults of this process so far.
fn faults() -> (u64, u64) {
    let s = std::fs::read_to_string("/proc/self/stat").unwrap();
    let rest = s.rsplit(") ").next().unwrap();
    let f: Vec<&str> = rest.split_whitespace().collect();
    (f[7].parse().unwrap(), f[9].parse().unwrap())
}

fn main() {
    let mut spec = ScenarioSpec::metro().with_seed_path("E14", "metro", 0);
    for arg in std::env::args().skip(1) {
        let (k, v) = arg.split_once('=').expect("key=value");
        spec.set(k, v).expect("valid override");
    }
    spec.validate().expect("valid spec");
    let t0 = std::time::Instant::now();
    let world = spec.build(42);
    let built = t0.elapsed();
    let f0 = faults();
    let t1 = std::time::Instant::now();
    let report = world.run(mtnet_sim::SimDuration::from_secs_f64(spec.duration_s));
    let ran = t1.elapsed();
    let f1 = faults();
    eprintln!(
        "build {:.2}s  run {:.2}s  events {}  ev/s {:.2}M  rss {:.0} MiB  minflt {}  majflt {}",
        built.as_secs_f64(),
        ran.as_secs_f64(),
        report.events_processed,
        report.events_processed as f64 / ran.as_secs_f64() / 1e6,
        vm_hwm_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0),
        f1.0 - f0.0,
        f1.1 - f0.1,
    );
    let prof = mtnet_core::world::evprof::report();
    if !prof.is_empty() {
        eprint!("{prof}");
    }
}
