//! The `BENCH.json` row model: reading, writing and merging the
//! machine-readable perf trajectory, plus the regression-gate logic the
//! `bench_check` binary applies in CI.
//!
//! The file is a JSON array with one object per line. The vendored serde
//! stand-in has no real serialization, so rows are rendered and parsed
//! with plain string handling — the format is fixed and produced only by
//! this crate.

/// One trajectory row: an experiment at an effort level.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Experiment id (`E1`..`E12`) or `suite` for the per-effort total.
    pub experiment: String,
    /// `Quick` or `Full`.
    pub effort: String,
    /// Wall-clock time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Deterministic work count: simulator events processed, or for
    /// analytic experiments the number of model operations. The perf
    /// gate requires this to match the committed value **exactly**.
    pub events: u64,
    /// `events / wall seconds` — the self-describing throughput figure.
    pub events_per_sec: u64,
    /// True for experiments that run no discrete-event simulation (their
    /// wall time is noise, so the gate skips the wall comparison).
    pub analytic: bool,
    /// Intra-world shards the suite ran with (1 = sequential engine).
    /// Part of the row identity: the same experiment at different shard
    /// counts produces distinct trajectory rows.
    pub shards: u32,
    /// Worker threads the suite ran with.
    pub threads: usize,
    /// True when the binary was built by the profile-guided-optimization
    /// lane (`scripts/pgo_build`). Part of the row identity: PGO rows
    /// form their own trajectory next to the stock-build rows.
    pub pgo: bool,
    /// Peak resident-set size of the run, in bytes (`crate::rss`), or
    /// `None` where the platform can't measure it. Elided from the JSON
    /// when absent so older trajectory files keep their exact shape. The
    /// metro tier's "one box's RAM" claim is gated on this column.
    pub max_rss_bytes: Option<u64>,
}

impl BenchRow {
    /// Renders the row as one JSON object line (no trailing comma).
    pub fn to_json_line(&self) -> String {
        let analytic = if self.analytic {
            ", \"analytic\": true"
        } else {
            ""
        };
        // `shards` is elided at 1 so pre-sharding trajectory files and
        // their committed rows stay byte-identical.
        let shards = if self.shards != 1 {
            format!(", \"shards\": {}", self.shards)
        } else {
            String::new()
        };
        // Like `shards`, `pgo` is elided at its default so stock rows
        // stay byte-identical with earlier trajectory files.
        let pgo = if self.pgo { ", \"pgo\": true" } else { "" };
        let rss = match self.max_rss_bytes {
            Some(b) => format!(", \"max_rss_bytes\": {b}"),
            None => String::new(),
        };
        format!(
            "  {{\"experiment\": \"{}\", \"effort\": \"{}\", \"wall_ms\": {:.1}, \"events\": {}, \
             \"events_per_sec\": {}{analytic}{shards}{pgo}{rss}, \"threads\": {}}}",
            self.experiment,
            self.effort,
            self.wall_ms,
            self.events,
            self.events_per_sec,
            self.threads
        )
    }

    /// Parses a row from one object line; `None` for non-row lines
    /// (brackets, blanks). Unknown fields are ignored; missing optional
    /// fields default (`events_per_sec` 0, `analytic` false) so older
    /// trajectory files stay readable.
    pub fn parse(line: &str) -> Option<BenchRow> {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            return None;
        }
        Some(BenchRow {
            experiment: str_field(line, "experiment")?,
            effort: str_field(line, "effort")?,
            wall_ms: num_field(line, "wall_ms")?,
            events: num_field(line, "events")? as u64,
            events_per_sec: num_field(line, "events_per_sec").unwrap_or(0.0) as u64,
            analytic: line.contains("\"analytic\": true"),
            shards: num_field(line, "shards").map_or(1, |v| v as u32),
            threads: num_field(line, "threads")? as usize,
            pgo: line.contains("\"pgo\": true"),
            max_rss_bytes: num_field(line, "max_rss_bytes").map(|v| v as u64),
        })
    }

    /// True when `other` measures the same configuration — the identity
    /// the merge and the regression gate match rows on.
    pub fn same_config(&self, other: &BenchRow) -> bool {
        self.experiment == other.experiment
            && self.effort == other.effort
            && self.shards == other.shards
            && self.pgo == other.pgo
    }
}

/// Extracts a string field's value from a single-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a numeric field's value from a single-line JSON object.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a whole trajectory file.
pub fn parse_file(text: &str) -> Vec<BenchRow> {
    text.lines().filter_map(BenchRow::parse).collect()
}

/// Renders a whole trajectory file.
pub fn render_file(rows: &[BenchRow]) -> String {
    let body: Vec<String> = rows.iter().map(BenchRow::to_json_line).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

/// Merges freshly measured rows into an existing trajectory: a fresh row
/// replaces the committed row with the same `(experiment, effort,
/// shards)`; other committed rows (e.g. the other effort level, or other
/// shard counts) are retained. The result is sorted Full-before-Quick,
/// suite order, shard count, totals last, so regeneration is
/// deterministic.
pub fn merge(existing: Vec<BenchRow>, fresh: Vec<BenchRow>) -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = existing
        .into_iter()
        .filter(|old| !fresh.iter().any(|new| new.same_config(old)))
        .collect();
    rows.extend(fresh);
    rows.sort_by_key(|r| {
        (
            match r.effort.as_str() {
                "Full" => 0,
                "Quick" => 1,
                _ => 2,
            },
            suite_order(&r.experiment),
            r.shards,
            r.pgo,
        )
    });
    rows
}

/// Suite position of an experiment id (`suite` totals sort last).
fn suite_order(experiment: &str) -> usize {
    if experiment == "suite" {
        return usize::MAX;
    }
    crate::ALL_IDS
        .iter()
        .position(|id| *id == experiment)
        .unwrap_or(usize::MAX - 1)
}

/// Outcome of gating one fresh row against the committed trajectory.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Within bounds (wall delta in percent, negative = faster).
    Ok(f64),
    /// No committed row with this `(experiment, effort, shards)` —
    /// informational.
    NoBaseline,
    /// Event count differs from the committed value: determinism drift.
    EventDrift {
        /// Events in the committed trajectory.
        committed: u64,
        /// Events in the fresh run.
        fresh: u64,
    },
    /// Wall time regressed beyond the tolerance (delta in percent).
    WallRegression(f64),
    /// Peak RSS regressed beyond the memory tolerance (delta in
    /// percent). Wall time was within bounds.
    RssRegression(f64),
    /// Wall comparison skipped (analytic row or sub-floor baseline);
    /// events still matched.
    WallSkipped,
}

/// Wall-time regression tolerance, in percent.
pub const WALL_TOLERANCE_PCT: f64 = 25.0;
/// Committed rows faster than this are pure noise: events are still
/// checked, wall time is not.
pub const WALL_FLOOR_MS: f64 = 50.0;
/// Peak-RSS regression tolerance, in percent. Memory is far less noisy
/// than wall time, but allocator retention between in-process runs
/// (`crate::rss`) still wobbles the small rows — hence the floor below.
pub const RSS_TOLERANCE_PCT: f64 = 30.0;
/// Committed rows whose peak RSS is below this are dominated by
/// allocator noise and binary overhead; their memory comparison is
/// skipped.
pub const RSS_FLOOR_BYTES: u64 = 128 << 20;

/// Gates one fresh row against the committed rows. Event counts must be
/// exactly equal (the determinism tripwire); wall time may regress up to
/// `tolerance_pct` (analytic and sub-[`WALL_FLOOR_MS`] rows skip the
/// wall comparison — their timings are noise); peak RSS, where both rows
/// carry it and the baseline is at least [`RSS_FLOOR_BYTES`], may
/// regress up to `rss_tolerance_pct`.
pub fn gate_row(
    fresh: &BenchRow,
    committed: &[BenchRow],
    tolerance_pct: f64,
    rss_tolerance_pct: f64,
) -> GateOutcome {
    let Some(base) = committed.iter().find(|c| c.same_config(fresh)) else {
        return GateOutcome::NoBaseline;
    };
    if base.events != fresh.events {
        return GateOutcome::EventDrift {
            committed: base.events,
            fresh: fresh.events,
        };
    }
    let wall_checked = !(fresh.analytic || base.analytic || base.wall_ms < WALL_FLOOR_MS);
    let wall_delta_pct = (fresh.wall_ms - base.wall_ms) / base.wall_ms * 100.0;
    if wall_checked && wall_delta_pct > tolerance_pct {
        return GateOutcome::WallRegression(wall_delta_pct);
    }
    if let (Some(fresh_rss), Some(base_rss)) = (fresh.max_rss_bytes, base.max_rss_bytes) {
        if base_rss >= RSS_FLOOR_BYTES {
            let delta_pct = (fresh_rss as f64 - base_rss as f64) / base_rss as f64 * 100.0;
            if delta_pct > rss_tolerance_pct {
                return GateOutcome::RssRegression(delta_pct);
            }
        }
    }
    if wall_checked {
        GateOutcome::Ok(wall_delta_pct)
    } else {
        GateOutcome::WallSkipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(experiment: &str, effort: &str, wall_ms: f64, events: u64) -> BenchRow {
        BenchRow {
            experiment: experiment.into(),
            effort: effort.into(),
            wall_ms,
            events,
            events_per_sec: if wall_ms > 0.0 {
                (events as f64 / (wall_ms / 1e3)) as u64
            } else {
                0
            },
            analytic: false,
            shards: 1,
            threads: 1,
            pgo: false,
            max_rss_bytes: None,
        }
    }

    #[test]
    fn row_round_trips_through_json() {
        let mut r = row("E3", "Full", 661.7, 7_747_917);
        r.analytic = true;
        let parsed = BenchRow::parse(&r.to_json_line()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn file_round_trips_and_tolerates_legacy_rows() {
        let rows = vec![
            row("E1", "Full", 60.0, 100),
            row("suite", "Full", 60.0, 100),
        ];
        let text = render_file(&rows);
        assert_eq!(parse_file(&text), rows);
        // A PR-3-era row without events_per_sec still parses.
        let legacy = "  {\"experiment\": \"E2\", \"effort\": \"Full\", \"wall_ms\": 43.9, \
                      \"events\": 684735, \"threads\": 1},";
        let parsed = BenchRow::parse(legacy).expect("legacy row parses");
        assert_eq!(parsed.events, 684_735);
        assert_eq!(parsed.events_per_sec, 0);
        assert!(!parsed.analytic);
    }

    #[test]
    fn shards_round_trip_and_single_shard_rows_stay_legacy_shaped() {
        let mut sharded = row("E11", "Quick", 80.0, 5_000);
        sharded.shards = 4;
        let line = sharded.to_json_line();
        assert!(line.contains("\"shards\": 4"));
        assert_eq!(BenchRow::parse(&line).expect("parses"), sharded);

        // shards == 1 is elided so pre-sharding files are byte-identical,
        // and rows without the field parse back to 1.
        let seq = row("E11", "Quick", 80.0, 5_000);
        let line = seq.to_json_line();
        assert!(!line.contains("shards"));
        assert_eq!(BenchRow::parse(&line).expect("parses").shards, 1);
    }

    #[test]
    fn shard_counts_are_distinct_trajectory_rows() {
        let mut sharded = row("E11", "Quick", 70.0, 5_000);
        sharded.shards = 2;
        let committed = vec![row("E11", "Quick", 80.0, 5_000), sharded.clone()];

        // The gate matches each fresh row against its own shard count.
        let mut fresh = sharded.clone();
        fresh.wall_ms = 72.0;
        assert!(matches!(
            gate_row(&fresh, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::Ok(_)
        ));
        let mut unseen = fresh.clone();
        unseen.shards = 8;
        assert_eq!(
            gate_row(&unseen, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::NoBaseline
        );

        // The merge replaces only the matching shard count and sorts
        // ascending within an experiment.
        let merged = merge(committed, vec![fresh]);
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].shards, merged[0].wall_ms), (1, 80.0));
        assert_eq!((merged[1].shards, merged[1].wall_ms), (2, 72.0));
    }

    #[test]
    fn pgo_rows_are_distinct_and_stock_rows_stay_legacy_shaped() {
        let stock = row("suite", "Quick", 50.0, 5_000);
        let mut pgo = stock.clone();
        pgo.pgo = true;
        pgo.wall_ms = 40.0;
        let line = pgo.to_json_line();
        assert!(line.contains("\"pgo\": true"));
        assert_eq!(BenchRow::parse(&line).expect("parses"), pgo);
        assert!(!stock.to_json_line().contains("pgo"));

        // The gate and the merge treat the PGO lane as its own
        // trajectory: a fresh PGO row never replaces or gates against
        // the stock row.
        let committed = vec![stock.clone()];
        assert_eq!(
            gate_row(&pgo, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::NoBaseline
        );
        let merged = merge(committed, vec![pgo.clone()]);
        assert_eq!(merged.len(), 2);
        assert!(!merged[0].pgo, "stock row retained and sorted first");
        assert_eq!(merged[1], pgo);
    }

    #[test]
    fn merge_replaces_matching_effort_and_keeps_the_other() {
        let committed = vec![row("E1", "Full", 60.0, 100), row("E1", "Quick", 6.0, 10)];
        let fresh = vec![row("E1", "Quick", 5.0, 10)];
        let merged = merge(committed, fresh);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].effort, "Full");
        assert_eq!(merged[0].wall_ms, 60.0, "Full row untouched");
        assert_eq!(merged[1].wall_ms, 5.0, "Quick row replaced");
    }

    #[test]
    fn gate_flags_event_drift_as_hard_failure() {
        let committed = vec![row("E1", "Full", 60.0, 100)];
        let fresh = row("E1", "Full", 60.0, 101);
        assert_eq!(
            gate_row(&fresh, &committed, WALL_TOLERANCE_PCT, RSS_TOLERANCE_PCT),
            GateOutcome::EventDrift {
                committed: 100,
                fresh: 101
            }
        );
    }

    #[test]
    fn gate_tolerates_wall_within_bounds_and_flags_beyond() {
        let committed = vec![row("E1", "Full", 100.0, 100)];
        assert!(matches!(
            gate_row(&row("E1", "Full", 120.0, 100), &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::Ok(delta) if (delta - 20.0).abs() < 1e-9
        ));
        assert!(matches!(
            gate_row(&row("E1", "Full", 130.0, 100), &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::WallRegression(delta) if (delta - 30.0).abs() < 1e-9
        ));
    }

    #[test]
    fn gate_skips_wall_for_noise_rows_but_still_checks_events() {
        let committed = vec![row("E5", "Full", 2.5, 100)];
        assert_eq!(
            gate_row(
                &row("E5", "Full", 50.0, 100),
                &committed,
                25.0,
                RSS_TOLERANCE_PCT
            ),
            GateOutcome::WallSkipped,
            "2.5ms baseline is under the wall floor"
        );
        assert!(matches!(
            gate_row(
                &row("E5", "Full", 2.5, 99),
                &committed,
                25.0,
                RSS_TOLERANCE_PCT
            ),
            GateOutcome::EventDrift { .. }
        ));
    }

    #[test]
    fn gate_reports_missing_baseline() {
        assert_eq!(
            gate_row(&row("E9", "Quick", 1.0, 1), &[], 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::NoBaseline
        );
    }

    #[test]
    fn max_rss_round_trips_and_is_elided_when_absent() {
        let mut r = row("E14", "Quick", 4_000.0, 9_000_000);
        r.max_rss_bytes = Some(1_409_286_144);
        let line = r.to_json_line();
        assert!(line.contains("\"max_rss_bytes\": 1409286144"));
        assert_eq!(BenchRow::parse(&line).expect("parses"), r);

        let bare = row("E1", "Full", 60.0, 100);
        let line = bare.to_json_line();
        assert!(!line.contains("max_rss_bytes"), "absent column is elided");
        assert_eq!(BenchRow::parse(&line).expect("parses").max_rss_bytes, None);
    }

    #[test]
    fn gate_flags_rss_regression_beyond_tolerance() {
        let gib = 1u64 << 30;
        let mut base = row("E14", "Full", 30_000.0, 9_000_000);
        base.max_rss_bytes = Some(gib);
        let committed = vec![base];

        let mut fresh = row("E14", "Full", 30_000.0, 9_000_000);
        fresh.max_rss_bytes = Some(gib + gib / 4); // +25%: inside 30%
        assert!(matches!(
            gate_row(&fresh, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::Ok(_)
        ));
        fresh.max_rss_bytes = Some(2 * gib); // +100%
        assert!(matches!(
            gate_row(&fresh, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::RssRegression(delta) if (delta - 100.0).abs() < 1e-9
        ));
        // Wall problems outrank memory problems.
        fresh.wall_ms = 60_000.0;
        assert!(matches!(
            gate_row(&fresh, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::WallRegression(_)
        ));
    }

    #[test]
    fn gate_skips_rss_below_floor_or_when_either_side_lacks_it() {
        // Small baseline: allocator noise, skipped even at 10x.
        let mut small = row("E1", "Full", 100.0, 100);
        small.max_rss_bytes = Some(16 << 20);
        let committed = vec![small.clone()];
        let mut fresh = small.clone();
        fresh.max_rss_bytes = Some(160 << 20);
        assert!(matches!(
            gate_row(&fresh, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::Ok(_)
        ));

        // Legacy baseline without the column: nothing to compare.
        let committed = vec![row("E1", "Full", 100.0, 100)];
        assert!(matches!(
            gate_row(&fresh, &committed, 25.0, RSS_TOLERANCE_PCT),
            GateOutcome::Ok(_)
        ));
    }
}
