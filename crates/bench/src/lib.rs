//! # mtnet-bench — the experiment harness
//!
//! One runner per paper artifact (every figure of the evaluation-relevant
//! sections plus the two headline claims), shared by the `experiments`
//! binary (full-length runs, printed tables recorded in `EXPERIMENTS.md`)
//! and the Criterion benches (short smoke-length runs).
//!
//! Every experiment's arms and replications are declarative
//! `mtnet_core::spec::ScenarioSpec`s (see [`experiments::arm_specs`])
//! executed **concurrently** through `mtnet_sim::runner::BatchRunner`
//! (set `MTNET_THREADS=1` to force the sequential path), with per-run
//! sub-seeds derived from the `(experiment, architecture, replication)`
//! path via `mtnet_sim::rng::SeedTree` — so the printed tables are
//! byte-identical at any thread count.
//!
//! Beyond the fixed suite, the [`sweep`] module (and `sweep` binary)
//! expands axis grids over any spec key and resumes interrupted or
//! extended sweeps from the content-addressed [`store`]; the [`coord`]
//! module adds the crash-safe multi-worker layer (`sweep --workers N`
//! or standalone `--worker-id` processes on a shared store directory):
//! lease files with heartbeats, work-stealing reclaim of dead workers'
//! cells, and quarantine of cells that keep killing their owners.
//!
//! | id  | paper artifact | runner |
//! |-----|----------------|--------|
//! | E1  | Fig 2.1 multi-tier architecture      | [`experiments::e1_multitier_coverage`] |
//! | E2  | Fig 2.2 Mobile IP procedures         | [`experiments::e2_mobileip`] |
//! | E3  | Fig 2.3 Cellular IP access network   | [`experiments::e3_cip_routing`] |
//! | E4  | Fig 2.4 Cellular IP handoff          | [`experiments::e4_cip_handoff`] |
//! | E5  | Fig 3.1 hierarchical location tables | [`experiments::e5_location`] |
//! | E6  | Fig 3.2 inter-domain same upper      | [`experiments::e6_interdomain_same`] |
//! | E7  | Fig 3.3 inter-domain different upper | [`experiments::e7_interdomain_diff`] |
//! | E8  | Fig 3.4 intra-domain handoffs        | [`experiments::e8_intradomain`] |
//! | E9  | Fig 4.1 RSMC architecture            | [`experiments::e9_rsmc`] |
//! | E10 | claim: improved QoS                  | [`experiments::e10_qos`] |
//! | E11 | claim: reduced packet loss           | [`experiments::e11_loss`] |
//! | E12 | §3.2 factor ablation                 | [`experiments::e12_ablation`] |
//! | E13 | resilience under infrastructure faults | [`experiments::e13_resilience`] |
//! | E14 | metro tier: 10^6 subscribers, O(active) state | [`experiments::e14_metro`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchjson;
pub mod cli;
pub mod coord;
pub mod experiments;
pub mod rss;
pub mod store;
pub mod sweep;

use mtnet_metrics::Table;

/// How long the simulated runs should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Short runs for Criterion benches and CI smoke tests.
    Quick,
    /// Full-length runs for the recorded experiment tables.
    Full,
}

impl Effort {
    /// Scales a full-length duration (seconds) to this effort level.
    pub fn secs(self, full: f64) -> f64 {
        match self {
            Effort::Quick => (full / 10.0).max(10.0),
            Effort::Full => full,
        }
    }

    /// Independent replications per experiment arm for the headline
    /// comparisons (E10/E11). Every `(experiment, architecture,
    /// replication)` tuple gets its own sub-seed (see
    /// `mtnet_sim::rng::SeedTree`) and the replications run concurrently
    /// through `mtnet_sim::runner::BatchRunner`; tables report
    /// mean ± 95% CI across them.
    pub fn replications(self) -> u64 {
        match self {
            Effort::Quick => 3,
            Effort::Full => 3,
        }
    }
}

/// One experiment's rendered output.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Experiment id ("E4").
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// One or more captioned tables.
    pub tables: Vec<(String, Table)>,
    /// Interpretation notes (expected shape, caveats).
    pub notes: Vec<String>,
    /// Deterministic work count: total simulator events executed across
    /// every run of the experiment, or — for analytic experiments — the
    /// number of model operations performed (the run-cost denominator in
    /// `BENCH.json`, and the perf gate's determinism tripwire).
    pub events: u64,
    /// True when the experiment runs no discrete-event simulation (its
    /// work counter is analytic-model operations and its wall time is
    /// noise — the perf gate skips wall comparisons for such rows).
    pub analytic: bool,
    /// Bit-exact `SimReport::fingerprint` of every run, in submission
    /// order — the regression surface for "same results, faster" work
    /// (`experiments --fingerprints <path>` records them).
    pub fingerprints: Vec<String>,
}

impl ExperimentResult {
    /// Renders the whole experiment as text.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for (caption, table) in &self.tables {
            let _ = writeln!(out, "\n{caption}");
            let _ = write!(out, "{table}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

/// Every experiment id, in suite order.
pub const ALL_IDS: [&str; 14] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14",
];

/// Runs a single experiment by id (case-insensitive); `None` for unknown
/// ids.
pub fn run_one(id: &str, effort: Effort, seed: u64) -> Option<ExperimentResult> {
    let r = match id.to_ascii_uppercase().as_str() {
        "E1" => experiments::e1_multitier_coverage(effort, seed),
        "E2" => experiments::e2_mobileip(effort, seed),
        "E3" => experiments::e3_cip_routing(effort, seed),
        "E4" => experiments::e4_cip_handoff(effort, seed),
        "E5" => experiments::e5_location(seed),
        "E6" => experiments::e6_interdomain_same(effort, seed),
        "E7" => experiments::e7_interdomain_diff(effort, seed),
        "E8" => experiments::e8_intradomain(effort, seed),
        "E9" => experiments::e9_rsmc(effort, seed),
        "E10" => experiments::e10_qos(effort, seed),
        "E11" => experiments::e11_loss(effort, seed),
        "E12" => experiments::e12_ablation(effort, seed),
        "E13" => experiments::e13_resilience(effort, seed),
        "E14" => experiments::e14_metro(effort, seed),
        _ => return None,
    };
    Some(r)
}

/// Runs every experiment in order.
pub fn run_all(effort: Effort, seed: u64) -> Vec<ExperimentResult> {
    ALL_IDS
        .iter()
        .map(|id| run_one(id, effort, seed).expect("known id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::Full.secs(300.0), 300.0);
        assert_eq!(Effort::Quick.secs(300.0), 30.0);
        assert_eq!(Effort::Quick.secs(50.0), 10.0, "floors at 10 s");
    }

    #[test]
    fn replication_counts_positive() {
        assert!(Effort::Quick.replications() >= 2, "CIs need >= 2 reps");
        assert!(Effort::Full.replications() >= Effort::Quick.replications());
    }

    #[test]
    fn render_contains_id_and_tables() {
        let r = experiments::e1_multitier_coverage(Effort::Quick, 1);
        let text = r.render();
        assert!(text.contains("E1"));
        assert!(text.contains("macro"));
    }
}
