//! Crash-safe multi-worker sweep coordination over the shared
//! [`crate::store::ResultStore`] directory.
//!
//! N worker processes (on one machine or many, sharing one directory)
//! drain one sweep grid cooperatively. The protocol is lease files next
//! to the store's `<key>.run` slots, built from the same crash-safe
//! primitives the store itself uses:
//!
//! * **Claim** — a worker claims a cell by *atomically creating*
//!   `<key>.lease` (content written to a unique temp file, then
//!   [`std::fs::hard_link`]ed into place — link fails with
//!   `AlreadyExists` when another worker holds the lease, so exactly one
//!   claimant wins any race).
//! * **Heartbeat** — while computing, the owner refreshes the lease's
//!   heartbeat timestamp (temp file + rename over its own lease) every
//!   quarter of the lease timeout from a background thread, so a slow
//!   cell is never mistaken for a dead worker.
//! * **Reclaim** — a lease whose heartbeat is older than the timeout is
//!   presumed abandoned (worker killed mid-cell). Any live worker may
//!   reclaim it work-stealing style: atomically rename the stale lease
//!   aside (only one renamer can win), then re-claim through the same
//!   atomic-create path with the reclaim count bumped.
//! * **Quarantine** — a cell abandoned more than
//!   [`CoordConfig::max_reclaims`] times is presumed poisoned (it kills
//!   whoever computes it). Instead of retrying forever, the reclaiming
//!   worker records `<key>.poison` (failure count, last owner) and the
//!   fleet degrades gracefully: every other cell still completes, and
//!   the final report exits nonzero naming the quarantined cells.
//! * **Completion** — the owner saves the result through the store's own
//!   atomic save, then releases (deletes) its lease. Completed cells are
//!   answered from the store and never recomputed, so crash-and-resume
//!   keeps the store's exactly-once contract: each `.run` file is
//!   written by exactly one successful compute.
//!
//! The staleness test is wall-clock (`SystemTime`), so on a shared
//! directory the lease timeout must exceed worker clock skew plus the
//! heartbeat interval. A live worker that stalls longer than the
//! timeout (swap storm, debugger) can be falsely reclaimed; the result
//! is duplicate work, never corruption — both computes produce
//! bit-identical bytes and the store save is an atomic rename.
//!
//! Testing hook: setting `MTNET_SWEEP_KILL_CELL=<substring>` makes a
//! worker abort the moment it claims a cell whose label contains the
//! substring — a deterministic stand-in for "this cell crashes its
//! worker", used by the kill-torture tests and CI to exercise reclaim
//! and quarantine without timing races.

use crate::store::{ResultStore, StoredRun};
use crate::sweep::{fmt_metric, SweepPlan, TABLE_METRICS};
use mtnet_metrics::{Replicates, Table};
use mtnet_sim::rng::RngStream;
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Environment override for the lease timeout in milliseconds
/// (the `--lease-timeout-ms` flag sets this, same validation path).
pub const LEASE_TIMEOUT_ENV: &str = "MTNET_LEASE_TIMEOUT_MS";

/// Environment override for the worker count (the `--workers` flag sets
/// this, same validation path).
pub const WORKERS_ENV: &str = "MTNET_SWEEP_WORKERS";

/// Testing hook: a worker that claims a cell whose label contains this
/// value prints a marker and aborts, simulating a crash on that cell.
pub const KILL_CELL_ENV: &str = "MTNET_SWEEP_KILL_CELL";

/// Header line of the lease file format.
const LEASE_HEADER: &str = "mtnet-lease v1";

/// Header line of the quarantine-record file format.
const POISON_HEADER: &str = "mtnet-poison v1";

/// Milliseconds since the unix epoch, for lease timestamps.
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// FNV-1a 64 of a string — stable worker-local hashing (start offsets,
/// jitter seeds).
fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One cell's lease, as stored in `<key>.lease`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Owner id (worker id + pid, unique per worker process).
    pub owner: String,
    /// Owner's process id (diagnostics only — staleness is heartbeats).
    pub pid: u32,
    /// When the cell was first claimed (unix ms).
    pub claimed_ms: u64,
    /// Last heartbeat (unix ms); stale when older than the timeout.
    pub heartbeat_ms: u64,
    /// How many times this cell's lease has been reclaimed from a dead
    /// owner. Exceeding [`CoordConfig::max_reclaims`] quarantines it.
    pub reclaims: u32,
    /// Human-readable cell label.
    pub label: String,
}

impl Lease {
    /// Serializes to the lease file format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{LEASE_HEADER}");
        let _ = writeln!(out, "owner = {}", self.owner);
        let _ = writeln!(out, "pid = {}", self.pid);
        let _ = writeln!(out, "claimed_ms = {}", self.claimed_ms);
        let _ = writeln!(out, "heartbeat_ms = {}", self.heartbeat_ms);
        let _ = writeln!(out, "reclaims = {}", self.reclaims);
        let _ = writeln!(out, "label = {}", self.label);
        out
    }

    /// Parses the lease file format.
    pub fn parse(text: &str) -> Result<Lease, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(LEASE_HEADER) {
            return Err(format!("missing {LEASE_HEADER:?} header"));
        }
        let mut lease = Lease {
            owner: String::new(),
            pid: 0,
            claimed_ms: 0,
            heartbeat_ms: 0,
            reclaims: 0,
            label: String::new(),
        };
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            // Values may themselves contain `=` (cell labels do), so
            // only the first `=` splits.
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("unparseable lease line {line:?}"))?;
            let value = value.trim();
            let num = |what: &str| {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} {value:?}"))
            };
            match key.trim() {
                "owner" => lease.owner = value.to_string(),
                "pid" => lease.pid = num("pid")? as u32,
                "claimed_ms" => lease.claimed_ms = num("claimed_ms")?,
                "heartbeat_ms" => lease.heartbeat_ms = num("heartbeat_ms")?,
                "reclaims" => lease.reclaims = num("reclaims")? as u32,
                "label" => lease.label = value.to_string(),
                other => return Err(format!("unknown lease key {other:?}")),
            }
        }
        Ok(lease)
    }

    /// True when the last heartbeat is older than `timeout_ms` at `now`
    /// — the owner is presumed dead and the lease reclaimable. A
    /// heartbeat exactly `timeout_ms` old is still live (strictly
    /// older-than), so the boundary is deterministic.
    pub fn is_stale(&self, now_ms: u64, timeout_ms: u64) -> bool {
        now_ms.saturating_sub(self.heartbeat_ms) > timeout_ms
    }
}

/// A quarantined cell's record, as stored in `<key>.poison`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poison {
    /// How many times the cell's lease was reclaimed before giving up.
    pub failures: u32,
    /// The last owner whose lease was reclaimed.
    pub last_owner: String,
    /// Human-readable cell label.
    pub label: String,
    /// When the cell was quarantined (unix ms).
    pub quarantined_ms: u64,
}

impl Poison {
    /// Serializes to the quarantine-record file format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{POISON_HEADER}");
        let _ = writeln!(out, "failures = {}", self.failures);
        let _ = writeln!(out, "last_owner = {}", self.last_owner);
        let _ = writeln!(out, "label = {}", self.label);
        let _ = writeln!(out, "quarantined_ms = {}", self.quarantined_ms);
        out
    }

    /// Parses the quarantine-record file format.
    pub fn parse(text: &str) -> Result<Poison, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(POISON_HEADER) {
            return Err(format!("missing {POISON_HEADER:?} header"));
        }
        let mut poison = Poison {
            failures: 0,
            last_owner: String::new(),
            label: String::new(),
            quarantined_ms: 0,
        };
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("unparseable poison line {line:?}"))?;
            let value = value.trim();
            match key.trim() {
                "failures" => {
                    poison.failures = value
                        .parse()
                        .map_err(|_| format!("bad failures {value:?}"))?;
                }
                "last_owner" => poison.last_owner = value.to_string(),
                "label" => poison.label = value.to_string(),
                "quarantined_ms" => {
                    poison.quarantined_ms = value
                        .parse()
                        .map_err(|_| format!("bad quarantined_ms {value:?}"))?;
                }
                other => return Err(format!("unknown poison key {other:?}")),
            }
        }
        Ok(poison)
    }
}

/// Tuning knobs of the lease protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordConfig {
    /// A lease whose heartbeat is older than this is reclaimable.
    pub lease_timeout_ms: u64,
    /// A cell reclaimed more than this many times is quarantined.
    pub max_reclaims: u32,
    /// Base of the jittered exponential backoff between claim passes.
    pub backoff_base_ms: u64,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            lease_timeout_ms: 10_000,
            max_reclaims: 3,
            backoff_base_ms: 25,
        }
    }
}

impl CoordConfig {
    /// Heartbeat refresh period: a quarter of the timeout, so a live
    /// owner gets ~4 chances to beat before being presumed dead.
    pub fn heartbeat_interval_ms(&self) -> u64 {
        (self.lease_timeout_ms / 4).max(10)
    }
}

/// Validates a worker count: a positive integer.
pub fn parse_worker_count(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "worker count must be a positive integer, got {value:?}"
        )),
    }
}

/// Validates a lease timeout in milliseconds: a positive integer.
pub fn parse_timeout_ms(value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "lease timeout must be a positive integer (milliseconds), got {value:?}"
        )),
    }
}

/// Validates a reclaim limit: a non-negative integer (0 = quarantine on
/// the first reclaim).
pub fn parse_max_reclaims(value: &str) -> Result<u32, String> {
    value
        .trim()
        .parse::<u32>()
        .map_err(|_| format!("max reclaims must be a non-negative integer, got {value:?}"))
}

/// Reads [`WORKERS_ENV`]; `Err` on a malformed value (same validation
/// as the `--workers` flag), `Ok(None)` when unset.
pub fn workers_from_env() -> Result<Option<usize>, String> {
    match std::env::var(WORKERS_ENV) {
        Ok(v) => parse_worker_count(&v)
            .map(Some)
            .map_err(|e| format!("{WORKERS_ENV}: {e}")),
        Err(_) => Ok(None),
    }
}

/// Reads [`LEASE_TIMEOUT_ENV`]; `Err` on a malformed value (same
/// validation as the `--lease-timeout-ms` flag), `Ok(None)` when unset.
pub fn lease_timeout_from_env() -> Result<Option<u64>, String> {
    match std::env::var(LEASE_TIMEOUT_ENV) {
        Ok(v) => parse_timeout_ms(&v)
            .map(Some)
            .map_err(|e| format!("{LEASE_TIMEOUT_ENV}: {e}")),
        Err(_) => Ok(None),
    }
}

/// The quarantine record's path for a store key, if present.
pub fn poison_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.poison"))
}

/// Loads the quarantine record for a key (corrupt records read as
/// quarantined-with-unknown-history rather than silently retryable).
pub fn load_poison(dir: &Path, key: &str) -> Option<Poison> {
    let text = std::fs::read_to_string(poison_path(dir, key)).ok()?;
    Some(Poison::parse(&text).unwrap_or(Poison {
        failures: 0,
        last_owner: "(corrupt record)".into(),
        label: String::new(),
        quarantined_ms: 0,
    }))
}

/// Outcome of one claim attempt.
#[derive(Debug)]
pub enum Claim {
    /// This worker now owns the cell and must compute + release it.
    Owned(Lease),
    /// Another live worker holds the lease (or won a claim race) —
    /// revisit after a backoff.
    Busy,
    /// The cell is quarantined; nobody will retry it.
    Quarantined(Poison),
}

/// Per-process uniquifier for temp-file names (pid alone is not enough:
/// one process claims many cells concurrently across tests/threads).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The lease-protocol side of one worker: claim, heartbeat, release,
/// reclaim and quarantine, all under one store directory.
#[derive(Debug)]
pub struct Coordinator {
    dir: PathBuf,
    owner: String,
    cfg: CoordConfig,
}

impl Coordinator {
    /// A coordinator for `owner` over the store's directory.
    pub fn new(store: &ResultStore, owner: impl Into<String>, cfg: CoordConfig) -> Coordinator {
        Coordinator {
            dir: store.dir().to_path_buf(),
            owner: owner.into(),
            cfg,
        }
    }

    /// This worker's owner id.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// The protocol configuration.
    pub fn config(&self) -> &CoordConfig {
        &self.cfg
    }

    /// The lease path for a store key.
    pub fn lease_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.lease"))
    }

    /// A unique (per process × call) temp path that the store's orphan
    /// GC recognizes by its `.tmp` suffix.
    fn tmp_path(&self, key: &str) -> PathBuf {
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        self.dir
            .join(format!("{key}.{}-{seq}.tmp", std::process::id()))
    }

    /// Attempts to claim a cell. Exactly one concurrent claimant can win
    /// ([`Claim::Owned`]); stale leases are reclaimed in passing, and a
    /// cell over the reclaim budget is quarantined here.
    pub fn try_claim(&self, key: &str, label: &str) -> io::Result<Claim> {
        if let Some(poison) = load_poison(&self.dir, key) {
            return Ok(Claim::Quarantined(poison));
        }
        let lease_path = self.lease_path(key);
        // Stale-lease reclaim: read the incumbent's heartbeat (a lease
        // that does not parse — e.g. tampered with — falls back to file
        // mtime, with an unknown reclaim history of 0).
        let incumbent: Option<(u64, u32, String)> = match std::fs::read_to_string(&lease_path) {
            Ok(text) => match Lease::parse(&text) {
                Ok(l) => Some((l.heartbeat_ms, l.reclaims, l.owner)),
                Err(_) => {
                    let mtime = std::fs::metadata(&lease_path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0);
                    Some((mtime, 0, "(unparseable lease)".into()))
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let reclaims = match incumbent {
            Some((heartbeat_ms, reclaims, last_owner)) => {
                let probe = Lease {
                    heartbeat_ms,
                    ..self.fresh_lease(label, reclaims)
                };
                if !probe.is_stale(now_unix_ms(), self.cfg.lease_timeout_ms) {
                    return Ok(Claim::Busy);
                }
                // Rename the stale lease aside: atomic, so exactly one
                // of any number of would-be reclaimers proceeds.
                let graveyard = self.tmp_path(key);
                match std::fs::rename(&lease_path, &graveyard) {
                    Ok(()) => {
                        let _ = std::fs::remove_file(&graveyard);
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Claim::Busy),
                    Err(e) => return Err(e),
                }
                let failures = reclaims + 1;
                if failures > self.cfg.max_reclaims {
                    let poison = Poison {
                        failures,
                        last_owner,
                        label: label.to_string(),
                        quarantined_ms: now_unix_ms(),
                    };
                    self.write_poison(key, &poison)?;
                    return Ok(Claim::Quarantined(poison));
                }
                failures
            }
            None => 0,
        };
        // Atomic create: write to a unique temp file, hard-link it into
        // place (fails if any other worker claimed first), drop the temp.
        let lease = self.fresh_lease(label, reclaims);
        let tmp = self.tmp_path(key);
        std::fs::write(&tmp, lease.render())?;
        let linked = std::fs::hard_link(&tmp, &lease_path);
        let _ = std::fs::remove_file(&tmp);
        match linked {
            Ok(()) => Ok(Claim::Owned(lease)),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(Claim::Busy),
            Err(e) => Err(e),
        }
    }

    /// A lease owned by this worker, claimed and beating now.
    fn fresh_lease(&self, label: &str, reclaims: u32) -> Lease {
        let now = now_unix_ms();
        Lease {
            owner: self.owner.clone(),
            pid: std::process::id(),
            claimed_ms: now,
            heartbeat_ms: now,
            reclaims,
            label: label.to_string(),
        }
    }

    /// Refreshes an owned lease's heartbeat (temp + rename over our own
    /// lease file — atomic, and only ever called while owning the key).
    pub fn refresh(&self, key: &str, lease: &Lease) -> io::Result<()> {
        let beat = Lease {
            heartbeat_ms: now_unix_ms(),
            ..lease.clone()
        };
        let tmp = self.tmp_path(key);
        std::fs::write(&tmp, beat.render())?;
        std::fs::rename(&tmp, self.lease_path(key))
    }

    /// Releases an owned lease (after the result is saved).
    pub fn release(&self, key: &str) -> io::Result<()> {
        std::fs::remove_file(self.lease_path(key))
    }

    /// Writes a quarantine record (same temp+rename idiom as the store).
    fn write_poison(&self, key: &str, poison: &Poison) -> io::Result<()> {
        let tmp = self.tmp_path(key);
        std::fs::write(&tmp, poison.render())?;
        std::fs::rename(&tmp, poison_path(&self.dir, key))
    }
}

/// How one worker resolved each cell of its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Computed,
    Loaded,
    Quarantined,
}

/// What one worker did over a whole grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Total cells in the expansion.
    pub cells: usize,
    /// Cells this worker computed and saved.
    pub computed: usize,
    /// Cells answered from the store (computed earlier or by peers).
    pub loaded: usize,
    /// Cells found (or driven) into quarantine.
    pub quarantined: usize,
    /// Store keys this worker saved, in completion order.
    pub saved_keys: Vec<String>,
}

impl WorkerOutcome {
    /// The worker's one-line summary:
    /// `worker <id>: N cells: computed X, loaded Y, quarantined Z`.
    pub fn summary(&self, owner: &str) -> String {
        format!(
            "worker {owner}: {} cells: computed {}, loaded {}, quarantined {}",
            self.cells, self.computed, self.loaded, self.quarantined
        )
    }
}

/// Runs one worker over the grid until every cell is resolved —
/// computed by us, completed by a peer, or quarantined. Blocks while
/// peers hold live leases (their heartbeats keep refreshing); reclaims
/// the moment a lease goes stale. Cells are visited starting at an
/// owner-specific offset so a fleet spreads its first claims instead of
/// stampeding cell 0.
pub fn run_worker(
    plan: &SweepPlan,
    master_seed: u64,
    store: &ResultStore,
    cfg: CoordConfig,
    owner: &str,
) -> Result<WorkerOutcome, String> {
    let cells = plan.cells()?;
    let coord = Coordinator::new(store, owner, cfg);
    let kill_cell = std::env::var(KILL_CELL_ENV).ok().filter(|v| !v.is_empty());
    let keyed: Vec<(String, String)> = cells
        .iter()
        .map(|c| {
            let text = c.spec.render();
            let key = ResultStore::key(&text, master_seed);
            (text, key)
        })
        .collect();
    let mut fates: Vec<Option<Fate>> = vec![None; cells.len()];
    let offset = if cells.is_empty() {
        0
    } else {
        fnv64(owner) as usize % cells.len()
    };
    let mut jitter = RngStream::derive(fnv64(owner), "coord.jitter");
    let mut idle_rounds: u32 = 0;
    loop {
        let mut progress = false;
        for step in 0..cells.len() {
            let i = (step + offset) % cells.len();
            if fates[i].is_some() {
                continue;
            }
            let (spec_text, key) = &keyed[i];
            let label = &cells[i].label;
            if store.load(spec_text, master_seed).is_some() {
                fates[i] = Some(Fate::Loaded);
                progress = true;
                continue;
            }
            match coord
                .try_claim(key, label)
                .map_err(|e| format!("claim {key}: {e}"))?
            {
                Claim::Busy => {}
                Claim::Quarantined(poison) => {
                    println!(
                        "worker {owner}: quarantined {key} ({label}) after {} failures \
                         (last owner {})",
                        poison.failures, poison.last_owner
                    );
                    fates[i] = Some(Fate::Quarantined);
                    progress = true;
                }
                Claim::Owned(lease) => {
                    // Claim-then-recheck: a peer may have completed the
                    // cell between our store probe and the claim.
                    if store.load(spec_text, master_seed).is_some() {
                        let _ = coord.release(key);
                        fates[i] = Some(Fate::Loaded);
                        progress = true;
                        continue;
                    }
                    if kill_cell.as_deref().is_some_and(|k| label.contains(k)) {
                        println!("worker {owner}: killed by {KILL_CELL_ENV} on ({label})");
                        // Abort without unwinding: the lease survives,
                        // exactly like a SIGKILL mid-compute.
                        std::process::abort();
                    }
                    let report = compute_with_heartbeats(&coord, key, &lease, || {
                        cells[i].spec.run(master_seed)
                    });
                    let run = StoredRun::from_report(label, &cells[i].spec, master_seed, &report);
                    store
                        .save(&run)
                        .map_err(|e| format!("store write {key}: {e}"))?;
                    coord
                        .release(key)
                        .map_err(|e| format!("release {key}: {e}"))?;
                    println!("worker {owner}: saved {key} ({label})");
                    fates[i] = Some(Fate::Computed);
                    progress = true;
                }
            }
        }
        if fates.iter().all(Option::is_some) {
            break;
        }
        // Jittered exponential backoff: cheap spins while the fleet is
        // making progress, longer (capped) waits while blocked on peers'
        // leases. Jitter is deterministic per owner, so two workers
        // never stay phase-locked.
        idle_rounds = if progress {
            0
        } else {
            idle_rounds.saturating_add(1)
        };
        let cap = (cfg.lease_timeout_ms / 2).max(cfg.backoff_base_ms);
        let base = cfg
            .backoff_base_ms
            .saturating_mul(1u64 << idle_rounds.min(8))
            .min(cap);
        let ms = ((base as f64) * jitter.uniform(0.5, 1.5)).max(1.0) as u64;
        std::thread::sleep(Duration::from_millis(ms));
    }
    let count = |fate: Fate| fates.iter().filter(|f| **f == Some(fate)).count();
    let saved_keys = fates
        .iter()
        .zip(&keyed)
        .filter(|(f, _)| **f == Some(Fate::Computed))
        .map(|(_, (_, key))| key.clone())
        .collect();
    Ok(WorkerOutcome {
        cells: cells.len(),
        computed: count(Fate::Computed),
        loaded: count(Fate::Loaded),
        quarantined: count(Fate::Quarantined),
        saved_keys,
    })
}

/// Runs `compute` while a background thread refreshes the lease's
/// heartbeat every [`CoordConfig::heartbeat_interval_ms`], so a long
/// cell is never presumed abandoned while its worker is alive.
fn compute_with_heartbeats<R: Send>(
    coord: &Coordinator,
    key: &str,
    lease: &Lease,
    compute: impl FnOnce() -> R + Send,
) -> R {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            let interval = Duration::from_millis(coord.config().heartbeat_interval_ms());
            let slice = interval
                .min(Duration::from_millis(10))
                .max(Duration::from_millis(1));
            let mut last = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                if last.elapsed() >= interval {
                    let _ = coord.refresh(key, lease);
                    last = Instant::now();
                }
            }
        });
        let result = compute();
        stop.store(true, Ordering::Relaxed);
        result
    })
}

/// The fleet-level view of a grid after the workers drained it.
#[derive(Debug)]
pub struct GridReport {
    /// One row per cell: axis columns, metrics, and a status column.
    pub table: Table,
    /// Total cells in the expansion.
    pub cells: usize,
    /// Cells completed this invocation (absent from `preexisting`).
    pub computed: usize,
    /// Cells that were already complete before this invocation.
    pub loaded: usize,
    /// Cells quarantined (`.poison` present).
    pub quarantined: usize,
    /// Cells neither completed nor quarantined (workers died or were
    /// interrupted) — a resume will pick them up.
    pub missing: usize,
}

impl GridReport {
    /// The fleet's machine-checkable final line:
    /// `sweep "<family>": N cells: computed X, loaded Y, quarantined Z, missing M`.
    pub fn summary(&self, family: &str) -> String {
        format!(
            "sweep \"{family}\": {} cells: computed {}, loaded {}, quarantined {}, missing {}",
            self.cells, self.computed, self.loaded, self.quarantined, self.missing
        )
    }

    /// The process exit code the fleet contract prescribes: 0 when the
    /// grid is fully complete, 3 when quarantined cells degraded it,
    /// 1 when cells are simply missing (crashed fleet — resume).
    pub fn exit_code(&self) -> i32 {
        if self.missing > 0 {
            1
        } else if self.quarantined > 0 {
            3
        } else {
            0
        }
    }
}

/// Collects a grid's state from the store after a fleet ran:
/// per-cell rows (with quarantine/missing status) plus the counts the
/// final summary line and exit code are built from. `preexisting` is
/// the set of store keys that were already complete before the fleet
/// started (so computed-vs-loaded accounting survives the parent not
/// seeing its children's internals).
pub fn collect_grid(
    plan: &SweepPlan,
    master_seed: u64,
    store: &ResultStore,
    preexisting: &HashSet<String>,
) -> Result<GridReport, String> {
    let cells = plan.cells()?;
    let mut header: Vec<String> = plan.axes.iter().map(|a| a.key.clone()).collect();
    if header.is_empty() {
        header.push("cell".into());
    }
    header.push("rep".into());
    header.extend(TABLE_METRICS.iter().map(|m| m.to_string()));
    header.push("status".into());
    let mut table = Table::new(header);
    let (mut computed, mut loaded, mut quarantined, mut missing) = (0, 0, 0, 0);
    for cell in &cells {
        let spec_text = cell.spec.render();
        let key = ResultStore::key(&spec_text, master_seed);
        let mut row: Vec<String> = if cell.assignments.is_empty() {
            vec!["base".into()]
        } else {
            cell.assignments.iter().map(|(_, v)| v.clone()).collect()
        };
        row.push(cell.replication.to_string());
        if let Some(run) = store.load(&spec_text, master_seed) {
            row.extend(TABLE_METRICS.iter().map(|m| fmt_metric(&run, m)));
            if preexisting.contains(&key) {
                loaded += 1;
                row.push("loaded".into());
            } else {
                computed += 1;
                row.push("computed".into());
            }
        } else if let Some(poison) = load_poison(store.dir(), &key) {
            quarantined += 1;
            row.extend(TABLE_METRICS.iter().map(|_| "-".to_string()));
            row.push(format!("quarantined ({} failures)", poison.failures));
        } else {
            missing += 1;
            row.extend(TABLE_METRICS.iter().map(|_| "-".to_string()));
            row.push("missing".into());
        }
        table.row(row);
    }
    Ok(GridReport {
        table,
        cells: cells.len(),
        computed,
        loaded,
        quarantined,
        missing,
    })
}

/// The cross-cell analysis of a finished grid: per grid point (all
/// replications pooled), mean ± 95% CI of every table metric.
#[derive(Debug)]
pub struct ReportOutcome {
    /// One row per grid point: axis columns, `n` (reps present), then
    /// `mean ± ci95` per metric.
    pub table: Table,
    /// Grid points (cells / replications).
    pub points: usize,
    /// Cells found complete in the store.
    pub complete: usize,
    /// Cells quarantined.
    pub quarantined: usize,
    /// Labels of the quarantined cells (`axis=value,... rep=n`), in
    /// expansion order — a degraded report must name what it is missing,
    /// not just count it.
    pub quarantined_cells: Vec<String>,
    /// Cells neither complete nor quarantined.
    pub missing: usize,
}

impl ReportOutcome {
    /// The report's one-line summary:
    /// `sweep report "<family>": P points x R reps: complete C, quarantined Q, missing M`.
    pub fn summary(&self, family: &str, reps: u64) -> String {
        format!(
            "sweep report \"{family}\": {} points x {reps} reps: complete {}, quarantined {}, missing {}",
            self.points, self.complete, self.quarantined, self.missing
        )
    }

    /// The process exit code, same contract as [`GridReport::exit_code`]:
    /// 0 for a fully complete grid, 1 when cells are missing (resume the
    /// fleet), 3 when quarantined cells degraded the aggregate.
    pub fn exit_code(&self) -> i32 {
        if self.missing > 0 {
            1
        } else if self.quarantined > 0 {
            3
        } else {
            0
        }
    }
}

/// Formats one aggregated metric column: mean ± normal-approximation
/// 95% CI over the point's replications (loss rates as percentages,
/// like the per-cell tables).
fn fmt_aggregate(name: &str, agg: &Replicates) -> String {
    match agg.get(name) {
        Some(s) if name == "loss_rate" => format!(
            "{:.3}% ± {:.3}%",
            s.mean() * 100.0,
            s.ci95_half_width() * 100.0
        ),
        Some(s) => format!("{:.1} ± {:.1}", s.mean(), s.ci95_half_width()),
        None => "-".into(),
    }
}

/// Aggregates a finished grid into an experiment-style table: cells are
/// grouped by grid point (axis assignments), replications pool into a
/// [`Replicates`] per point, and each metric column reports
/// mean ± 95% CI. Missing and quarantined cells are counted (and shrink
/// a point's `n`) rather than failing the whole report.
pub fn report_sweep(
    plan: &SweepPlan,
    master_seed: u64,
    store: &ResultStore,
) -> Result<ReportOutcome, String> {
    let cells = plan.cells()?;
    // Group cells by point, preserving expansion order (replications are
    // innermost, so a point's cells are contiguous).
    let mut points: Vec<(Vec<(String, String)>, Replicates, usize, usize)> = Vec::new();
    let (mut complete, mut quarantined, mut missing) = (0, 0, 0);
    let mut quarantined_cells = Vec::new();
    for cell in &cells {
        if points.last().map(|(a, ..)| a) != Some(&cell.assignments) {
            points.push((cell.assignments.clone(), Replicates::new(), 0, 0));
        }
        let point = points.last_mut().expect("just pushed");
        let spec_text = cell.spec.render();
        let key = ResultStore::key(&spec_text, master_seed);
        if let Some(run) = store.load(&spec_text, master_seed) {
            complete += 1;
            point.2 += 1;
            for (name, value) in &run.metrics {
                point.1.record(name, value.as_f64());
            }
        } else if load_poison(store.dir(), &key).is_some() {
            quarantined += 1;
            point.3 += 1;
            quarantined_cells.push(cell.label.clone());
        } else {
            missing += 1;
        }
    }
    let mut header: Vec<String> = plan.axes.iter().map(|a| a.key.clone()).collect();
    if header.is_empty() {
        header.push("cell".into());
    }
    header.push("n".into());
    header.extend(TABLE_METRICS.iter().map(|m| m.to_string()));
    let mut table = Table::new(header);
    for (assignments, agg, present, poisoned) in &points {
        let mut row: Vec<String> = if assignments.is_empty() {
            vec!["base".into()]
        } else {
            assignments.iter().map(|(_, v)| v.clone()).collect()
        };
        let n = if *poisoned > 0 {
            format!("{present} (q{poisoned})")
        } else {
            present.to_string()
        };
        row.push(n);
        row.extend(TABLE_METRICS.iter().map(|m| fmt_aggregate(m, agg)));
        table.row(row);
    }
    Ok(ReportOutcome {
        table,
        points: points.len(),
        complete,
        quarantined,
        quarantined_cells,
        missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::parse_axis;
    use crate::Effort;
    use mtnet_core::spec::ScenarioSpec;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("mtnet-coord-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("temp store")
    }

    fn quick_cfg() -> CoordConfig {
        CoordConfig {
            lease_timeout_ms: 200,
            max_reclaims: 2,
            backoff_base_ms: 1,
        }
    }

    #[test]
    fn lease_roundtrips_including_labels_with_equals() {
        let lease = Lease {
            owner: "w1@4242".into(),
            pid: 4242,
            claimed_ms: 1_700_000_000_000,
            heartbeat_ms: 1_700_000_000_500,
            reclaims: 3,
            label: "arch=multi-tier+rsmc,domains=2 rep=1".into(),
        };
        let back = Lease::parse(&lease.render()).expect("parse back");
        assert_eq!(back, lease);
        assert!(Lease::parse("garbage").is_err());
        assert!(Lease::parse("mtnet-lease v1\nwarp = 9\n").is_err());
    }

    #[test]
    fn poison_roundtrips() {
        let poison = Poison {
            failures: 4,
            last_owner: "w2@777".into(),
            label: "domains=2 rep=0".into(),
            quarantined_ms: 1_700_000_001_000,
        };
        let back = Poison::parse(&poison.render()).expect("parse back");
        assert_eq!(back, poison);
        assert!(Poison::parse("mtnet-poison v1\nfailures = x\n").is_err());
    }

    #[test]
    fn staleness_boundary_is_strictly_older_than() {
        let lease = Lease {
            owner: "w".into(),
            pid: 1,
            claimed_ms: 1_000,
            heartbeat_ms: 1_000,
            reclaims: 0,
            label: String::new(),
        };
        // Exactly at the timeout: still live. One past: stale.
        assert!(!lease.is_stale(1_000 + 500, 500));
        assert!(lease.is_stale(1_000 + 501, 500));
        // A heartbeat from the future (clock skew) is never stale.
        assert!(!lease.is_stale(900, 500));
    }

    #[test]
    fn claim_is_mutually_exclusive_across_racing_threads() {
        let store = tmp_store("race");
        let cfg = CoordConfig::default();
        let winners: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let store = &store;
                    s.spawn(move || {
                        let coord = Coordinator::new(store, format!("w{i}"), cfg);
                        matches!(
                            coord
                                .try_claim("deadbeef00000000", "cell")
                                .expect("claim io"),
                            Claim::Owned(_)
                        ) as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        });
        assert_eq!(winners, 1, "exactly one of 8 racing claimants may win");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_lease_is_reclaimed_with_bumped_count_then_quarantined() {
        let store = tmp_store("reclaim");
        let cfg = quick_cfg();
        let coord = Coordinator::new(&store, "alive", cfg);
        let key = "feedface00000000";
        // Plant a lease whose heartbeat is long past.
        let dead = Lease {
            owner: "dead@1".into(),
            pid: 1,
            claimed_ms: 1,
            heartbeat_ms: 1,
            reclaims: 0,
            label: "cell".into(),
        };
        std::fs::write(coord.lease_path(key), dead.render()).expect("plant lease");
        match coord.try_claim(key, "cell").expect("claim io") {
            Claim::Owned(lease) => {
                assert_eq!(lease.reclaims, 1, "first reclaim bumps the count");
                assert_eq!(lease.owner, "alive");
            }
            other => panic!("expected reclaim to win, got {other:?}"),
        }
        // A fresh (just-written) lease is not reclaimable.
        assert!(matches!(
            coord.try_claim(key, "cell").expect("claim io"),
            Claim::Busy
        ));
        // Drive the reclaim count over the budget: each round plants a
        // stale lease carrying the previous count.
        for reclaims in 1..=cfg.max_reclaims {
            let stale = Lease {
                heartbeat_ms: 1,
                reclaims,
                ..dead.clone()
            };
            std::fs::write(coord.lease_path(key), stale.render()).expect("plant stale");
            let claim = coord.try_claim(key, "cell").expect("claim io");
            if reclaims < cfg.max_reclaims {
                assert!(
                    matches!(claim, Claim::Owned(_)),
                    "round {reclaims}: {claim:?}"
                );
            } else {
                match claim {
                    Claim::Quarantined(poison) => {
                        assert_eq!(poison.failures, cfg.max_reclaims + 1);
                        assert_eq!(poison.last_owner, "dead@1");
                        assert!(poison_path(store.dir(), key).exists());
                    }
                    other => panic!("expected quarantine, got {other:?}"),
                }
            }
        }
        // Once quarantined, every claim sees the poison record.
        assert!(matches!(
            coord.try_claim(key, "cell").expect("claim io"),
            Claim::Quarantined(_)
        ));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unparseable_lease_falls_back_to_mtime_staleness() {
        let store = tmp_store("unparseable");
        let coord = Coordinator::new(&store, "w", quick_cfg());
        let key = "0123456789abcdef";
        std::fs::write(coord.lease_path(key), "not a lease").expect("plant garbage");
        // Freshly written: mtime is now, so the lease is busy, not free.
        assert!(matches!(
            coord.try_claim(key, "cell").expect("claim io"),
            Claim::Busy
        ));
        // Once the mtime ages past the timeout it is reclaimed.
        std::thread::sleep(Duration::from_millis(quick_cfg().lease_timeout_ms + 50));
        assert!(matches!(
            coord.try_claim(key, "cell").expect("claim io"),
            Claim::Owned(_)
        ));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn release_frees_the_cell_for_the_next_claimant() {
        let store = tmp_store("release");
        let coord = Coordinator::new(&store, "w", CoordConfig::default());
        let key = "cafebabe00000000";
        assert!(matches!(
            coord.try_claim(key, "c").expect("io"),
            Claim::Owned(_)
        ));
        coord.release(key).expect("release");
        assert!(matches!(
            coord.try_claim(key, "c").expect("io"),
            Claim::Owned(_)
        ));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn flag_and_env_parsers_validate() {
        assert_eq!(parse_worker_count("3").unwrap(), 3);
        assert!(parse_worker_count("0").is_err());
        assert!(parse_worker_count("-2").is_err());
        assert!(parse_worker_count("many").is_err());
        assert_eq!(parse_timeout_ms("1500").unwrap(), 1500);
        assert!(parse_timeout_ms("0").is_err());
        assert!(parse_timeout_ms("soon").is_err());
        assert_eq!(parse_max_reclaims("0").unwrap(), 0);
        assert!(parse_max_reclaims("-1").is_err());
    }

    #[test]
    fn report_aggregates_mean_and_ci_over_reps() {
        let store = tmp_store("report");
        let runner = mtnet_sim::runner::BatchRunner::new(1);
        let plan = SweepPlan {
            family: "commute-corridor".into(),
            base: ScenarioSpec::commute_corridor().with_duration_s(100.0),
            axes: vec![parse_axis("vehicles=1,2").unwrap()],
            replications: 2,
            effort: Effort::Quick,
        };
        let outcome = crate::sweep::run_sweep(&plan, 42, Some(&store), &runner).expect("sweep");
        assert_eq!(outcome.computed, 4);
        let report = report_sweep(&plan, 42, &store).expect("report");
        assert_eq!(report.points, 2);
        assert_eq!(
            (report.complete, report.missing, report.quarantined),
            (4, 0, 0)
        );
        // The "events" column of point vehicles=1 must be the by-hand
        // mean ± ci95 of its two replications.
        let mut by_hand = Replicates::new();
        for run in &outcome.runs[0..2] {
            by_hand.record("events", run.metric("events").unwrap().as_f64());
        }
        let expected = fmt_aggregate("events", &by_hand);
        let rendered = report.table.to_string();
        assert!(
            rendered.contains(&expected),
            "report table missing {expected:?}:\n{rendered}"
        );
        // Deleting one slot: the report degrades (n shrinks), not fails.
        let victim_text = plan.cells().unwrap()[0].spec.render();
        std::fs::remove_file(store.path_of(&ResultStore::key(&victim_text, 42))).expect("rm");
        let partial = report_sweep(&plan, 42, &store).expect("partial report");
        assert_eq!((partial.complete, partial.missing), (3, 1));
        assert_eq!(report.exit_code(), 0, "complete grid reports clean");
        assert_eq!(partial.exit_code(), 1, "missing cells mean resume");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn report_on_all_poison_grid_exits_3_and_names_the_cells() {
        let store = tmp_store("allpoison");
        let plan = SweepPlan {
            family: "commute-corridor".into(),
            base: ScenarioSpec::commute_corridor().with_duration_s(100.0),
            axes: vec![parse_axis("vehicles=1,2").unwrap()],
            replications: 2,
            effort: Effort::Quick,
        };
        let cells = plan.cells().expect("cells");
        // Quarantine every cell without computing anything, the way the
        // lease protocol would after repeated worker deaths.
        for cell in &cells {
            let key = ResultStore::key(&cell.spec.render(), 42);
            let poison = Poison {
                failures: 3,
                last_owner: "dead@1".into(),
                label: cell.label.clone(),
                quarantined_ms: 1_700_000_000_000,
            };
            std::fs::write(poison_path(store.dir(), &key), poison.render()).expect("plant poison");
        }
        let report = report_sweep(&plan, 42, &store).expect("report");
        assert_eq!(
            (report.complete, report.quarantined, report.missing),
            (0, 4, 0)
        );
        assert_eq!(report.exit_code(), 3, "all-poison grid must exit 3");
        let labels: Vec<String> = cells.iter().map(|c| c.label.clone()).collect();
        assert_eq!(
            report.quarantined_cells, labels,
            "the report must name every quarantined cell"
        );
        // Quarantine outranks nothing here — but with one cell also
        // missing, missing wins (exit 1 means "resume first").
        let key0 = ResultStore::key(&cells[0].spec.render(), 42);
        std::fs::remove_file(poison_path(store.dir(), &key0)).expect("rm poison");
        let mixed = report_sweep(&plan, 42, &store).expect("mixed report");
        assert_eq!((mixed.quarantined, mixed.missing), (3, 1));
        assert_eq!(mixed.exit_code(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
