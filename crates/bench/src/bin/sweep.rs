//! Parameter sweeps over declarative scenario specs, with a resumable
//! content-addressed result store.
//!
//! ```text
//! sweep --family dense-urban --effort quick \
//!       --axis arch=multi-tier+rsmc,flat-cellular-ip --axis domains=1,2 \
//!       --reps 2 --seed 42 --store .mtnet-store
//! sweep --spec my-scenario.mtspec --axis route_update_ms=500..4500..1000
//! sweep --list-families
//! ```
//!
//! Cells already present in the store (keyed by canonical spec text +
//! master seed) are loaded, not recomputed — interrupting a sweep and
//! re-invoking it, or extending the grid/replications, only simulates
//! the missing cells. `--no-store` forces a stateless run. The final
//! line (`sweep "<family>": N cells: computed X, loaded Y`) is the
//! machine-checkable resume contract CI greps.

use mtnet_bench::store::ResultStore;
use mtnet_bench::sweep::{parse_axis, run_sweep, Axis, SweepPlan};
use mtnet_bench::{cli, Effort};
use mtnet_core::spec::ScenarioSpec;
use mtnet_sim::runner::BatchRunner;

fn usage() -> ! {
    eprintln!(
        "usage: sweep --family <name> | --spec <file>  [--axis key=v1,v2|lo..hi..step]...\n\
         \x20      [--reps N] [--effort quick|full] [--seed N]\n\
         \x20      [--store DIR | --no-store] [--threads N] [--list-families]\n\
         axes assign any scenario-spec key (see ScenarioSpec::set); cells already\n\
         in the store are loaded instead of recomputed"
    );
    std::process::exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_switch(&mut args, "--list-families") {
        println!("available scenario families:");
        for (name, preset) in ScenarioSpec::families() {
            let spec = preset();
            println!(
                "  {name:<18} {} domain(s), {} {} cells/domain, pop {}p/{}c/{}v, {:.0}s",
                spec.n_domains,
                spec.micro_per_domain,
                spec.micro_kind,
                spec.pedestrians,
                spec.cyclists,
                spec.vehicles,
                spec.duration_s,
            );
        }
        return;
    }
    let take =
        |args: &mut Vec<String>, flag| cli::take_value(args, flag).unwrap_or_else(|e| fail(&e));
    let family_arg = take(&mut args, "--family");
    let spec_file = take(&mut args, "--spec");
    let axes: Vec<Axis> = cli::take_values(&mut args, "--axis")
        .unwrap_or_else(|e| fail(&e))
        .iter()
        .map(|a| parse_axis(a).unwrap_or_else(|e| fail(&e)))
        .collect();
    let reps: u64 = take(&mut args, "--reps")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--reps needs a positive integer"))
        })
        .unwrap_or(1);
    let effort = match take(&mut args, "--effort").as_deref() {
        None | Some("full") => Effort::Full,
        Some("quick") => Effort::Quick,
        Some(other) => fail(&format!("unknown effort {other:?} (quick|full)")),
    };
    let master_seed: u64 = take(&mut args, "--seed")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--seed needs an integer"))
        })
        .unwrap_or(42);
    let no_store = cli::take_switch(&mut args, "--no-store");
    let store_dir = take(&mut args, "--store").unwrap_or_else(|| ".mtnet-store".into());
    cli::apply_threads_flag(&mut args).unwrap_or_else(|e| fail(&e));
    if !args.is_empty() {
        eprintln!("sweep: unrecognized arguments: {}", args.join(" "));
        usage();
    }

    let (family, base) = match (family_arg, spec_file) {
        (Some(name), None) => {
            let spec = ScenarioSpec::family(&name)
                .unwrap_or_else(|| fail(&format!("unknown family {name:?} (try --list-families)")));
            (name, spec)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            (spec.name.clone(), spec)
        }
        _ => usage(),
    };

    let plan = SweepPlan {
        family: family.clone(),
        base,
        axes,
        replications: reps,
        effort,
    };
    let store = if no_store {
        None
    } else {
        Some(
            ResultStore::open(&store_dir)
                .unwrap_or_else(|e| fail(&format!("cannot open store {store_dir}: {e}"))),
        )
    };
    let runner = BatchRunner::from_env();
    println!(
        "mtnet sweep — family: {family}, effort: {effort:?}, seed: {master_seed}, threads: {}, store: {}",
        runner.threads(),
        if no_store { "(disabled)".to_string() } else { store_dir.clone() },
    );
    let start = std::time::Instant::now();
    let outcome =
        run_sweep(&plan, master_seed, store.as_ref(), &runner).unwrap_or_else(|e| fail(&e));
    eprintln!("[sweep wall: {:.2}s]", start.elapsed().as_secs_f64());
    print!("{}", outcome.table);
    println!("{}", outcome.summary(&family));
}
