//! Parameter sweeps over declarative scenario specs, with a resumable
//! content-addressed result store and a crash-safe multi-worker mode.
//!
//! ```text
//! sweep --family dense-urban --effort quick \
//!       --axis arch=multi-tier+rsmc,flat-cellular-ip --axis domains=1,2 \
//!       --reps 2 --seed 42 --store .mtnet-store
//! sweep --spec my-scenario.mtspec --axis route_update_ms=500..4500..1000
//! sweep --family dense-urban --effort quick --axis domains=1,2 --workers 3
//! sweep --family dense-urban --effort quick --axis domains=1,2 \
//!       --worker-id box1 --store /shared/.mtnet-store   # one worker per machine
//! sweep --family dense-urban --effort quick --axis domains=1,2 --reps 4 --report
//! sweep --list-families
//! ```
//!
//! Cells already present in the store (keyed by canonical spec text +
//! master seed) are loaded, not recomputed — interrupting a sweep and
//! re-invoking it, or extending the grid/replications, only simulates
//! the missing cells. `--no-store` forces a stateless run. The final
//! line (`sweep "<family>": N cells: computed X, loaded Y`) is the
//! machine-checkable resume contract CI greps.
//!
//! **Multi-worker mode** (`--workers N`, or standalone `--worker-id`
//! processes sharing one `--store` directory) drains the grid through
//! the lease protocol of `mtnet_bench::coord`: atomic `<key>.lease`
//! claims with heartbeats, work-stealing reclaim of cells abandoned by
//! killed workers (stale heartbeat), jittered exponential backoff on
//! contention, and quarantine (`<key>.poison`) of cells reclaimed more
//! than `--max-reclaims` times. The fleet's final pass prints the grid
//! table plus `computed/loaded/quarantined/missing` counts and exits 0
//! only when the grid is complete (3 = quarantined cells, 1 = missing
//! cells — resume by re-invoking). `--lease-timeout-ms` (env
//! `MTNET_LEASE_TIMEOUT_MS`) tunes crash-detection latency.
//!
//! **Report mode** (`--report`) aggregates a finished grid without
//! computing anything: one row per grid point, mean ± 95% CI over its
//! replications for every table metric. It shares the fleet's exit
//! contract — 0 only for a complete grid, 3 when quarantined cells
//! degraded the aggregate (each named on its own `quarantined:` line),
//! 1 when cells are missing.

use mtnet_bench::coord::{self, CoordConfig};
use mtnet_bench::store::ResultStore;
use mtnet_bench::sweep::{parse_axis, run_sweep, Axis, SweepPlan};
use mtnet_bench::{cli, Effort};
use mtnet_core::spec::ScenarioSpec;
use mtnet_sim::runner::BatchRunner;
use std::collections::HashSet;

fn usage() -> ! {
    eprintln!(
        "usage: sweep --family <name> | --spec <file>  [--axis key=v1,v2|lo..hi..step]...\n\
         \x20      [--reps N] [--effort quick|full] [--seed N]\n\
         \x20      [--store DIR | --no-store] [--threads N] [--list-families]\n\
         \x20      [--workers N | --worker-id ID] [--lease-timeout-ms MS] [--max-reclaims K]\n\
         \x20      [--report]\n\
         axes assign any scenario-spec key (see ScenarioSpec::set); cells already\n\
         in the store are loaded instead of recomputed. --workers N drains the grid\n\
         with N crash-safe worker processes (leases + heartbeats in the store dir);\n\
         --worker-id runs one such worker standalone (share --store across machines);\n\
         --report renders mean ± 95% CI per grid point from a finished store"
    );
    std::process::exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2)
}

fn main() {
    // Raw argv is kept verbatim for respawning worker children.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args = raw.clone();
    if cli::take_switch(&mut args, "--list-families") {
        println!("available scenario families:");
        for (name, preset) in ScenarioSpec::families() {
            let spec = preset();
            println!(
                "  {name:<18} {} domain(s), {} {} cells/domain, pop {}p/{}c/{}v, {:.0}s",
                spec.n_domains,
                spec.micro_per_domain,
                spec.micro_kind,
                spec.pedestrians,
                spec.cyclists,
                spec.vehicles,
                spec.duration_s,
            );
        }
        return;
    }
    let take =
        |args: &mut Vec<String>, flag| cli::take_value(args, flag).unwrap_or_else(|e| fail(&e));
    let family_arg = take(&mut args, "--family");
    let spec_file = take(&mut args, "--spec");
    let axes: Vec<Axis> = cli::take_values(&mut args, "--axis")
        .unwrap_or_else(|e| fail(&e))
        .iter()
        .map(|a| parse_axis(a).unwrap_or_else(|e| fail(&e)))
        .collect();
    let reps: u64 = take(&mut args, "--reps")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--reps needs a positive integer"))
        })
        .unwrap_or(1);
    let effort = match take(&mut args, "--effort").as_deref() {
        None | Some("full") => Effort::Full,
        Some("quick") => Effort::Quick,
        Some(other) => fail(&format!("unknown effort {other:?} (quick|full)")),
    };
    let master_seed: u64 = take(&mut args, "--seed")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--seed needs an integer"))
        })
        .unwrap_or(42);
    let no_store = cli::take_switch(&mut args, "--no-store");
    let store_dir = take(&mut args, "--store").unwrap_or_else(|| ".mtnet-store".into());
    cli::apply_threads_flag(&mut args).unwrap_or_else(|e| fail(&e));
    // Multi-worker / report knobs. The flags pin env vars validated by
    // the same parsers the env-reading path uses, so a malformed
    // MTNET_SWEEP_WORKERS or MTNET_LEASE_TIMEOUT_MS fails identically.
    let report_mode = cli::take_switch(&mut args, "--report");
    let worker_id = take(&mut args, "--worker-id");
    cli::apply_workers_flag(&mut args).unwrap_or_else(|e| fail(&e));
    cli::apply_lease_timeout_flag(&mut args).unwrap_or_else(|e| fail(&e));
    let max_reclaims = take(&mut args, "--max-reclaims").map(|v| {
        coord::parse_max_reclaims(&v).unwrap_or_else(|e| fail(&format!("--max-reclaims: {e}")))
    });
    let workers = coord::workers_from_env().unwrap_or_else(|e| fail(&e));
    let lease_timeout_ms = coord::lease_timeout_from_env().unwrap_or_else(|e| fail(&e));
    if !args.is_empty() {
        eprintln!("sweep: unrecognized arguments: {}", args.join(" "));
        usage();
    }
    let coord_cfg = {
        let mut cfg = CoordConfig::default();
        if let Some(ms) = lease_timeout_ms {
            cfg.lease_timeout_ms = ms;
        }
        if let Some(k) = max_reclaims {
            cfg.max_reclaims = k;
        }
        cfg
    };
    // The coordinated modes are meaningless without a shared store.
    if no_store && (report_mode || worker_id.is_some() || workers.is_some()) {
        fail("--no-store cannot be combined with --report, --workers or --worker-id");
    }
    if report_mode && (worker_id.is_some() || workers.is_some()) {
        fail("--report is an analysis pass; it cannot be combined with --workers or --worker-id");
    }

    let (family, base) = match (family_arg, spec_file) {
        (Some(name), None) => {
            let spec = ScenarioSpec::family(&name)
                .unwrap_or_else(|| fail(&format!("unknown family {name:?} (try --list-families)")));
            (name, spec)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            (spec.name.clone(), spec)
        }
        _ => usage(),
    };

    let plan = SweepPlan {
        family: family.clone(),
        base,
        axes,
        replications: reps,
        effort,
    };
    let open_store = || {
        ResultStore::open(&store_dir)
            .unwrap_or_else(|e| fail(&format!("cannot open store {store_dir}: {e}")))
    };

    // ---- report mode: aggregate a finished grid, compute nothing ----
    if report_mode {
        let store = open_store();
        let outcome = coord::report_sweep(&plan, master_seed, &store).unwrap_or_else(|e| fail(&e));
        print!("{}", outcome.table);
        println!("{}", outcome.summary(&family, reps));
        for label in &outcome.quarantined_cells {
            println!("  quarantined: ({label})");
        }
        // Same contract as the fleet: a degraded aggregate must not look
        // like a clean one to CI (3 = quarantined, 1 = missing).
        std::process::exit(outcome.exit_code());
    }

    // ---- standalone worker: one lease-protocol worker, shared store ----
    if let Some(id) = worker_id {
        let owner = format!("{id}@{}", std::process::id());
        let store = open_store();
        println!(
            "mtnet sweep worker — id: {owner}, family: {family}, seed: {master_seed}, \
             lease timeout: {} ms, max reclaims: {}, store: {store_dir}",
            coord_cfg.lease_timeout_ms, coord_cfg.max_reclaims,
        );
        let outcome = coord::run_worker(&plan, master_seed, &store, coord_cfg, &owner)
            .unwrap_or_else(|e| fail(&e));
        println!("{}", outcome.summary(&owner));
        std::process::exit(if outcome.quarantined > 0 { 3 } else { 0 });
    }

    // ---- fleet mode: spawn N workers, wait, report the grid ----
    if let Some(n) = workers {
        let store = open_store();
        let preexisting: HashSet<String> = store.keys().into_iter().collect();
        println!(
            "mtnet sweep fleet — family: {family}, seed: {master_seed}, workers: {n}, \
             lease timeout: {} ms, max reclaims: {}, store: {store_dir}",
            coord_cfg.lease_timeout_ms, coord_cfg.max_reclaims,
        );
        // Children get the parent's argv minus the fleet flag, plus
        // their worker identity; the env override is scrubbed so a
        // child never becomes a second fleet parent.
        let child_args = cli::strip_value_flag(&raw, "--workers");
        let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
        let children: Vec<std::process::Child> = (0..n)
            .map(|i| {
                std::process::Command::new(&exe)
                    .args(&child_args)
                    .arg("--worker-id")
                    .arg(format!("w{i}"))
                    .env_remove(coord::WORKERS_ENV)
                    .spawn()
                    .unwrap_or_else(|e| fail(&format!("spawn worker w{i}: {e}")))
            })
            .collect();
        let mut failures = 0;
        for (i, mut child) in children.into_iter().enumerate() {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!("sweep: worker w{i} exited with {status}");
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("sweep: worker w{i} wait failed: {e}");
                    failures += 1;
                }
            }
        }
        let report = coord::collect_grid(&plan, master_seed, &store, &preexisting)
            .unwrap_or_else(|e| fail(&e));
        print!("{}", report.table);
        println!("{}", report.summary(&family));
        if failures > 0 {
            eprintln!("sweep: {failures} of {n} workers failed (resume by re-invoking)");
        }
        std::process::exit(report.exit_code());
    }

    // ---- classic single-process sweep ----
    let store = if no_store { None } else { Some(open_store()) };
    let runner = BatchRunner::from_env();
    println!(
        "mtnet sweep — family: {family}, effort: {effort:?}, seed: {master_seed}, threads: {}, store: {}",
        runner.threads(),
        if no_store { "(disabled)".to_string() } else { store_dir.clone() },
    );
    let start = std::time::Instant::now();
    let outcome =
        run_sweep(&plan, master_seed, store.as_ref(), &runner).unwrap_or_else(|e| fail(&e));
    eprintln!("[sweep wall: {:.2}s]", start.elapsed().as_secs_f64());
    print!("{}", outcome.table);
    println!("{}", outcome.summary(&family));
}
