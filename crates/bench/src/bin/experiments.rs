//! Regenerates every experiment table recorded in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p mtnet-bench --bin experiments --release           # full runs
//! cargo run -p mtnet-bench --bin experiments --release -- quick  # smoke runs
//! cargo run -p mtnet-bench --bin experiments --release -- full E4 E9
//! cargo run -p mtnet-bench --bin experiments --release -- quick E10 --threads 1
//! ```
//!
//! Experiment arms and replications run concurrently through
//! `mtnet_sim::runner::BatchRunner`; `--threads N` (or `MTNET_THREADS=N`)
//! pins the pool width, and `--threads 1` forces the sequential path. The
//! printed tables are byte-identical at any thread count; per-experiment
//! wall-clock timings go to stderr so stdout stays recordable.

use mtnet_bench::{run_one, Effort, ALL_IDS};
use mtnet_sim::runner::{BatchRunner, THREADS_ENV};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = if args.iter().any(|a| a == "quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        match args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => std::env::set_var(THREADS_ENV, n.to_string()),
            _ => {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
        }
    }
    let filter: Vec<&String> = args
        .iter()
        .filter(|a| a.starts_with('E') || a.starts_with('e'))
        .collect();
    let seed = 42;
    println!(
        "mtnet experiment suite — effort: {effort:?}, seed: {seed}, threads: {}\n",
        BatchRunner::from_env().threads()
    );
    let suite_start = Instant::now();
    for id in ALL_IDS {
        if !filter.is_empty() && !filter.iter().any(|f| f.eq_ignore_ascii_case(id)) {
            continue;
        }
        let start = Instant::now();
        let result = run_one(id, effort, seed).expect("known id");
        println!("{}", result.render());
        eprintln!("[{id}: {:.2}s]", start.elapsed().as_secs_f64());
    }
    eprintln!("[suite: {:.2}s]", suite_start.elapsed().as_secs_f64());
}
