//! Regenerates every experiment table recorded in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p mtnet-bench --bin experiments --release           # full runs
//! cargo run -p mtnet-bench --bin experiments --release -- quick  # smoke runs
//! cargo run -p mtnet-bench --bin experiments --release -- full E4 E9
//! cargo run -p mtnet-bench --bin experiments --release -- quick E10 --threads 1
//! cargo run -p mtnet-bench --bin experiments --release -- quick E11 --shards 2
//! cargo run -p mtnet-bench --bin experiments --release -- --bench-json BENCH.json
//! cargo run -p mtnet-bench --bin experiments --release -- --fingerprints fp.txt
//! ```
//!
//! Experiment arms and replications run concurrently through
//! `mtnet_sim::runner::BatchRunner`; `--threads N` (or `MTNET_THREADS=N`)
//! pins the pool width, and `--threads 1` forces the sequential path.
//! `--shards N` (or `MTNET_SHARDS=N`) additionally splits each world
//! across conservative time-window shards. The printed tables are
//! byte-identical at any thread or shard count; per-experiment
//! wall-clock timings go to stderr so stdout stays recordable.
//!
//! `--bench-json <path>` records the perf trajectory machine-readably: one
//! JSON object per experiment with `{experiment, effort, wall_ms, events,
//! events_per_sec, max_rss_bytes, threads}` (plus `shards` when sharded,
//! plus `pgo` when the binary was built by `scripts/pgo_build` and run
//! with `--pgo`; `max_rss_bytes` is each run's own peak RSS, measured by
//! rebasing the kernel watermark between runs, and is absent on platforms
//! without `/proc`). `--fingerprints
//! <path>` dumps the bit-exact `SimReport::fingerprint` of every run —
//! diffing two dumps proves a refactor changed nothing observable.

use mtnet_bench::benchjson::{self, BenchRow};
use mtnet_bench::{cli, rss, run_one, Effort, ALL_IDS};
use mtnet_sim::runner::BatchRunner;
use std::fmt::Write as _;
use std::time::Instant;

/// Throughput figure for one row; zero when wall time is unmeasurably
/// small.
fn events_per_sec(events: u64, wall_ms: f64) -> u64 {
    if wall_ms > 0.0 {
        (events as f64 / (wall_ms / 1e3)).round() as u64
    } else {
        0
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_json = cli::take_value(&mut args, "--bench-json").unwrap_or_else(|e| fail(&e));
    let fingerprint_path =
        cli::take_value(&mut args, "--fingerprints").unwrap_or_else(|e| fail(&e));
    // `--pgo` tags every emitted row as coming from the
    // profile-guided-optimized artifact (`scripts/pgo_build`); PGO rows
    // form their own trajectory in BENCH.json.
    let pgo = cli::take_switch(&mut args, "--pgo");
    cli::apply_threads_flag(&mut args).unwrap_or_else(|e| fail(&e));
    cli::apply_shards_flag(&mut args).unwrap_or_else(|e| fail(&e));
    // Every remaining argument must be an effort word or a known
    // experiment id — an unknown id or a stray flag must fail loudly, not
    // silently run nothing (or everything).
    let mut effort = Effort::Full;
    let mut filter: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "quick" => effort = Effort::Quick,
            "full" => effort = Effort::Full,
            a if a.starts_with('-') => {
                fail(&format!(
                    "unknown flag {a:?} (valid: --threads N, --shards N, --bench-json PATH, \
                     --fingerprints PATH, --pgo)"
                ));
            }
            a => {
                if !ALL_IDS.iter().any(|id| id.eq_ignore_ascii_case(a)) {
                    fail(&format!(
                        "unknown experiment id {a:?} (valid: {}, plus quick|full)",
                        ALL_IDS.join(" ")
                    ));
                }
                filter.push(arg.clone());
            }
        }
    }
    let seed = 42;
    let threads = BatchRunner::from_env().threads();
    // Specs in the suite all default to one shard, so the effective
    // count is the env override (set above by --shards) or 1.
    let shards = mtnet_core::world::shard::shards_from_env().unwrap_or(1);
    println!(
        "mtnet experiment suite — effort: {effort:?}, seed: {seed}, threads: {threads}, \
         shards: {shards}\n"
    );
    let suite_start = Instant::now();
    let mut bench_rows = Vec::new();
    let mut fingerprint_dump = String::new();
    for id in ALL_IDS {
        if !filter.is_empty() && !filter.iter().any(|f| f.eq_ignore_ascii_case(id)) {
            continue;
        }
        // Rebase the kernel's peak-RSS watermark so each row reports its
        // own run's peak, not the largest experiment before it.
        rss::reset_peak();
        let start = Instant::now();
        let result = run_one(id, effort, seed).expect("known id");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let max_rss_bytes = rss::peak_bytes();
        println!("{}", result.render());
        eprintln!("[{id}: {:.2}s]", wall_ms / 1e3);
        bench_rows.push(BenchRow {
            experiment: id.to_string(),
            effort: format!("{effort:?}"),
            wall_ms,
            events: result.events,
            events_per_sec: events_per_sec(result.events, wall_ms),
            analytic: result.analytic,
            shards,
            threads,
            pgo,
            max_rss_bytes,
        });
        for (i, fp) in result.fingerprints.iter().enumerate() {
            let _ = writeln!(fingerprint_dump, "== {id} run {i} ==\n{fp}");
        }
    }
    eprintln!("[suite: {:.2}s]", suite_start.elapsed().as_secs_f64());
    if let Some(path) = bench_json {
        // Suite-total row (sum of the measured rows), so the trajectory
        // file is self-describing about whole-suite cost. Only a full
        // (unfiltered) run may write it — a partial run must not shrink
        // the committed total.
        if filter.is_empty() {
            let total_events: u64 = bench_rows.iter().map(|r| r.events).sum();
            let total_wall: f64 = bench_rows.iter().map(|r| r.wall_ms).sum();
            // Suite memory = the largest single row: rows run
            // sequentially, so their peaks never stack.
            let suite_rss = bench_rows.iter().filter_map(|r| r.max_rss_bytes).max();
            bench_rows.push(BenchRow {
                experiment: "suite".into(),
                effort: format!("{effort:?}"),
                wall_ms: total_wall,
                events: total_events,
                events_per_sec: events_per_sec(total_events, total_wall),
                analytic: false,
                shards,
                threads,
                pgo,
                max_rss_bytes: suite_rss,
            });
        }
        // Merge into an existing trajectory (a Full file keeps its Quick
        // rows and vice versa) so one committed BENCH.json carries both
        // effort levels for the perf gate.
        let existing = std::fs::read_to_string(&path)
            .map(|text| benchjson::parse_file(&text))
            .unwrap_or_default();
        let merged = benchjson::merge(existing, bench_rows);
        std::fs::write(&path, benchjson::render_file(&merged)).expect("write --bench-json file");
        eprintln!("[bench json -> {path}]");
    }
    if let Some(path) = fingerprint_path {
        std::fs::write(&path, fingerprint_dump).expect("write --fingerprints file");
        eprintln!("[fingerprints -> {path}]");
    }
}
