//! Regenerates every experiment table recorded in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p mtnet-bench --bin experiments --release           # full runs
//! cargo run -p mtnet-bench --bin experiments --release -- quick  # smoke runs
//! cargo run -p mtnet-bench --bin experiments --release -- full E4 E9
//! ```

use mtnet_bench::{run_all, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = if args.iter().any(|a| a == "quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let filter: Vec<&String> = args
        .iter()
        .filter(|a| a.starts_with('E') || a.starts_with('e'))
        .collect();
    let seed = 42;
    println!("mtnet experiment suite — effort: {effort:?}, seed: {seed}\n");
    for result in run_all(effort, seed) {
        if !filter.is_empty() && !filter.iter().any(|f| f.eq_ignore_ascii_case(result.id)) {
            continue;
        }
        println!("{}", result.render());
    }
}
