//! CI perf-regression gate over `BENCH.json`.
//!
//! ```text
//! bench_check <fresh.json> <committed.json>
//! bench_check --update <fresh.json> <committed.json>
//! ```
//!
//! Compares a freshly measured `experiments --bench-json` trajectory
//! against the committed one, matching rows on `(experiment, effort,
//! shards)`:
//!
//! * **Event counts must be exactly equal** — any difference means the
//!   simulation's behavior changed (the determinism tripwire), which a
//!   perf PR must never do silently. Hard failure.
//! * **Wall time** may regress up to 25% (override with the
//!   `BENCH_CHECK_WALL_TOLERANCE` environment variable, in percent)
//!   before failing. Analytic rows and rows whose committed wall time is
//!   under 50 ms are pure timer noise: their wall comparison is skipped,
//!   their event equality still enforced.
//! * **Peak RSS** (`max_rss_bytes`), where both rows record it and the
//!   committed value is at least 128 MiB, may regress up to 30%
//!   (override with `BENCH_CHECK_RSS_TOLERANCE`, in percent) — the
//!   memory-diet tripwire guarding the metro tier's footprint.
//! * Fresh rows with no committed counterpart are reported, not failed —
//!   that is how new experiments enter the trajectory.
//!
//! `--update` regenerates the committed file in place instead of gating:
//! fresh rows are merged over their `(experiment, effort, shards)`
//! counterparts
//! (rows the fresh run did not measure are kept), replacing the
//! hand-edit workflow for refreshing `BENCH.json` after an intentional
//! behavior or performance change.
//!
//! Exit status: 0 clean, 1 on drift/regression, 2 on usage errors.

use mtnet_bench::benchjson::{self, GateOutcome};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let update = if let Some(pos) = args.iter().position(|a| a == "--update") {
        args.remove(pos);
        true
    } else {
        false
    };
    let [fresh_path, committed_path] = &args[..] else {
        eprintln!("usage: bench_check [--update] <fresh.json> <committed.json>");
        std::process::exit(2);
    };
    let tolerance = std::env::var("BENCH_CHECK_WALL_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(benchjson::WALL_TOLERANCE_PCT);
    let rss_tolerance = std::env::var("BENCH_CHECK_RSS_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(benchjson::RSS_TOLERANCE_PCT);
    let read = |path: &str| -> Vec<benchjson::BenchRow> {
        match std::fs::read_to_string(path) {
            Ok(text) => benchjson::parse_file(&text),
            Err(e) => {
                eprintln!("bench_check: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let fresh = read(fresh_path);
    let committed = read(committed_path);
    if fresh.is_empty() {
        eprintln!("bench_check: {fresh_path} contains no rows");
        std::process::exit(2);
    }
    if update {
        let replaced = fresh
            .iter()
            .filter(|f| committed.iter().any(|c| c.same_config(f)))
            .count();
        let added = fresh.len() - replaced;
        let merged = benchjson::merge(committed, fresh);
        if let Err(e) = std::fs::write(committed_path, benchjson::render_file(&merged)) {
            eprintln!("bench_check: cannot write {committed_path}: {e}");
            std::process::exit(2);
        }
        println!(
            "bench_check: updated {committed_path} from {fresh_path} \
             ({replaced} row(s) replaced, {added} added, {} total)",
            merged.len()
        );
        return;
    }

    let mut failures = 0usize;
    println!(
        "bench_check: {fresh_path} vs {committed_path} \
         (wall tolerance {tolerance:.0}%, rss tolerance {rss_tolerance:.0}%)"
    );
    for row in &fresh {
        let shard_tag = if row.shards > 1 {
            format!("x{}", row.shards)
        } else {
            "  ".to_string()
        };
        let label = format!("{:>5} {:<5} {shard_tag}", row.experiment, row.effort);
        match benchjson::gate_row(row, &committed, tolerance, rss_tolerance) {
            GateOutcome::Ok(delta) => {
                println!(
                    "  {label} ok      events {:>12}  wall {delta:+6.1}%",
                    row.events
                );
            }
            GateOutcome::WallSkipped => {
                println!(
                    "  {label} ok      events {:>12}  wall skipped (noise floor)",
                    row.events
                );
            }
            GateOutcome::NoBaseline => {
                println!(
                    "  {label} new     events {:>12}  (no committed baseline)",
                    row.events
                );
            }
            GateOutcome::EventDrift { committed, fresh } => {
                println!(
                    "  {label} FAIL    event drift: committed {committed}, fresh {fresh} — \
                     the simulation's behavior changed"
                );
                failures += 1;
            }
            GateOutcome::WallRegression(delta) => {
                println!("  {label} FAIL    wall regression {delta:+.1}% (> {tolerance:.0}%)");
                failures += 1;
            }
            GateOutcome::RssRegression(delta) => {
                println!(
                    "  {label} FAIL    peak-RSS regression {delta:+.1}% (> {rss_tolerance:.0}%)"
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("bench_check: clean");
}
