//! Tiny shared argument helpers for the harness binaries
//! (`experiments`, `sweep`, `bench_check`) — one implementation of
//! flag extraction and the `--threads` pool-width knob, so the
//! binaries cannot drift apart.

use crate::coord::{parse_timeout_ms, parse_worker_count, LEASE_TIMEOUT_ENV, WORKERS_ENV};
use mtnet_core::world::shard::{parse_shard_count, SHARDS_ENV};
use mtnet_sim::runner::{parse_thread_count, THREADS_ENV};

/// Extracts every `--flag <value>` occurrence, removing the consumed
/// tokens. Errors when a final `--flag` has no value token.
pub fn take_values(args: &mut Vec<String>, flag: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    while let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        out.push(args.remove(pos + 1));
        args.remove(pos);
    }
    Ok(out)
}

/// Extracts an at-most-once `--flag <value>`.
pub fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let mut all = take_values(args, flag)?;
    if all.len() > 1 {
        return Err(format!("{flag} given more than once"));
    }
    Ok(all.pop())
}

/// Removes every occurrence of a bare `--flag`; true if it appeared.
pub fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let mut seen = false;
    while let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        seen = true;
    }
    seen
}

/// Consumes `--threads N` and pins the batch-runner pool width via the
/// `MTNET_THREADS` environment variable, validated by the same
/// [`parse_thread_count`] the runner itself uses (`0` = one per core).
pub fn apply_threads_flag(args: &mut Vec<String>) -> Result<(), String> {
    if let Some(threads) = take_value(args, "--threads")? {
        let n = parse_thread_count(&threads)
            .map_err(|_| format!("--threads needs a non-negative integer, got {threads:?}"))?;
        std::env::set_var(THREADS_ENV, n.to_string());
    }
    Ok(())
}

/// Consumes `--shards N` and pins the intra-world shard count via the
/// `MTNET_SHARDS` environment variable, validated by the same
/// [`parse_shard_count`] the engine's own override path uses. The env
/// override beats every spec's `shards` knob, so one flag shards the
/// whole suite.
pub fn apply_shards_flag(args: &mut Vec<String>) -> Result<(), String> {
    if let Some(shards) = take_value(args, "--shards")? {
        let n = parse_shard_count(&shards)
            .map_err(|()| format!("--shards needs a positive integer, got {shards:?}"))?;
        std::env::set_var(SHARDS_ENV, n.to_string());
    }
    Ok(())
}

/// Consumes `--workers N` and pins the sweep worker count via the
/// `MTNET_SWEEP_WORKERS` environment variable, validated by the same
/// [`parse_worker_count`] the env-reading path uses — a malformed flag
/// and a malformed env value fail through one code path.
pub fn apply_workers_flag(args: &mut Vec<String>) -> Result<(), String> {
    if let Some(workers) = take_value(args, "--workers")? {
        let n = parse_worker_count(&workers).map_err(|e| format!("--workers: {e}"))?;
        std::env::set_var(WORKERS_ENV, n.to_string());
    }
    Ok(())
}

/// Consumes `--lease-timeout-ms N` and pins the lease timeout via the
/// `MTNET_LEASE_TIMEOUT_MS` environment variable, validated by the same
/// [`parse_timeout_ms`] the env-reading path uses.
pub fn apply_lease_timeout_flag(args: &mut Vec<String>) -> Result<(), String> {
    if let Some(timeout) = take_value(args, "--lease-timeout-ms")? {
        let ms = parse_timeout_ms(&timeout).map_err(|e| format!("--lease-timeout-ms: {e}"))?;
        std::env::set_var(LEASE_TIMEOUT_ENV, ms.to_string());
    }
    Ok(())
}

/// A copy of `args` with every `--flag <value>` pair removed — for
/// rebuilding a child process's argv from the parent's raw argv.
pub fn strip_value_flag(args: &[String], flag: &str) -> Vec<String> {
    let mut out = args.to_vec();
    while let Some(pos) = out.iter().position(|a| a == flag) {
        out.remove(pos);
        if pos < out.len() {
            out.remove(pos);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_values_consumes_all_occurrences() {
        let mut a = args(&["--axis", "x=1", "keep", "--axis", "y=2"]);
        assert_eq!(take_values(&mut a, "--axis").unwrap(), ["x=1", "y=2"]);
        assert_eq!(a, ["keep"]);
        assert!(take_values(&mut args(&["--axis"]), "--axis").is_err());
    }

    #[test]
    fn take_value_rejects_repeats() {
        let mut a = args(&["--seed", "1", "--seed", "2"]);
        assert!(take_value(&mut a, "--seed").is_err());
        let mut b = args(&["--seed", "7"]);
        assert_eq!(take_value(&mut b, "--seed").unwrap().as_deref(), Some("7"));
        assert!(b.is_empty());
    }

    #[test]
    fn switch_and_threads_validation() {
        let mut a = args(&["--no-store", "rest"]);
        assert!(take_switch(&mut a, "--no-store"));
        assert!(!take_switch(&mut a, "--no-store"));
        assert_eq!(a, ["rest"]);
        assert!(apply_threads_flag(&mut args(&["--threads", "zero"])).is_err());
        assert!(apply_threads_flag(&mut args(&["--threads", "-1"])).is_err());
    }

    #[test]
    fn workers_and_lease_timeout_flags_reject_malformed_values() {
        // Only rejection paths here (accepting paths mutate the process
        // environment; the sweep binary's integration tests cover them
        // in child processes).
        assert!(apply_workers_flag(&mut args(&["--workers", "two"])).is_err());
        assert!(apply_workers_flag(&mut args(&["--workers", "0"])).is_err());
        assert!(apply_workers_flag(&mut args(&["--workers", "-3"])).is_err());
        assert!(apply_workers_flag(&mut args(&["--workers"])).is_err());
        assert!(apply_lease_timeout_flag(&mut args(&["--lease-timeout-ms", "soon"])).is_err());
        assert!(apply_lease_timeout_flag(&mut args(&["--lease-timeout-ms", "0"])).is_err());
        assert!(apply_lease_timeout_flag(&mut args(&["--lease-timeout-ms"])).is_err());
    }

    #[test]
    fn strip_value_flag_removes_pairs_without_touching_the_rest() {
        let a = args(&["--workers", "3", "--seed", "42", "--workers", "4"]);
        assert_eq!(strip_value_flag(&a, "--workers"), args(&["--seed", "42"]));
        // A trailing valueless flag strips cleanly too.
        let b = args(&["--seed", "42", "--workers"]);
        assert_eq!(strip_value_flag(&b, "--workers"), args(&["--seed", "42"]));
    }

    #[test]
    fn shards_flag_rejects_malformed_values() {
        // Only the rejection paths here — the accepting path mutates
        // process-global environment, which the integration tests cover
        // in a child process instead.
        assert!(apply_shards_flag(&mut args(&["--shards", "two"])).is_err());
        assert!(apply_shards_flag(&mut args(&["--shards", "0"])).is_err());
        assert!(apply_shards_flag(&mut args(&["--shards", "-4"])).is_err());
        assert!(apply_shards_flag(&mut args(&["--shards"])).is_err());
    }
}
