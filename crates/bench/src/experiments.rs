//! The thirteen experiment runners. Each reproduces one paper artifact
//! (E13 adds the resilience family the paper only argues qualitatively);
//! see `EXPERIMENTS.md` for the recorded outputs and the paper-vs-measured
//! discussion.
//!
//! Every simulation arm is a declarative [`ScenarioSpec`] — family
//! preset + knob assignments + duration + seed path — built by
//! [`arm_specs`] and fanned out through [`BatchRunner`]; the runner
//! itself is reduced to a thin metric-extraction closure over the
//! returned reports. Seed paths are `(experiment, arm, replication)`
//! resolved via `mtnet_sim::rng::seed_for_path`, so the jobs are
//! independent of scheduling order and the rendered tables are
//! byte-identical at any thread count. The same specs are pinned
//! textually by the golden tests in `tests/spec_golden.rs`.

use crate::{Effort, ExperimentResult};
use mtnet_cellularip::{CipTree, HandoffKind};
use mtnet_core::handoff::{HandoffFactors, HandoffType};
use mtnet_core::hierarchy::Hierarchy;
use mtnet_core::location::LocationDirectory;
use mtnet_core::report::SimReport;
use mtnet_core::scenario::ArchKind;
use mtnet_core::spec::{
    CellOutage, EclipseWindow, FaultSpec, LinkFlap, RsmcFailover, ScenarioSpec,
};
use mtnet_core::tier::Tier;
use mtnet_metrics::{fmt_f64, Replicates, Summary, Table};
use mtnet_net::{Addr, NodeId};
use mtnet_radio::{CellId, CellKind, PathLoss, SENSITIVITY_DBM};
use mtnet_sim::runner::BatchRunner;
use mtnet_sim::{RngStream, SimDuration, SimTime};

fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

fn ms(x: f64) -> String {
    format!("{x:.1}ms")
}

/// Thread-count override for in-process tests. The environment variable
/// would be the natural knob, but `set_var` racing `getenv` in parallel
/// test threads is undefined behavior — an atomic is not. 0 = defer to
/// [`BatchRunner::from_env`].
#[cfg(test)]
static TEST_THREAD_OVERRIDE: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

fn batch_runner() -> BatchRunner {
    #[cfg(test)]
    {
        let n = TEST_THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
        if n > 0 {
            return BatchRunner::new(n);
        }
    }
    BatchRunner::from_env()
}

/// Runs every spec job through the shared worker pool (`MTNET_THREADS`
/// overrides the width); results come back in submission order.
fn run_specs(master: u64, specs: Vec<ScenarioSpec>) -> Vec<SimReport> {
    batch_runner().run(specs, move |_, spec| spec.run(master))
}

/// The declarative simulation arms of one experiment, in submission
/// order — the single place each experiment's scenario is defined.
/// Empty for the analytic E5. The golden test pins these texts; the
/// sweep engine's families compose the same presets.
pub fn arm_specs(id: &str, effort: Effort) -> Vec<ScenarioSpec> {
    match id.to_ascii_uppercase().as_str() {
        "E1" => {
            let secs = e1_overlay_secs(effort);
            e1_arms()
                .iter()
                .map(|(label, satellite)| {
                    let spec = ScenarioSpec::rural_corridor()
                        .with_duration_s(secs)
                        .with_seed_path("E1", label, 0);
                    if *satellite {
                        spec.with_satellite()
                    } else {
                        spec
                    }
                })
                .collect()
        }
        "E2" => e2_arms()
            .iter()
            .map(|&arch| {
                ScenarioSpec::commute_corridor()
                    .with_arch(arch)
                    .with_duration_s(effort.secs(300.0))
                    .with_seed_path("E2", arch.label(), 0)
            })
            .collect(),
        "E3" => e3_periods()
            .iter()
            .map(|&period_ms| {
                ScenarioSpec::single_domain()
                    .with_arch(ArchKind::FlatCellularIp)
                    .with_route_update_ms(period_ms)
                    .with_duration_s(effort.secs(300.0))
                    .with_seed_path("E3", &format!("{period_ms}ms"), 0)
            })
            .collect(),
        "E4" => e4_arms()
            .iter()
            .map(|(label, arch)| {
                ScenarioSpec::single_domain()
                    .with_arch(*arch)
                    .with_duration_s(effort.secs(400.0))
                    .with_seed_path("E4", label, 0)
            })
            .collect(),
        "E5" => Vec::new(),
        "E6" => {
            let arch = ArchKind::multi_tier();
            vec![ScenarioSpec::commute_corridor()
                .with_arch(arch)
                .with_duration_s(effort.secs(500.0))
                .with_seed_path("E6", arch.label(), 0)]
        }
        "E7" => {
            let arch = ArchKind::multi_tier();
            vec![ScenarioSpec::commute_corridor()
                .with_arch(arch)
                .without_shared_upper()
                .with_duration_s(effort.secs(500.0))
                .with_seed_path("E7", arch.label(), 0)]
        }
        "E8" => {
            let arch = ArchKind::multi_tier();
            vec![ScenarioSpec::small_city()
                .with_arch(arch)
                .with_population(6, 3, 2)
                .with_duration_s(effort.secs(600.0))
                .with_seed_path("E8", arch.label(), 0)]
        }
        "E9" => e9_arms()
            .iter()
            .map(|&arch| {
                ScenarioSpec::small_city()
                    .with_arch(arch)
                    .with_duration_s(effort.secs(300.0))
                    .with_seed_path("E9", arch.label(), 0)
            })
            .collect(),
        "E10" => {
            let mut specs = Vec::new();
            for arch in e10_arms() {
                for rep in 0..effort.replications() {
                    specs.push(
                        ScenarioSpec::small_city()
                            .with_arch(arch)
                            .with_duration_s(effort.secs(300.0))
                            .with_seed_path("E10", arch.label(), rep),
                    );
                }
            }
            specs
        }
        "E11" => {
            let mut specs = Vec::new();
            for (pname, pop) in e11_populations() {
                for arch in e11_arms() {
                    for rep in 0..effort.replications() {
                        let arm = format!("{pname}/{}", arch.label());
                        specs.push(
                            ScenarioSpec::small_city()
                                .with_arch(arch)
                                .with_population(pop.0, pop.1, pop.2)
                                .with_duration_s(effort.secs(300.0))
                                .with_seed_path("E11", &arm, rep),
                        );
                    }
                }
            }
            specs
        }
        "E12" => e12_arms()
            .iter()
            .map(|(label, factors)| {
                ScenarioSpec::small_city()
                    .with_population(6, 3, 3)
                    .with_factors(*factors)
                    .with_duration_s(effort.secs(300.0))
                    .with_seed_path("E12", label, 0)
            })
            .collect(),
        "E13" => {
            let mut specs: Vec<ScenarioSpec> = e13_arms()
                .iter()
                .map(|&arch| {
                    ScenarioSpec::small_city()
                        .with_arch(arch)
                        .with_faults(e13_fault_schedule())
                        .with_duration_s(effort.secs(300.0))
                        .with_seed_path("E13", arch.label(), 0)
                })
                .collect();
            // Overlay arm: the E1 rural corridor with the satellite tier,
            // eclipsed exactly while the shuttle crosses the macro hole
            // (t ≈ 104–224 s) — the horizon floor matches E1's.
            specs.push(
                ScenarioSpec::rural_corridor()
                    .with_satellite()
                    .with_faults(e13_eclipse_schedule())
                    .with_duration_s(e1_overlay_secs(effort))
                    .with_seed_path("E13", "satellite-eclipse", 0),
            );
            specs
        }
        "E14" => {
            // The metro tier scales with effort: Full is the headline
            // 10^6-subscriber world; Quick is the same knobs at CI size
            // (10k nodes, 8 domains) so the suite and the smoke test
            // stay bounded. Both run the identical code paths — SoA
            // tables, aggregate QoS, modular stagger, load curve.
            let base = match effort {
                Effort::Quick => ScenarioSpec::metro_smoke(),
                Effort::Full => ScenarioSpec::metro(),
            };
            vec![base
                .with_duration_s(effort.secs(120.0))
                .with_seed_path("E14", "metro", 0)]
        }
        _ => Vec::new(),
    }
}

/// E1's arms: `(label, satellite overlay?)`.
fn e1_arms() -> [(&'static str, bool); 2] {
    [("terrestrial only", false), ("with satellite", true)]
}

/// E2's arms: triangle-routing baseline vs the optimized architecture.
fn e2_arms() -> [ArchKind; 2] {
    [ArchKind::PureMobileIp, ArchKind::multi_tier()]
}

/// E3's route-update periods, ms.
fn e3_periods() -> [u64; 5] {
    [500, 1000, 2000, 4000, 8000]
}

/// E4's measured arms.
fn e4_arms() -> [(&'static str, ArchKind); 2] {
    [
        ("hard", ArchKind::multi_tier_hard()),
        ("semisoft", ArchKind::multi_tier()),
    ]
}

/// E9's arms: RSMC on vs off.
fn e9_arms() -> [ArchKind; 2] {
    [ArchKind::multi_tier(), ArchKind::multi_tier_no_rsmc()]
}

/// E10's arms: the proposal vs both baselines.
fn e10_arms() -> [ArchKind; 3] {
    [
        ArchKind::multi_tier(),
        ArchKind::PureMobileIp,
        ArchKind::FlatCellularIp,
    ]
}

/// E11's populations: `(label, (pedestrians, cyclists, vehicles))`.
fn e11_populations() -> [(&'static str, (u32, u32, u32)); 3] {
    [
        ("pedestrians", (8, 0, 0)),
        ("cyclists", (0, 8, 0)),
        ("vehicles", (0, 0, 4)),
    ]
}

/// E11's architecture arms.
fn e11_arms() -> [ArchKind; 4] {
    [
        ArchKind::multi_tier(),
        ArchKind::multi_tier_hard(),
        ArchKind::PureMobileIp,
        ArchKind::FlatCellularIp,
    ]
}

/// E12's factor-ablation arms.
fn e12_arms() -> [(&'static str, HandoffFactors); 5] {
    [
        ("all three (paper)", HandoffFactors::all()),
        ("signal only", HandoffFactors::signal_only()),
        (
            "no speed",
            HandoffFactors {
                speed: false,
                signal: true,
                resources: true,
            },
        ),
        (
            "no signal",
            HandoffFactors {
                speed: true,
                signal: false,
                resources: true,
            },
        ),
        (
            "no resources",
            HandoffFactors {
                speed: true,
                signal: true,
                resources: false,
            },
        ),
    ]
}

/// E13's architecture comparison arms, hit by the identical
/// [`e13_fault_schedule`].
fn e13_arms() -> [ArchKind; 2] {
    [ArchKind::multi_tier(), ArchKind::PureMobileIp]
}

/// E13's shared infrastructure-fault schedule. Cell 1 is domain 0's
/// macro umbrella — the only radio cell whose id means the same thing
/// under both architectures (pure Mobile IP deploys no micro row). All
/// windows land inside the Quick horizon (30 s).
fn e13_fault_schedule() -> FaultSpec {
    FaultSpec {
        cell_outages: vec![CellOutage {
            cell: 1,
            start_s: 8.0,
            end_s: 16.0,
        }],
        link_flaps: vec![LinkFlap {
            domain: 1,
            start_s: 5.0,
            period_s: 8.0,
            duty: 0.5,
            jitter_s: 0.5,
            count: 2,
        }],
        rsmc_failovers: vec![RsmcFailover {
            domain: 2,
            at_s: 18.0,
            takeover_s: Some(5.0),
        }],
        eclipses: Vec::new(),
    }
}

/// E13's satellite-overlay schedule: one eclipse swallowing part of the
/// rural shuttle's macro-hole traversal.
fn e13_eclipse_schedule() -> FaultSpec {
    FaultSpec {
        eclipses: vec![EclipseWindow {
            start_s: 120.0,
            end_s: 180.0,
        }],
        ..FaultSpec::default()
    }
}

/// Total event count and bit-exact per-run fingerprints for an
/// experiment's reports, in submission order.
fn digest(reports: &[SimReport]) -> (u64, Vec<String>) {
    (
        reports.iter().map(|r| r.events_processed).sum(),
        reports.iter().map(SimReport::fingerprint).collect(),
    )
}

/// `mean ± ci95` rendering for a cross-replication summary (plain mean
/// when only one replication contributed).
fn pm(s: Option<&Summary>, unit: fn(f64) -> String) -> String {
    let Some(s) = s else {
        return "-".into();
    };
    if s.count() <= 1 {
        unit(s.mean())
    } else {
        format!("{}±{}", unit(s.mean()), unit(s.ci95_half_width()))
    }
}

fn count_fmt(x: f64) -> String {
    if x.fract().abs() < 1e-9 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

/// Horizon for E1's satellite-overlay sub-experiment: long enough at any
/// effort for the highway shuttle to actually cross the macro hole.
fn e1_overlay_secs(effort: Effort) -> f64 {
    effort.secs(400.0).max(240.0)
}

/// E1 — Fig 2.1: the multi-tier cellular architecture. Tier parameters,
/// radio-effective ranges, the speed-based tier assignment, and the
/// satellite overlay rescuing a rural macro coverage hole.
pub fn e1_multitier_coverage(effort: Effort, seed: u64) -> ExperimentResult {
    let mut tiers = Table::new([
        "tier",
        "radius m",
        "tx dBm",
        "rate bps",
        "channels",
        "guard",
        "exponent",
        "radio range m",
    ]);
    for kind in CellKind::ALL {
        let pl = PathLoss {
            exponent: kind.path_loss_exponent(),
            ..PathLoss::clean(3.5)
        };
        let range = pl.range_for_threshold(kind.tx_power_dbm(), SENSITIVITY_DBM);
        tiers.row([
            kind.to_string(),
            fmt_f64(kind.radius_m()),
            fmt_f64(kind.tx_power_dbm()),
            kind.data_rate_bps().to_string(),
            kind.channels().to_string(),
            kind.guard_channels().to_string(),
            fmt_f64(kind.path_loss_exponent()),
            fmt_f64(range.min(kind.radius_m() * 10.0)),
        ]);
    }
    let mut speeds = Table::new(["population", "speed m/s", "preferred tier"]);
    for (name, v) in [
        ("pedestrian", 1.25),
        ("cyclist", 6.0),
        ("urban vehicle", 10.0),
        ("highway", 27.0),
    ] {
        speeds.row([
            name.to_string(),
            fmt_f64(v),
            Tier::preferred_for_speed(v).to_string(),
        ]);
    }
    // The outermost tier at work: a rural corridor whose middle domain
    // has no macro radio, with and without the satellite overlay. The
    // shuttle enters the hole around t = 104 s, so even the Quick run
    // must cover the first traversal (t ≈ 104–224 s) for the overlay to
    // have anything to rescue — hence the 240 s floor.
    let secs = e1_overlay_secs(effort);
    let reports = run_specs(seed, arm_specs("E1", effort));
    let (events, fingerprints) = digest(&reports);
    let mut sat = Table::new(["overlay", "loss", "outage samples", "inter-domain handoffs"]);
    for ((label, _), r) in e1_arms().iter().zip(&reports) {
        let inter: u64 = r
            .handoffs
            .completed
            .iter()
            .filter(|(t, _)| t.is_inter_domain())
            .map(|(_, c)| *c)
            .sum();
        sat.row([
            label.to_string(),
            pct(r.aggregate_qos().loss_rate),
            r.handoffs.outage_samples.to_string(),
            inter.to_string(),
        ]);
    }
    ExperimentResult {
        id: "E1",
        title: "Fig 2.1 — multi-tier cellular architecture",
        tables: vec![
            ("Tier parameters (radio-consistent footprints)".into(), tiers),
            ("Speed-based tier assignment (§3.2 factor 1)".into(), speeds),
            (format!("Satellite overlay over a rural macro hole, {secs:.0}s"), sat),
        ],
        notes: vec![
            "radio range >= nominal radius for every tier, so footprints are servable".into(),
            format!("tier speed threshold: {} m/s", Tier::SPEED_THRESHOLD_MPS),
            "the satellite tier absorbs the macro hole: outages drop to ~0 at the cost of 32 kb/s service and ~2.7 ms orbital latency".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E2 — Fig 2.2: Mobile IP procedures. Registration cost and the
/// triangle-routing penalty, against the RSMC-optimized path.
pub fn e2_mobileip(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let mut reports = run_specs(seed, arm_specs("E2", effort));
    let (events, fingerprints) = digest(&reports);
    let multi = reports.pop().expect("two arms");
    let pure = reports.pop().expect("two arms");
    let mut t = Table::new([
        "metric",
        "pure mobile-ip (triangle)",
        "multi-tier+rsmc (optimized)",
    ]);
    let (pq, mq) = (pure.aggregate_qos(), multi.aggregate_qos());
    t.row([
        "mean one-way delay".into(),
        ms(pq.mean_delay_ms),
        ms(mq.mean_delay_ms),
    ]);
    t.row([
        "p95 one-way delay".into(),
        ms(pq.p95_delay_ms),
        ms(mq.p95_delay_ms),
    ]);
    t.row(["loss".into(), pct(pq.loss_rate), pct(mq.loss_rate)]);
    t.row([
        "registrations sent".into(),
        pure.signaling.mip_requests.to_string(),
        multi.signaling.mip_requests.to_string(),
    ]);
    t.row([
        "handoff latency (mean)".into(),
        ms(pure.handoffs.latency_all().mean()),
        ms(multi.handoffs.latency_all().mean()),
    ]);
    ExperimentResult {
        id: "E2",
        title: "Fig 2.2 — Mobile IP procedures: registration and triangle routing",
        tables: vec![(format!("commute corridor, {secs:.0}s simulated"), t)],
        notes: vec![
            "expected shape: triangle delay > optimized delay; registrations higher without the hierarchy".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E3 — Fig 2.3: Cellular IP access network. Route-update period vs
/// signaling overhead and routing-state staleness.
pub fn e3_cip_routing(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let mut t = Table::new([
        "route-update period",
        "route updates",
        "updates/s",
        "loss",
        "no-route drops",
        "paging drops",
    ]);
    let reports = run_specs(seed, arm_specs("E3", effort));
    let (events, fingerprints) = digest(&reports);
    for (&period_ms, r) in e3_periods().iter().zip(&reports) {
        let q = r.aggregate_qos();
        let drops = |c| r.drops.get(&c).copied().unwrap_or(0);
        t.row([
            format!("{period_ms}ms"),
            r.signaling.route_updates.to_string(),
            fmt_f64(r.signaling.route_updates as f64 / secs),
            pct(q.loss_rate),
            drops(mtnet_core::report::DropCause::NoRoute).to_string(),
            drops(mtnet_core::report::DropCause::Paging).to_string(),
        ]);
    }
    ExperimentResult {
        id: "E3",
        title: "Fig 2.3 — Cellular IP: route-update rate vs overhead and staleness",
        tables: vec![(format!("flat Cellular IP, single domain, {secs:.0}s"), t)],
        notes: vec![
            "expected shape: overhead falls linearly with the period; loss rises once caches outlive their refresh".into(),
            "cache lifetime is 3x the period, so staleness appears via handoffs, not pure expiry".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E4 — Fig 2.4: Cellular IP hard vs semisoft handoff. Analytic loss
/// window vs crossover distance, plus measured loss on the cyclist
/// workload.
pub fn e4_cip_handoff(effort: Effort, seed: u64) -> ExperimentResult {
    // Analytic part: a deep chain exposes the crossover-distance scaling.
    let mut chain = CipTree::new(NodeId(0));
    for i in 1..=6u32 {
        chain.add_bs(NodeId(i), NodeId(i - 1));
    }
    // Leaves hanging off each chain node: handoff from leaf(i) to leaf(j)
    // has crossover at depth min(i,j).
    for i in 1..=6u32 {
        chain.add_bs(NodeId(100 + i), NodeId(i));
    }
    let per_hop = SimDuration::from_millis(5);
    let mut analytic = Table::new([
        "crossover hops",
        "hard loss window",
        "semisoft(100ms) window",
        "semisoft(20ms) window",
    ]);
    for up in 1..=5u32 {
        // Old attachment near the root, new attachment deep in the chain:
        // the route update from the NEW BS must climb `up + 1` hops to the
        // crossover (the chain node above the old leaf).
        let old = NodeId(100 + 6 - up);
        let new = NodeId(106);
        let hard = HandoffKind::Hard.loss_window(&chain, old, new, per_hop);
        let semi100 = HandoffKind::default_semisoft().loss_window(&chain, old, new, per_hop);
        let semi20 = HandoffKind::Semisoft {
            delay: SimDuration::from_millis(20),
        }
        .loss_window(&chain, old, new, per_hop);
        analytic.row([
            (up + 1).to_string(),
            ms(hard.as_millis_f64()),
            ms(semi100.as_millis_f64()),
            ms(semi20.as_millis_f64()),
        ]);
    }
    // Measured part: cyclists crossing micro cells.
    let secs = effort.secs(400.0);
    let mut measured = Table::new([
        "scheme",
        "handoffs",
        "loss",
        "lost pkts",
        "duplicates (bicast cost)",
    ]);
    let reports = run_specs(seed, arm_specs("E4", effort));
    let (events, fingerprints) = digest(&reports);
    for ((label, _), r) in e4_arms().iter().zip(&reports) {
        let q = r.aggregate_qos();
        measured.row([
            label.to_string(),
            r.handoffs.total().to_string(),
            pct(q.loss_rate),
            (q.sent - q.received).to_string(),
            q.duplicates.to_string(),
        ]);
    }
    ExperimentResult {
        id: "E4",
        title: "Fig 2.4 — Cellular IP handoff: hard vs semisoft",
        tables: vec![
            ("Analytic loss window vs crossover distance (5 ms/hop)".into(), analytic),
            (format!("Measured, cyclist workload, {secs:.0}s"), measured),
        ],
        notes: vec![
            "expected shape: hard window = crossover round-trip (paper); semisoft covers it at the cost of duplicates".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E5 — Fig 3.1: hierarchical cell tables. Refresh period vs staleness and
/// the micro-before-macro lookup order.
pub fn e5_location(seed: u64) -> ExperimentResult {
    // Fig 3.1 geometry: R3 over R1, R2; two-level micros per domain.
    let mut h = Hierarchy::new();
    let r3 = h.add_upper_macro(CellId(100));
    h.add_domain(CellId(101), Some(r3));
    h.add_domain(CellId(102), Some(r3));
    let micros_d1 = [CellId(1), CellId(2), CellId(3)];
    let micros_d2 = [CellId(4), CellId(5), CellId(6)];
    h.add_micro(CellId(1), CellId(101));
    h.add_micro(CellId(2), CellId(1));
    h.add_micro(CellId(3), CellId(1));
    h.add_micro(CellId(4), CellId(102));
    h.add_micro(CellId(5), CellId(4));
    h.add_micro(CellId(6), CellId(4));

    let lifetime = SimDuration::from_secs(6);
    let n_mns = 40usize;
    let horizon = SimTime::from_secs(120);
    // E5 is analytic (no discrete-event simulation), but its work is
    // still deterministic: count location messages + directory queries
    // so the perf gate's events-equality tripwire covers it too.
    let mut total_work = 0u64;
    let mut t = Table::new([
        "refresh period",
        "messages",
        "tables touched",
        "found at query",
        "stale fraction",
        "micro-table hits",
        "macro-table hits",
    ]);
    for period_s in [2u64, 4, 5, 8, 12] {
        let mut dir = LocationDirectory::new(&h, lifetime);
        let mut rng = RngStream::derive(seed, &format!("e5/{period_s}"));
        let all_micros: Vec<CellId> = micros_d1.iter().chain(micros_d2.iter()).copied().collect();
        let mut serving: Vec<CellId> = (0..n_mns)
            .map(|_| all_micros[rng.index(all_micros.len())])
            .collect();
        let mut messages = 0u64;
        let mut touched = 0usize;
        let mut found = 0u64;
        let mut queries = 0u64;
        let mut micro_hits = 0u64;
        let mut macro_hits = 0u64;
        let mut now = SimTime::ZERO;
        while now < horizon {
            for (i, cell) in serving.iter_mut().enumerate() {
                // 10% of periods the node moves to a random micro.
                if rng.chance(0.1) {
                    *cell = all_micros[rng.index(all_micros.len())];
                }
                let mn = Addr::from_octets(10, 0, 2, i as u8 + 1);
                touched += dir.on_location_message(&h, mn, *cell, now);
                messages += 1;
            }
            // Query every node once per second across the refresh period
            // (the tracking use case), so staleness shows as a gradient.
            for offset in 1..=period_s {
                let query_time = now + SimDuration::from_secs(offset);
                for (i, cell) in serving.iter().enumerate() {
                    let mn = Addr::from_octets(10, 0, 2, i as u8 + 1);
                    let from = if rng.chance(0.5) {
                        CellId(101)
                    } else {
                        CellId(102)
                    };
                    queries += 1;
                    if let Some(loc) = dir.locate(&h, mn, from, query_time) {
                        found += 1;
                        match loc.hit.tier() {
                            Tier::Micro => micro_hits += 1,
                            Tier::Macro => macro_hits += 1,
                        }
                        let _ = cell;
                    }
                }
            }
            dir.sweep(now);
            now += SimDuration::from_secs(period_s);
        }
        total_work += messages + queries;
        t.row([
            format!("{period_s}s"),
            messages.to_string(),
            touched.to_string(),
            format!("{found}/{queries}"),
            pct(1.0 - found as f64 / queries as f64),
            micro_hits.to_string(),
            macro_hits.to_string(),
        ]);
    }
    ExperimentResult {
        id: "E5",
        title: "Fig 3.1 — micro_table/macro_table location management",
        tables: vec![(
            format!("{n_mns} nodes, 6 micro cells in 2 domains, table lifetime {lifetime}"),
            t,
        )],
        notes: vec![
            "expected shape: staleness ~0 while period < lifetime (6 s), then rises sharply".into(),
            "micro-sourced records dominate hits: the paper's micro-first search order pays off"
                .into(),
        ],
        events: total_work,
        analytic: true,
        fingerprints: Vec::new(),
    }
}

fn handoff_table(r: &SimReport) -> Table {
    let mut t = Table::new([
        "handoff type",
        "count",
        "latency mean",
        "latency min",
        "latency max",
        "nominal msgs",
    ]);
    for ht in HandoffType::ALL {
        let Some(&count) = r.handoffs.completed.get(&ht) else {
            continue;
        };
        let lat = r.handoffs.latency_ms.get(&ht);
        t.row([
            ht.to_string(),
            count.to_string(),
            lat.map_or("-".into(), |s| ms(s.mean())),
            lat.and_then(|s| s.min()).map_or("-".into(), ms),
            lat.and_then(|s| s.max()).map_or("-".into(), ms),
            ht.nominal_messages().to_string(),
        ]);
    }
    t
}

/// E6 — Fig 3.2: inter-domain handoff when both domains share the upper
/// BS: the update travels over the shared BS, not the home network.
pub fn e6_interdomain_same(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(500.0);
    let reports = run_specs(seed, arm_specs("E6", effort));
    let r = &reports[0];
    let (events, fingerprints) = digest(&reports);
    ExperimentResult {
        id: "E6",
        title: "Fig 3.2 — inter-domain handoff, same upper BS",
        tables: vec![(format!("2 domains sharing an upper BS, {secs:.0}s"), handoff_table(r))],
        notes: vec![
            "expected shape: inter-domain (same upper) latency well below the different-upper case of E7 — no home-network round trip".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E7 — Fig 3.3: inter-domain handoff when the upper BSs differ: the
/// update detours via the home network.
pub fn e7_interdomain_diff(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(500.0);
    let reports = run_specs(seed, arm_specs("E7", effort));
    let r = &reports[0];
    let (events, fingerprints) = digest(&reports);
    ExperimentResult {
        id: "E7",
        title: "Fig 3.3 — inter-domain handoff, different upper BS",
        tables: vec![(format!("2 domains with separate upper BSs, {secs:.0}s"), handoff_table(r))],
        notes: vec![
            "expected shape: different-upper latency includes the home-network round trip (tens of ms of WAN)".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E8 — Fig 3.4: the three intra-domain handoff cases.
pub fn e8_intradomain(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(600.0);
    let reports = run_specs(seed, arm_specs("E8", effort));
    let r = &reports[0];
    let (events, fingerprints) = digest(&reports);
    ExperimentResult {
        id: "E8",
        title: "Fig 3.4 — intra-domain handoffs (macro→micro, micro→macro, micro→micro)",
        tables: vec![(format!("small city, mixed population, {secs:.0}s"), handoff_table(r))],
        notes: vec![
            "expected shape: all intra cases complete within the access network (≈ semisoft delay + tree climb), far below inter-domain costs".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E9 — Fig 4.1: the RSMC. With vs without the combined
/// gateway/cache/notifier.
pub fn e9_rsmc(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let mut t = Table::new([
        "architecture",
        "loss",
        "mean delay",
        "p95 delay",
        "rsmc notifications",
        "no-route drops",
        "paging drops",
    ]);
    let reports = run_specs(seed, arm_specs("E9", effort));
    let (events, fingerprints) = digest(&reports);
    for (&arch, r) in e9_arms().iter().zip(&reports) {
        let q = r.aggregate_qos();
        let drops = |c| r.drops.get(&c).copied().unwrap_or(0);
        t.row([
            arch.label().to_string(),
            pct(q.loss_rate),
            ms(q.mean_delay_ms),
            ms(q.p95_delay_ms),
            r.signaling.rsmc_notifications.to_string(),
            drops(mtnet_core::report::DropCause::NoRoute).to_string(),
            drops(mtnet_core::report::DropCause::Paging).to_string(),
        ]);
    }
    ExperimentResult {
        id: "E9",
        title: "Fig 4.1 — RSMC: combined gateway cache + HA/CN notification",
        tables: vec![(format!("small city, {secs:.0}s"), t)],
        notes: vec![
            "expected shape: RSMC cuts mean delay (route optimization via CN notify) and loss (location-cache rescue of stale routes)".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E10 — headline claim 1: improved QoS (handoff latency and delay) of
/// the proposed architecture vs both baselines.
pub fn e10_qos(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let reps = effort.replications();
    let archs = e10_arms();
    // All (architecture, replication) runs fan out in one batch; each gets
    // its own (E10, arch, rep)-derived seed, so results are independent of
    // how the pool schedules them.
    let reports = run_specs(seed, arm_specs("E10", effort));
    let (events, fingerprints) = digest(&reports);
    let mut t = Table::new([
        "architecture",
        "loss",
        "mean delay",
        "p95 delay",
        "jitter",
        "handoffs",
        "handoff latency",
        "signaling msgs",
    ]);
    for (a, arch) in archs.iter().enumerate() {
        let runs = &reports[a * reps as usize..][..reps as usize];
        let mut agg = Replicates::new();
        for r in runs {
            let q = r.aggregate_qos();
            agg.record("loss", q.loss_rate);
            agg.record("mean_delay", q.mean_delay_ms);
            agg.record("p95_delay", q.p95_delay_ms);
            agg.record("jitter", q.jitter_ms);
            agg.record("handoffs", r.handoffs.total() as f64);
            agg.record("latency", r.handoffs.latency_all().mean());
            agg.record("signaling", r.signaling.total_messages() as f64);
        }
        t.row([
            arch.label().to_string(),
            pm(agg.get("loss"), pct),
            pm(agg.get("mean_delay"), ms),
            pm(agg.get("p95_delay"), ms),
            pm(agg.get("jitter"), ms),
            pm(agg.get("handoffs"), count_fmt),
            pm(agg.get("latency"), ms),
            pm(agg.get("signaling"), count_fmt),
        ]);
    }
    ExperimentResult {
        id: "E10",
        title: "Claim — multi-tier improves QoS over pure Mobile IP and flat Cellular IP",
        tables: vec![(
            format!("small city, mixed population, {secs:.0}s, {reps} replications (mean±95% CI)"),
            t,
        )],
        notes: vec![
            "expected shape: multi-tier wins on delay (vs triangle-routing Mobile IP) and on loss/outage (vs coverage-limited flat Cellular IP)".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E11 — headline claim 2: reduced data-packet loss for mobile multimedia,
/// across population speeds.
pub fn e11_loss(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let populations = e11_populations();
    let archs = e11_arms();
    let reps = effort.replications();
    // One job per (population, architecture, replication); the arm label
    // in the seed path carries both the population and the architecture.
    let reports = run_specs(seed, arm_specs("E11", effort));
    let (events, fingerprints) = digest(&reports);
    let mut t = Table::new([
        "population",
        "architecture",
        "loss",
        "jitter",
        "handoffs",
        "outage samples",
    ]);
    let mut next = reports.chunks(reps as usize);
    for (pname, _) in populations {
        for arch in archs {
            let runs = next.next().expect("one chunk per (population, arch)");
            let mut agg = Replicates::new();
            for r in runs {
                let q = r.aggregate_qos();
                agg.record("loss", q.loss_rate);
                agg.record("jitter", q.jitter_ms);
                agg.record("handoffs", r.handoffs.total() as f64);
                agg.record("outages", r.handoffs.outage_samples as f64);
            }
            t.row([
                pname.to_string(),
                arch.label().to_string(),
                pm(agg.get("loss"), pct),
                pm(agg.get("jitter"), ms),
                pm(agg.get("handoffs"), count_fmt),
                pm(agg.get("outages"), count_fmt),
            ]);
        }
    }
    ExperimentResult {
        id: "E11",
        title: "Claim — multi-tier + semisoft + RSMC reduces multimedia packet loss",
        tables: vec![(
            format!("small city, {secs:.0}s per cell, {reps} replications (mean±95% CI)"),
            t,
        )],
        notes: vec![
            "expected shape: fast populations break flat Cellular IP (outages) and stress pure Mobile IP (registration loss); the multi-tier architecture stays low across all speeds".into(),
            "semisoft ≤ hard loss for the micro-tier populations".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E12 — §3.2 ablation: which of the three handoff factors matter.
pub fn e12_ablation(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let mut t = Table::new([
        "factors",
        "handoffs",
        "ping-pong",
        "rejected",
        "fallback used",
        "outages",
        "loss",
    ]);
    let reports = run_specs(seed, arm_specs("E12", effort));
    let (events, fingerprints) = digest(&reports);
    for ((label, _), r) in e12_arms().iter().zip(&reports) {
        let q = r.aggregate_qos();
        t.row([
            label.to_string(),
            r.handoffs.total().to_string(),
            r.handoffs.ping_pong.to_string(),
            r.handoffs.rejected.to_string(),
            r.handoffs.fallback_used.to_string(),
            r.handoffs.outage_samples.to_string(),
            pct(q.loss_rate),
        ]);
    }
    ExperimentResult {
        id: "E12",
        title: "Ablation — the three handoff factors of §3.2",
        tables: vec![(format!("small city, mixed population, {secs:.0}s"), t)],
        notes: vec![
            "expected shape: dropping the speed factor strands fast nodes in micro cells (more handoffs); dropping signal raises ping-pong; dropping resources removes the fallback safety valve".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E13 — resilience under infrastructure faults: the same outage, flap
/// and failover schedule against the hierarchical architecture and pure
/// Mobile IP, plus an eclipsed satellite overlay.
pub fn e13_resilience(effort: Effort, seed: u64) -> ExperimentResult {
    let secs = effort.secs(300.0);
    let reports = run_specs(seed, arm_specs("E13", effort));
    let (events, fingerprints) = digest(&reports);
    let mut t = Table::new([
        "arm",
        "fault events",
        "loss",
        "outage drops",
        "re-registrations",
        "recoveries",
        "recovery mean",
        "recovery max",
    ]);
    let labels = ["multi-tier", "pure mobile-ip", "satellite eclipse"];
    for (label, r) in labels.iter().zip(&reports) {
        let q = r.aggregate_qos();
        let f = &r.faults;
        let rec = &f.recovery_latency_ms;
        t.row([
            label.to_string(),
            f.total_transitions().to_string(),
            pct(q.loss_rate),
            f.outage_drops.to_string(),
            f.reregistrations.to_string(),
            rec.count().to_string(),
            if rec.count() > 0 {
                ms(rec.mean())
            } else {
                "-".into()
            },
            rec.max().map_or("-".into(), ms),
        ]);
    }
    ExperimentResult {
        id: "E13",
        title: "Resilience — spec-driven outages, flaps, failover and eclipse",
        tables: vec![(
            format!("identical fault schedules per arm, {secs:.0}s (overlay arm: E1 horizon)"),
            t,
        )],
        notes: vec![
            "expected shape: the hierarchy re-converges via soft-state refresh (bounded recovery latency); pure Mobile IP pays a re-registration storm per restore".into(),
            "the eclipse arm re-opens the E1 macro hole while the overlay is dark — loss climbs toward the terrestrial-only arm of E1".into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

/// E14 — the metro tier: a million-subscriber world carried with
/// O(active) state. Per-node state lives in SoA columns, RSMC
/// authentication is an epoch tag on the node's own row, the MNLD is a
/// dense table, and every delivered packet's delay streams into one
/// constant-memory aggregate histogram instead of per-flow
/// distributions. The table reports the per-tier admission pressure and
/// the aggregate delay percentiles the streaming accumulators exist for.
pub fn e14_metro(effort: Effort, seed: u64) -> ExperimentResult {
    let specs = arm_specs("E14", effort);
    let spec = specs[0].clone();
    let secs = spec.duration_s;
    let subscribers = spec.pedestrians + spec.cyclists + spec.vehicles;
    let flows = if spec.voice_every > 0 {
        subscribers.div_ceil(spec.voice_every)
    } else {
        0
    };
    // Deployed radio cells: each domain's street row + its macro (or the
    // satellite's single footprint), plus one shared upper BS per
    // consecutive domain pair.
    let cells = spec.n_domains * (1 + spec.micro_per_domain)
        + if spec.share_upper {
            spec.n_domains / 2
        } else {
            0
        }
        + u32::from(spec.satellite);
    let reports = run_specs(seed, specs);
    let (events, fingerprints) = digest(&reports);
    let r = &reports[0];
    let agg = r
        .aggregate
        .as_ref()
        .expect("metro specs enable aggregate QoS");
    let q = r.aggregate_qos();
    let p = |pct: f64| ms(agg.delay_ms.percentile(pct).unwrap_or(0.0));
    let mut t = Table::new(["metric", "value"]);
    t.row(["subscribers".into(), subscribers.to_string()]);
    t.row(["radio cells".into(), cells.to_string()]);
    t.row(["voice flows (active set)".into(), flows.to_string()]);
    t.row(["simulated".into(), format!("{secs:.0}s")]);
    t.row(["events processed".into(), r.events_processed.to_string()]);
    t.row(["packets delivered".into(), agg.count().to_string()]);
    t.row(["aggregate delay p50".into(), p(50.0)]);
    t.row(["aggregate delay p95".into(), p(95.0)]);
    t.row(["aggregate delay p99".into(), p(99.0)]);
    t.row(["loss".into(), pct(q.loss_rate)]);
    t.row(["handoffs".into(), r.handoffs.total().to_string()]);
    t.row(["handoffs rejected".into(), r.handoffs.rejected.to_string()]);
    t.row([
        "fallback (other tier)".into(),
        r.handoffs.fallback_used.to_string(),
    ]);
    t.row([
        "route updates".into(),
        r.signaling.route_updates.to_string(),
    ]);
    t.row([
        "paging updates".into(),
        r.signaling.paging_updates.to_string(),
    ]);
    t.row([
        "location messages".into(),
        r.signaling.location_messages.to_string(),
    ]);
    ExperimentResult {
        id: "E14",
        title: "Metro tier — 10^6 subscribers, O(active) state, streaming QoS",
        tables: vec![(
            format!(
                "{} domains + satellite overlay, commute-hour load curve, {secs:.0}s",
                spec.n_domains
            ),
            t,
        )],
        notes: vec![
            "state scales with the active set: per-flow delay histograms collapse into one \
             2048-bucket aggregate; RSMC auth and MNLD rows are O(population) columns, not \
             O(subscribers) side maps"
                .into(),
            "expected shape: idle subscribers cost only their periodic ticks (5 s move samples, \
             60 s location/paging); the pico street rows absorb the active calls and the macro \
             umbrella takes the overflow"
                .into(),
        ],
        events,
        analytic: false,
        fingerprints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_is_complete() {
        let r = e1_multitier_coverage(Effort::Quick, 1);
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[0].1.len(), 4, "one row per tier");
    }

    #[test]
    fn e5_staleness_rises_past_lifetime() {
        let r = e5_location(3);
        let rendered = r.render();
        // The 2 s row must show ~0 staleness; the 12 s row must not.
        assert!(rendered.contains("2s"));
        assert!(rendered.contains("12s"));
    }

    #[test]
    fn e4_analytic_monotone() {
        let r = e4_cip_handoff(Effort::Quick, 3);
        assert!(r.render().contains("hard loss window"));
    }

    #[test]
    fn e1_satellite_overlay_rescues_the_macro_hole() {
        // Regression for the E1 blind spot: the Quick horizon must cover
        // the shuttle's first traversal of the macro hole (t ≈ 104–224 s),
        // so the terrestrial arm suffers outages the overlay rescues and
        // the with/without loss delta is nonzero.
        let secs = e1_overlay_secs(Effort::Quick);
        assert!(secs >= 240.0, "Quick horizon too short to reach the hole");
        let [terrestrial_spec, satellite_spec] =
            <[ScenarioSpec; 2]>::try_from(arm_specs("E1", Effort::Quick)).expect("two arms");
        let terrestrial = terrestrial_spec.run(42);
        let satellite = satellite_spec.run(42);
        assert!(
            terrestrial.handoffs.outage_samples > 0,
            "the macro hole was never hit"
        );
        let (lt, ls) = (
            terrestrial.aggregate_qos().loss_rate,
            satellite.aggregate_qos().loss_rate,
        );
        assert!(
            lt > ls,
            "satellite overlay must reduce loss: terrestrial {lt:.4} vs satellite {ls:.4}"
        );
    }

    #[test]
    fn arm_spec_seeds_are_distinct_and_stable() {
        // Every simulation arm across the whole suite resolves to a
        // distinct world seed, and the derivation matches the historical
        // (experiment, arm, replication) convention.
        use mtnet_sim::rng::replication_seed;
        let mut seen = std::collections::HashMap::new();
        for id in crate::ALL_IDS {
            for (i, spec) in arm_specs(id, Effort::Quick).iter().enumerate() {
                let seed = spec.resolve_seed(42);
                if let Some(prev) = seen.insert(seed, (id, i)) {
                    panic!("seed collision: {id}[{i}] vs {prev:?}");
                }
            }
        }
        let e2 = &arm_specs("E2", Effort::Quick)[0];
        assert_eq!(
            e2.resolve_seed(42),
            replication_seed(42, "E2", "pure-mobile-ip", 0)
        );
        assert_ne!(e2.resolve_seed(42), e2.resolve_seed(43));
    }

    #[test]
    fn e10_tables_identical_across_thread_counts() {
        // The rendered experiment output is part of the determinism
        // contract: sequential and parallel execution must agree byte for
        // byte. (The full report-level check lives in
        // tests/determinism.rs; this guards the harness glue.) The
        // override is a process-wide atomic; other tests seeing it
        // mid-flight is harmless because thread count never changes
        // results — the very property under test.
        use std::sync::atomic::Ordering;
        let run_with = |threads: usize| {
            TEST_THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
            let rendered = e10_qos(Effort::Quick, 7).render();
            TEST_THREAD_OVERRIDE.store(0, Ordering::Relaxed);
            rendered
        };
        assert_eq!(run_with(1), run_with(4));
    }

    #[test]
    fn fingerprints_bit_identical_across_threads_and_shards() {
        // Parity surface of the metro-tier memory work: the SoA node
        // tables, O(active) RSMC/MNLD caches, and streaming metrics must
        // not let execution layout leak into results. Every (threads,
        // shards) combination must reproduce the sequential single-shard
        // fingerprints bit for bit — on an E1-class legacy world and on a
        // metro-tier world (idle camping + aggregate QoS exercise the new
        // paths).
        use std::sync::atomic::Ordering;
        let arms = || {
            let mut specs = arm_specs("E1", Effort::Quick);
            specs.push(
                ScenarioSpec::metro_smoke()
                    .with_duration_s(30.0)
                    .with_seed_path("parity", "metro", 0),
            );
            specs
        };
        let run_with = |threads: usize, shards: u32| -> Vec<String> {
            TEST_THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
            let specs: Vec<ScenarioSpec> =
                arms().into_iter().map(|s| s.with_shards(shards)).collect();
            let reports = run_specs(42, specs);
            TEST_THREAD_OVERRIDE.store(0, Ordering::Relaxed);
            reports.iter().map(|r| r.fingerprint()).collect()
        };
        let reference = run_with(1, 1);
        assert!(reference.len() >= 3, "E1 arms plus the metro world");
        for (threads, shards) in [(1usize, 2u32), (4, 1), (4, 2)] {
            assert_eq!(
                run_with(threads, shards),
                reference,
                "threads={threads} shards={shards}"
            );
        }
    }
}
