//! Content-addressed, resumable on-disk result store for sweeps.
//!
//! One completed sweep cell = one file under the store directory, named
//! by [`ResultStore::key`] — a 64-bit FNV-1a hash of the cell's
//! **canonical spec text** (see `ScenarioSpec::render`) plus the master
//! seed. Since the canonical text covers every field that can influence
//! a run (geometry, population, traffic, protocol knobs, duration, seed
//! path), two cells share a slot **iff** they would produce the same
//! report — so re-invoking an interrupted or extended sweep recomputes
//! only the cells that are actually missing.
//!
//! A stored cell carries the run's identity, its bit-exact
//! `SimReport::fingerprint`, and a fixed set of extracted metrics with
//! floats serialized as IEEE-754 bit patterns — a loaded cell therefore
//! renders **byte-identically** to the run that produced it, and equals
//! a direct (storeless) run of the same spec (asserted by
//! `tests/sweep_store.rs`). Loads verify the stored spec text and master
//! seed before trusting a slot, so a hash collision degrades to a
//! recompute, never a wrong result.

use mtnet_core::report::SimReport;
use mtnet_core::spec::ScenarioSpec;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One extracted metric value: exact counters or bit-exact floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A counter.
    U(u64),
    /// A float, serialized as its IEEE-754 bit pattern.
    F(f64),
}

impl MetricValue {
    /// The value as `f64` (counters converted).
    pub fn as_f64(self) -> f64 {
        match self {
            MetricValue::U(v) => v as f64,
            MetricValue::F(v) => v,
        }
    }

    fn render(self) -> String {
        match self {
            MetricValue::U(v) => format!("u {v}"),
            MetricValue::F(v) => format!("f {:016x} # {v:?}", v.to_bits()),
        }
    }

    fn parse(text: &str) -> Option<MetricValue> {
        let text = text.split('#').next()?.trim();
        let (kind, value) = text.split_once(' ')?;
        match kind {
            "u" => value.trim().parse().ok().map(MetricValue::U),
            "f" => u64::from_str_radix(value.trim(), 16)
                .ok()
                .map(|bits| MetricValue::F(f64::from_bits(bits))),
            _ => None,
        }
    }
}

/// The fixed metric surface extracted from every stored run — everything
/// the sweep tables render, in a stable order.
pub fn extract_metrics(report: &SimReport) -> Vec<(&'static str, MetricValue)> {
    let q = report.aggregate_qos();
    let h = &report.handoffs;
    let drops = |c| report.drops.get(&c).copied().unwrap_or(0);
    use mtnet_core::report::DropCause;
    vec![
        ("sent", MetricValue::U(q.sent)),
        ("received", MetricValue::U(q.received)),
        ("duplicates", MetricValue::U(q.duplicates)),
        ("loss_rate", MetricValue::F(q.loss_rate)),
        ("mean_delay_ms", MetricValue::F(q.mean_delay_ms)),
        ("p95_delay_ms", MetricValue::F(q.p95_delay_ms)),
        ("jitter_ms", MetricValue::F(q.jitter_ms)),
        ("handoffs", MetricValue::U(h.total())),
        ("handoff_latency_ms", MetricValue::F(h.latency_all().mean())),
        ("ping_pong", MetricValue::U(h.ping_pong)),
        ("rejected", MetricValue::U(h.rejected)),
        ("fallback_used", MetricValue::U(h.fallback_used)),
        ("outage_samples", MetricValue::U(h.outage_samples)),
        (
            "signaling_msgs",
            MetricValue::U(report.signaling.total_messages()),
        ),
        (
            "route_updates",
            MetricValue::U(report.signaling.route_updates),
        ),
        (
            "page_messages",
            MetricValue::U(report.signaling.page_messages),
        ),
        ("drops_no_route", MetricValue::U(drops(DropCause::NoRoute))),
        ("drops_paging", MetricValue::U(drops(DropCause::Paging))),
        ("drops_outage", MetricValue::U(drops(DropCause::Outage))),
        ("calls_accepted", MetricValue::U(report.calls_accepted)),
        ("calls_blocked", MetricValue::U(report.calls_blocked)),
        ("events", MetricValue::U(report.events_processed)),
    ]
}

/// One completed sweep cell as stored on disk: the run's identity, its
/// extracted metric surface and bit-exact fingerprint, plus the exact
/// `(spec text, master seed)` pair it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    /// Cell label (axis assignments + replication).
    pub label: String,
    /// The resolved world seed the run used.
    pub seed: u64,
    /// Replication index.
    pub replication: u64,
    /// Master seed the sweep ran under.
    pub master_seed: u64,
    /// Canonical spec text of the cell (the content address, with
    /// `master_seed`).
    pub spec_text: String,
    /// Bit-exact `SimReport::fingerprint` of the run.
    pub fingerprint: String,
    /// Extracted metrics in [`extract_metrics`] order.
    pub metrics: Vec<(String, MetricValue)>,
}

/// Header line of the store file format.
const RUN_HEADER: &str = "mtnet-run v1";

impl StoredRun {
    /// Captures a finished run.
    pub fn from_report(
        label: &str,
        spec: &ScenarioSpec,
        master_seed: u64,
        report: &SimReport,
    ) -> StoredRun {
        StoredRun {
            label: label.into(),
            seed: spec.resolve_seed(master_seed),
            replication: spec.seed.replication(),
            master_seed,
            spec_text: spec.render(),
            fingerprint: report.fingerprint(),
            metrics: extract_metrics(report)
                .into_iter()
                .map(|(name, v)| (name.to_string(), v))
                .collect(),
        }
    }

    /// Looks up one metric by name.
    pub fn metric(&self, name: &str) -> Option<MetricValue> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serializes to the store file format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{RUN_HEADER}");
        let _ = writeln!(out, "label = {}", self.label);
        let _ = writeln!(out, "seed = {:016x}", self.seed);
        let _ = writeln!(out, "replication = {}", self.replication);
        let _ = writeln!(out, "master_seed = {}", self.master_seed);
        for (name, value) in &self.metrics {
            let _ = writeln!(out, "metric {name} = {}", value.render());
        }
        for line in self.spec_text.lines() {
            let _ = writeln!(out, "spec | {line}");
        }
        for line in self.fingerprint.lines() {
            let _ = writeln!(out, "fp | {line}");
        }
        out
    }

    /// Parses the store file format.
    pub fn parse(text: &str) -> Result<StoredRun, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(RUN_HEADER) {
            return Err(format!("missing {RUN_HEADER:?} header"));
        }
        let mut run = StoredRun {
            label: String::new(),
            seed: 0,
            replication: 0,
            master_seed: 0,
            spec_text: String::new(),
            fingerprint: String::new(),
            metrics: Vec::new(),
        };
        for line in lines {
            if let Some(rest) = line.strip_prefix("spec | ") {
                run.spec_text.push_str(rest);
                run.spec_text.push('\n');
            } else if let Some(rest) = line.strip_prefix("fp | ") {
                run.fingerprint.push_str(rest);
                run.fingerprint.push('\n');
            } else if let Some(rest) = line.strip_prefix("metric ") {
                let (name, value) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("bad metric line {line:?}"))?;
                let value = MetricValue::parse(value.trim())
                    .ok_or_else(|| format!("bad metric value {line:?}"))?;
                run.metrics.push((name.trim().to_string(), value));
            } else if let Some((key, value)) = line.split_once('=') {
                let value = value.trim();
                match key.trim() {
                    "label" => run.label = value.to_string(),
                    "seed" => {
                        run.seed = u64::from_str_radix(value, 16)
                            .map_err(|_| format!("bad seed {value:?}"))?;
                    }
                    "replication" => {
                        run.replication = value
                            .parse()
                            .map_err(|_| format!("bad replication {value:?}"))?;
                    }
                    "master_seed" => {
                        run.master_seed = value
                            .parse()
                            .map_err(|_| format!("bad master_seed {value:?}"))?;
                    }
                    other => return Err(format!("unknown key {other:?}")),
                }
            } else if !line.trim().is_empty() {
                return Err(format!("unparseable line {line:?}"));
            }
        }
        Ok(run)
    }
}

/// The on-disk store: a directory of `<key>.run` files.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

/// Per-process sequence for temp-file names: concurrent saves of the
/// same key from different threads (or the coordinator's lease writes)
/// must never share a temp path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// How old an orphaned `*.tmp` file must be before the startup sweep
/// garbage-collects it. Live writers hold a temp file for milliseconds
/// (write + rename), so a minute-old temp can only be the leftover of a
/// crashed worker.
const ORPHAN_TMP_MAX_AGE: Duration = Duration::from_secs(60);

impl ResultStore {
    /// Opens (creating if needed) a store directory, garbage-collecting
    /// temp files orphaned by crashed workers (older than a minute — a
    /// live writer holds its temp for milliseconds, never that long).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = ResultStore { dir };
        let _ = store.gc_orphan_tmps(ORPHAN_TMP_MAX_AGE);
        Ok(store)
    }

    /// Removes `*.tmp` files older than `max_age`, returning how many
    /// were collected. Races with concurrent removers are benign (a
    /// missing file is already collected).
    pub fn gc_orphan_tmps(&self, max_age: Duration) -> io::Result<usize> {
        let mut collected = 0;
        for entry in std::fs::read_dir(&self.dir)?.flatten() {
            let path = entry.path();
            if !path.extension().is_some_and(|x| x == "tmp") {
                continue;
            }
            let old_enough = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| mtime.elapsed().ok())
                .is_some_and(|age| age >= max_age);
            if old_enough && std::fs::remove_file(&path).is_ok() {
                collected += 1;
            }
        }
        Ok(collected)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of a `(canonical spec text, master seed)`
    /// pair: 16 hex digits of FNV-1a 64.
    pub fn key(spec_text: &str, master_seed: u64) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut absorb = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        absorb(spec_text.as_bytes());
        absorb(&master_seed.to_le_bytes());
        format!("{h:016x}")
    }

    /// The file path a key maps to.
    pub fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.run"))
    }

    /// Loads the stored run for a spec, verifying the slot really holds
    /// this `(spec text, master seed)` pair (collisions and corrupt
    /// files degrade to a miss, i.e. a recompute).
    pub fn load(&self, spec_text: &str, master_seed: u64) -> Option<StoredRun> {
        let path = self.path_of(&Self::key(spec_text, master_seed));
        let text = std::fs::read_to_string(path).ok()?;
        let run = StoredRun::parse(&text).ok()?;
        (run.spec_text == spec_text && run.master_seed == master_seed).then_some(run)
    }

    /// Persists a completed run under its content address. The write goes
    /// through a temporary file + rename, so a killed sweep never leaves
    /// a half-written slot that a resume would half-trust. The temp name
    /// is unique per process × save (pid + sequence), so two workers
    /// writing the same key concurrently never collide on the temp file
    /// — last rename wins, and both renames carry identical bytes.
    pub fn save(&self, run: &StoredRun) -> io::Result<PathBuf> {
        let key = Self::key(&run.spec_text, run.master_seed);
        let path = self.path_of(&key);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{key}.{}-{seq}.tmp", std::process::id()));
        std::fs::write(&tmp, run.render())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// The keys of every completed cell currently stored (stems of the
    /// `*.run` files), in directory order.
    pub fn keys(&self) -> Vec<String> {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
                    .filter_map(|e| {
                        e.path()
                            .file_stem()
                            .map(|s| s.to_string_lossy().into_owned())
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of completed cells currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when no cells are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("mtnet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("temp store")
    }

    fn sample_run() -> StoredRun {
        let spec = ScenarioSpec::commute_corridor()
            .with_duration_s(10.0)
            .with_seed_path("store-test", "arm", 1);
        let report = spec.run(42);
        StoredRun::from_report("arm rep=1", &spec, 42, &report)
    }

    #[test]
    fn stored_run_roundtrips() {
        let run = sample_run();
        let back = StoredRun::parse(&run.render()).expect("parse back");
        assert_eq!(back, run);
        // The float metrics are bit-exact across the round trip.
        let loss = run.metric("loss_rate").unwrap().as_f64();
        assert_eq!(
            back.metric("loss_rate").unwrap().as_f64().to_bits(),
            loss.to_bits()
        );
    }

    #[test]
    fn store_load_verifies_content() {
        let store = tmp_store("verify");
        let run = sample_run();
        store.save(&run).expect("save");
        assert_eq!(store.len(), 1);
        let hit = store.load(&run.spec_text, 42).expect("hit");
        assert_eq!(hit, run);
        // Same key file, different master seed: must miss.
        assert!(store.load(&run.spec_text, 43).is_none());
        // Different spec text: must miss.
        assert!(store.load("mtnet-spec v1\n", 42).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keys_are_stable_and_content_sensitive() {
        let a = ResultStore::key("text", 1);
        assert_eq!(a, ResultStore::key("text", 1));
        assert_ne!(a, ResultStore::key("text", 2));
        assert_ne!(a, ResultStore::key("other", 1));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn concurrent_saves_of_one_key_never_collide_on_temp_files() {
        // Regression: the temp name used to be the fixed `{key}.tmp`, so
        // two workers saving the same key raced write-vs-rename and one
        // save failed with NotFound. Unique temp names make every save
        // succeed and leave a valid slot.
        let store = tmp_store("tmp-collision");
        let run = sample_run();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (store, run) = (&store, &run);
                s.spawn(move || {
                    for _ in 0..25 {
                        store.save(run).expect("concurrent save");
                    }
                });
            }
        });
        let hit = store.load(&run.spec_text, 42).expect("slot valid");
        assert_eq!(hit, run);
        // No temp debris survives the racing saves.
        let tmps = std::fs::read_dir(store.dir())
            .expect("read dir")
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count();
        assert_eq!(tmps, 0, "every temp file must be renamed away");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn orphaned_tmp_files_are_garbage_collected_by_age() {
        let store = tmp_store("gc");
        let orphan = store.dir().join("deadbeef01234567.999-0.tmp");
        let keeper = store.dir().join("feedface01234567.run");
        std::fs::write(&orphan, "half-written").expect("plant orphan");
        std::fs::write(&keeper, "not a tmp").expect("plant run");
        // Too young to collect under the startup age guard…
        assert_eq!(
            store.gc_orphan_tmps(ORPHAN_TMP_MAX_AGE).expect("gc"),
            0,
            "a fresh temp may belong to a live writer"
        );
        assert!(orphan.exists());
        // …but an explicit zero-age sweep (what a crashed worker's
        // minute-old debris looks like) removes it, and only it.
        assert_eq!(store.gc_orphan_tmps(Duration::ZERO).expect("gc"), 1);
        assert!(!orphan.exists());
        assert!(keeper.exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keys_lists_run_stems() {
        let store = tmp_store("keys");
        assert!(store.keys().is_empty());
        let run = sample_run();
        store.save(&run).expect("save");
        let key = ResultStore::key(&run.spec_text, 42);
        assert_eq!(store.keys(), vec![key]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_slot_degrades_to_miss() {
        let store = tmp_store("corrupt");
        let run = sample_run();
        let path = store.save(&run).expect("save");
        std::fs::write(&path, "garbage").expect("corrupt");
        assert!(store.load(&run.spec_text, 42).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
