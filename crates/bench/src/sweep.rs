//! The parameter-sweep engine: grid/list expansion of scenario-spec axes
//! fanned through the parallel batch runner, backed by the resumable
//! [`crate::store::ResultStore`].
//!
//! A sweep is a base [`ScenarioSpec`] (a named family or a parsed spec
//! file) plus a list of **axes** — `key=v1,v2,…` assignments over any
//! key the spec text format names (see `ScenarioSpec::set`). Cells are
//! the Cartesian product of the axes times the replication count; each
//! cell's seed is derived from the `["sweep", family, assignments]` path
//! (`mtnet_sim::rng::seed_for_path`), so a cell's random numbers depend
//! only on its own coordinates — never on which other cells the sweep
//! happens to contain, which is what makes grid *extension* resumable:
//! old cells keep their store slots, new cells compute fresh.
//!
//! Numeric axes support range syntax `lo..hi..step` (inclusive ends,
//! integer steps), e.g. `domains=1..4..1`.

use crate::store::{MetricValue, ResultStore, StoredRun};
use crate::Effort;
use mtnet_core::spec::{ScenarioSpec, SeedSpec};
use mtnet_metrics::Table;
use mtnet_sim::runner::BatchRunner;

/// One sweep axis: a spec key and the values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// A key of the spec text format (`arch`, `domains`, …).
    pub key: String,
    /// The values the axis enumerates, in order.
    pub values: Vec<String>,
}

/// Parses an `--axis` argument: `key=v1,v2,…` or `key=lo..hi..step`.
pub fn parse_axis(arg: &str) -> Result<Axis, String> {
    let (key, values) = arg
        .split_once('=')
        .ok_or_else(|| format!("axis {arg:?} is not key=v1,v2,…"))?;
    let key = key.trim();
    if key.is_empty() {
        return Err(format!("axis {arg:?} has an empty key"));
    }
    let values = values.trim();
    let expanded: Vec<String> = if let Some((lo, rest)) = values.split_once("..") {
        // Range syntax lo..hi..step over integers, both ends inclusive.
        let (hi, step) = rest.split_once("..").unwrap_or((rest, "1"));
        let parse = |s: &str, what| {
            s.trim()
                .parse::<i64>()
                .map_err(|_| format!("axis {arg:?}: {what} {s:?} is not an integer"))
        };
        let (lo, hi, step) = (parse(lo, "start")?, parse(hi, "end")?, parse(step, "step")?);
        if step <= 0 {
            return Err(format!("axis {arg:?}: step must be positive"));
        }
        (lo..=hi)
            .step_by(step as usize)
            .map(|v| v.to_string())
            .collect()
    } else {
        values
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect()
    };
    if expanded.is_empty() {
        return Err(format!("axis {arg:?} has no values"));
    }
    Ok(Axis {
        key: key.to_string(),
        values: expanded,
    })
}

/// A fully-described sweep: base spec, axes, replication count, effort.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Family name (labels, seed paths, summary lines).
    pub family: String,
    /// The spec every cell starts from. Its `duration_s` is scaled by
    /// [`SweepPlan::effort`] after axis assignment.
    pub base: ScenarioSpec,
    /// Grid axes; empty means a single cell (the base itself).
    pub axes: Vec<Axis>,
    /// Independent replications per grid point (≥ 1).
    pub replications: u64,
    /// Duration scaling applied to every cell.
    pub effort: Effort,
}

/// One expanded cell: the axis assignments and the ready-to-run spec.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// `key=value` assignments in axis order.
    pub assignments: Vec<(String, String)>,
    /// Replication index.
    pub replication: u64,
    /// Display / store label: assignments plus `rep=n`.
    pub label: String,
    /// The cell's spec (assignments applied, duration scaled, sweep seed
    /// path installed).
    pub spec: ScenarioSpec,
}

impl SweepPlan {
    /// Expands the Cartesian product of the axes times the replication
    /// count, in axis-major order (later axes vary fastest, replications
    /// innermost).
    pub fn cells(&self) -> Result<Vec<SweepCell>, String> {
        if self.replications == 0 {
            return Err("replications must be >= 1".into());
        }
        let mut grid: Vec<Vec<(String, String)>> = vec![Vec::new()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(grid.len() * axis.values.len());
            for prefix in &grid {
                for value in &axis.values {
                    let mut assignments = prefix.clone();
                    assignments.push((axis.key.clone(), value.clone()));
                    next.push(assignments);
                }
            }
            grid = next;
        }
        for axis in &self.axes {
            // A seed axis would be silently overwritten by the sweep's own
            // path derivation below — reject it loudly instead of running
            // cells whose labels claim seeds they never used.
            if axis.key == "seed" {
                return Err(
                    "\"seed\" cannot be a sweep axis: cell seeds derive from the \
                            [sweep, family, assignments] path (vary --seed or --reps instead)"
                        .into(),
                );
            }
        }
        let mut cells = Vec::with_capacity(grid.len() * self.replications as usize);
        for assignments in grid {
            let point_label = if assignments.is_empty() {
                "base".to_string()
            } else {
                assignments
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            for rep in 0..self.replications {
                let mut spec = self.base.clone();
                for (key, value) in &assignments {
                    spec.set(key, value)
                        .map_err(|e| format!("cell {point_label}: {e}"))?;
                }
                spec.duration_s = self.effort.secs(spec.duration_s);
                // The seed path names only the cell's own coordinates, so
                // extending the grid or adding replications never reseeds
                // existing cells.
                spec.seed = SeedSpec::Path {
                    path: vec!["sweep".into(), self.family.clone(), point_label.clone()],
                    replication: rep,
                };
                spec.validate()
                    .map_err(|e| format!("cell {point_label}: {e}"))?;
                cells.push(SweepCell {
                    assignments: assignments.clone(),
                    replication: rep,
                    label: format!("{point_label} rep={rep}"),
                    spec,
                });
            }
        }
        Ok(cells)
    }
}

/// What a sweep produced: the rendered table plus cache accounting.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One row per cell, axis columns then metrics.
    pub table: Table,
    /// Total cells in the expansion.
    pub cells: usize,
    /// Cells actually simulated this invocation.
    pub computed: usize,
    /// Cells answered from the result store.
    pub loaded: usize,
    /// Per-cell stored runs, in cell order (fresh and loaded alike).
    pub runs: Vec<StoredRun>,
}

impl SweepOutcome {
    /// The one-line summary the CLI prints and CI greps:
    /// `sweep "<family>": N cells: computed X, loaded Y`.
    pub fn summary(&self, family: &str) -> String {
        format!(
            "sweep \"{family}\": {} cells: computed {}, loaded {}",
            self.cells, self.computed, self.loaded
        )
    }
}

fn fmt_metric(run: &StoredRun, name: &str) -> String {
    match run.metric(name) {
        Some(MetricValue::U(v)) => v.to_string(),
        Some(MetricValue::F(v)) if name == "loss_rate" => format!("{:.3}%", v * 100.0),
        Some(MetricValue::F(v)) => format!("{v:.1}"),
        None => "-".into(),
    }
}

/// The metric columns every sweep table carries.
const TABLE_METRICS: [&str; 8] = [
    "loss_rate",
    "mean_delay_ms",
    "p95_delay_ms",
    "handoffs",
    "rejected",
    "outage_samples",
    "signaling_msgs",
    "events",
];

/// Runs a sweep: expands the plan, answers cells from the store where
/// possible, simulates the rest through `runner` (in cell order), saves
/// fresh results, and renders one table row per cell.
pub fn run_sweep(
    plan: &SweepPlan,
    master_seed: u64,
    store: Option<&ResultStore>,
    runner: &BatchRunner,
) -> Result<SweepOutcome, String> {
    let cells = plan.cells()?;
    // Resolve each cell against the store first…
    let mut slots: Vec<Option<StoredRun>> = cells
        .iter()
        .map(|cell| store.and_then(|s| s.load(&cell.spec.render(), master_seed)))
        .collect();
    let loaded = slots.iter().filter(|s| s.is_some()).count();
    // …then fan the misses through the worker pool in one batch.
    let missing: Vec<usize> = (0..cells.len()).filter(|&i| slots[i].is_none()).collect();
    let jobs: Vec<ScenarioSpec> = missing.iter().map(|&i| cells[i].spec.clone()).collect();
    let reports = runner.run(jobs, move |_, spec| {
        let report = spec.run(master_seed);
        (spec, report)
    });
    for (&i, (spec, report)) in missing.iter().zip(reports) {
        let run = StoredRun::from_report(&cells[i].label, &spec, master_seed, &report);
        if let Some(s) = store {
            s.save(&run).map_err(|e| format!("store write: {e}"))?;
        }
        slots[i] = Some(run);
    }
    // Render: axis key columns (+ rep), then the metric columns.
    let mut header: Vec<String> = plan.axes.iter().map(|a| a.key.clone()).collect();
    if header.is_empty() {
        header.push("cell".into());
    }
    header.push("rep".into());
    header.extend(TABLE_METRICS.iter().map(|m| m.to_string()));
    let mut table = Table::new(header);
    for (cell, slot) in cells.iter().zip(&slots) {
        let run = slot.as_ref().expect("every cell resolved");
        let mut row: Vec<String> = if cell.assignments.is_empty() {
            vec!["base".into()]
        } else {
            cell.assignments.iter().map(|(_, v)| v.clone()).collect()
        };
        row.push(cell.replication.to_string());
        row.extend(TABLE_METRICS.iter().map(|m| fmt_metric(run, m)));
        table.row(row);
    }
    Ok(SweepOutcome {
        cells: cells.len(),
        computed: missing.len(),
        loaded,
        runs: slots.into_iter().flatten().collect(),
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_list_and_range_parse() {
        let a = parse_axis("arch=multi-tier+rsmc, flat-cellular-ip").unwrap();
        assert_eq!(a.key, "arch");
        assert_eq!(a.values, vec!["multi-tier+rsmc", "flat-cellular-ip"]);
        let r = parse_axis("domains=1..4..1").unwrap();
        assert_eq!(r.values, vec!["1", "2", "3", "4"]);
        let s = parse_axis("route_update_ms=500..2500..1000").unwrap();
        assert_eq!(s.values, vec!["500", "1500", "2500"]);
        assert!(parse_axis("noequals").is_err());
        assert!(parse_axis("x=").is_err());
        assert!(parse_axis("x=1..5..0").is_err());
    }

    #[test]
    fn cells_expand_the_grid_with_stable_seeds() {
        let plan = SweepPlan {
            family: "dense-urban".into(),
            base: ScenarioSpec::dense_urban(),
            axes: vec![
                parse_axis("arch=multi-tier+rsmc,flat-cellular-ip").unwrap(),
                parse_axis("domains=1,2").unwrap(),
            ],
            replications: 2,
            effort: Effort::Quick,
        };
        let cells = plan.cells().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Later axes vary fastest, replications innermost.
        assert_eq!(cells[0].label, "arch=multi-tier+rsmc,domains=1 rep=0");
        assert_eq!(cells[1].label, "arch=multi-tier+rsmc,domains=1 rep=1");
        assert_eq!(cells[2].label, "arch=multi-tier+rsmc,domains=2 rep=0");
        // Effort scaled the family's 300 s to the quick 30 s.
        assert_eq!(cells[0].spec.duration_s, 30.0);
        // A cell's seed is a function of its own coordinates only: the
        // same cell inside a *larger* plan resolves identically.
        let bigger = SweepPlan {
            replications: 3,
            ..plan.clone()
        };
        let again = bigger.cells().unwrap();
        assert_eq!(
            cells[0].spec.resolve_seed(42),
            again[0].spec.resolve_seed(42)
        );
        // …and distinct cells get distinct seeds.
        let seeds: std::collections::HashSet<u64> =
            cells.iter().map(|c| c.spec.resolve_seed(42)).collect();
        assert_eq!(seeds.len(), cells.len());
    }

    #[test]
    fn seed_axis_is_rejected() {
        let plan = SweepPlan {
            family: "x".into(),
            base: ScenarioSpec::small_city(),
            axes: vec![parse_axis("seed=raw 1,raw 2").unwrap()],
            replications: 1,
            effort: Effort::Quick,
        };
        let err = plan.cells().unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn bad_axis_key_is_a_cell_error() {
        let plan = SweepPlan {
            family: "x".into(),
            base: ScenarioSpec::small_city(),
            axes: vec![parse_axis("warp=1,2").unwrap()],
            replications: 1,
            effort: Effort::Quick,
        };
        let err = plan.cells().unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }
}
