//! Per-run peak-RSS measurement for the BENCH.json memory column.
//!
//! Linux tracks a process's resident-set high-water mark (`VmHWM` in
//! `/proc/self/status`) and lets the process reset it by writing `5` to
//! `/proc/self/clear_refs`. Resetting before a run and reading after
//! yields that run's peak — the honest "did this fit in RAM" number the
//! metro tier is sized by, without wrapping runs in a separate process.
//!
//! Both calls degrade gracefully: on platforms without these files
//! [`reset_peak`] is a no-op and [`peak_bytes`] returns `None`, and rows
//! simply elide their memory column.

/// Resets the kernel's peak-RSS watermark to the current RSS. Call
/// immediately before the measured region.
pub fn reset_peak() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak RSS in bytes since the last [`reset_peak`] (or process start),
/// or `None` where unavailable.
///
/// The value is an upper bound on the measured region's own footprint:
/// pages an earlier region allocated and the allocator retained still
/// count. With regions measured largest-last, or compared release to
/// release under a tolerance, the bound is tight enough to gate on.
pub fn peak_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The watermark is process-global and the test harness runs tests on
    /// parallel threads, so the two tests below must not interleave their
    /// reset/allocate/read sequences.
    static WATERMARK: Mutex<()> = Mutex::new(());

    #[test]
    fn peak_tracks_a_large_allocation() {
        let _guard = WATERMARK.lock().unwrap();
        // Unrelated test threads sharing this process can still shift RSS
        // (a concurrent munmap between our two reads shrinks the observed
        // delta), so tolerate a few noisy attempts before failing.
        let mut last = None;
        for _ in 0..3 {
            reset_peak();
            let before = peak_bytes();
            // 64 MiB, touched so the pages are actually resident.
            let block = vec![7u8; 64 << 20];
            std::hint::black_box(&block);
            let after = peak_bytes();
            let (Some(b), Some(a)) = (before, after) else {
                return; // non-Linux: nothing to assert
            };
            if a >= b + (48 << 20) {
                return;
            }
            last = Some((b, a));
        }
        let (b, a) = last.unwrap();
        panic!("peak should grow by roughly the allocation: before {b}, after {a}");
    }

    #[test]
    fn reset_rebases_the_watermark_to_current_rss() {
        let _guard = WATERMARK.lock().unwrap();
        let peak_with_block = {
            let block = vec![7u8; 64 << 20];
            std::hint::black_box(&block);
            peak_bytes()
        };
        reset_peak();
        if let (Some(high), Some(rebased)) = (peak_with_block, peak_bytes()) {
            assert!(
                rebased <= high,
                "reset must not raise the watermark: {rebased} > {high}"
            );
        }
    }
}
