//! Determinism and resume contracts of the sweep engine's result store.
//!
//! * A sweep cell answered **via the store** is indistinguishable from a
//!   direct run of the same spec: bit-exact fingerprint, bit-exact
//!   metrics, byte-identical table rendering.
//! * Re-invoking a sweep recomputes **only missing cells** — a full
//!   rerun computes zero, deleting one slot recomputes exactly one, and
//!   extending the grid computes exactly the new cells (asserted by
//!   counting store hits).

use mtnet_bench::store::{extract_metrics, ResultStore};
use mtnet_bench::sweep::{parse_axis, run_sweep, SweepPlan};
use mtnet_bench::Effort;
use mtnet_core::spec::ScenarioSpec;
use mtnet_sim::runner::BatchRunner;
use std::path::PathBuf;

/// A fresh per-test store directory under the system temp dir.
struct TempStore {
    dir: PathBuf,
    store: ResultStore,
}

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let dir =
            std::env::temp_dir().join(format!("mtnet-sweep-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempStore {
            store: ResultStore::open(&dir).expect("temp store"),
            dir,
        }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn small_plan() -> SweepPlan {
    SweepPlan {
        family: "commute-corridor".into(),
        base: ScenarioSpec::commute_corridor().with_duration_s(120.0),
        axes: vec![
            parse_axis("arch=multi-tier+rsmc,pure-mobile-ip").unwrap(),
            parse_axis("vehicles=1,2").unwrap(),
        ],
        replications: 1,
        effort: Effort::Quick,
    }
}

#[test]
fn sweep_cell_via_store_equals_direct_run() {
    let tmp = TempStore::new("equals-direct");
    let runner = BatchRunner::new(1);
    let plan = small_plan();
    let first = run_sweep(&plan, 42, Some(&tmp.store), &runner).expect("first run");
    assert_eq!((first.computed, first.loaded), (4, 0));
    // Second invocation answers entirely from the store…
    let second = run_sweep(&plan, 42, Some(&tmp.store), &runner).expect("second run");
    assert_eq!((second.computed, second.loaded), (0, 4));
    // …and a storeless (direct) run of the same plan produces the same
    // fingerprints, metrics and rendered table, byte for byte.
    let direct = run_sweep(&plan, 42, None, &runner).expect("direct run");
    assert_eq!((direct.computed, direct.loaded), (4, 0));
    assert_eq!(second.table.to_string(), direct.table.to_string());
    for (loaded, fresh) in second.runs.iter().zip(&direct.runs) {
        assert_eq!(loaded.fingerprint, fresh.fingerprint, "{}", loaded.label);
        assert_eq!(loaded.metrics, fresh.metrics, "{}", loaded.label);
        assert_eq!(loaded.seed, fresh.seed);
    }
    // Cross-check one cell against a by-hand run outside the engine.
    let cell = &plan.cells().expect("cells")[0];
    let report = cell.spec.run(42);
    assert_eq!(second.runs[0].fingerprint, report.fingerprint());
    let by_hand: Vec<_> = extract_metrics(&report)
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    assert_eq!(second.runs[0].metrics, by_hand);
}

#[test]
fn interrupted_and_extended_sweeps_recompute_only_missing_cells() {
    let tmp = TempStore::new("resume");
    let runner = BatchRunner::new(1);
    let plan = small_plan();
    let first = run_sweep(&plan, 42, Some(&tmp.store), &runner).expect("first");
    assert_eq!((first.cells, first.computed, first.loaded), (4, 4, 0));
    assert_eq!(tmp.store.len(), 4);

    // Simulate a kill mid-sweep: one completed slot vanishes.
    let victim = std::fs::read_dir(tmp.store.dir())
        .expect("read store")
        .flatten()
        .find(|e| e.path().extension().is_some_and(|x| x == "run"))
        .expect("a stored cell");
    std::fs::remove_file(victim.path()).expect("delete slot");
    let resumed = run_sweep(&plan, 42, Some(&tmp.store), &runner).expect("resume");
    assert_eq!(
        (resumed.computed, resumed.loaded),
        (1, 3),
        "resume must recompute exactly the missing cell"
    );
    // The recomputed table is identical to the original.
    assert_eq!(resumed.table.to_string(), first.table.to_string());

    // Extending the grid (a third axis value + a second replication)
    // reuses every existing cell: 4 stored, 12 total, 8 fresh.
    let extended = SweepPlan {
        axes: vec![
            parse_axis("arch=multi-tier+rsmc,pure-mobile-ip,flat-cellular-ip").unwrap(),
            parse_axis("vehicles=1,2").unwrap(),
        ],
        replications: 2,
        ..plan.clone()
    };
    let bigger = run_sweep(&extended, 42, Some(&tmp.store), &runner).expect("extend");
    assert_eq!(
        (bigger.cells, bigger.computed, bigger.loaded),
        (12, 8, 4),
        "grid extension must only compute the new cells"
    );

    // A different master seed shares nothing.
    let other = run_sweep(&plan, 7, Some(&tmp.store), &runner).expect("other seed");
    assert_eq!((other.computed, other.loaded), (4, 0));
}

#[test]
fn sweep_results_are_thread_count_independent() {
    let plan = small_plan();
    let seq = run_sweep(&plan, 42, None, &BatchRunner::new(1)).expect("sequential");
    let par = run_sweep(&plan, 42, None, &BatchRunner::new(4)).expect("parallel");
    assert_eq!(seq.table.to_string(), par.table.to_string());
    for (a, b) in seq.runs.iter().zip(&par.runs) {
        assert_eq!(a.fingerprint, b.fingerprint, "{}", a.label);
    }
}
