//! Kill-torture of the multi-worker sweep coordinator, driving the real
//! `sweep` binary as a fleet of OS processes.
//!
//! * **SIGKILL torture** — several workers drain one grid while one of
//!   them is SIGKILLed mid-run, repeatedly. The grid must still
//!   complete, every stored cell must be bit-identical to a
//!   single-process engine run, no cell may be saved by two workers
//!   (mutual exclusion), and completed cells must never be recomputed
//!   by later passes (exactly-once, asserted via slot mtimes and the
//!   fleet's `computed 0, loaded N` resume line).
//! * **Quarantine torture** — a deliberately poisoned cell (the
//!   `MTNET_SWEEP_KILL_CELL` hook aborts whichever worker claims it)
//!   kills worker after worker until the reclaim budget is spent; the
//!   cell must be quarantined, the rest of the grid must complete, and
//!   lifting the quarantine must heal the grid to bytes identical to a
//!   never-crashed run.
//!
//! Cells use a long-duration spec (written to a temp `.mtspec`) so a
//! timed SIGKILL reliably lands mid-compute.

use mtnet_bench::store::ResultStore;
use mtnet_bench::sweep::{parse_axis, run_sweep, SweepPlan};
use mtnet_bench::Effort;
use mtnet_core::spec::ScenarioSpec;
use mtnet_sim::runner::BatchRunner;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, SystemTime};

/// Simulated seconds of the torture spec: long enough (at Quick effort,
/// a tenth of this) that one cell takes a sizable fraction of a second
/// of wall time in debug builds, so timed kills land mid-compute.
const TORTURE_DURATION_S: f64 = 6000.0;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("mtnet-torture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn torture_spec() -> ScenarioSpec {
    ScenarioSpec::commute_corridor().with_duration_s(TORTURE_DURATION_S)
}

fn torture_plan() -> SweepPlan {
    SweepPlan {
        family: "commute-corridor".into(),
        base: torture_spec(),
        axes: vec![
            parse_axis("arch=multi-tier+rsmc,pure-mobile-ip").unwrap(),
            parse_axis("vehicles=1,2").unwrap(),
        ],
        replications: 1,
        effort: Effort::Quick,
    }
}

/// Writes the torture spec to `<dir>/torture.mtspec` for the binary.
fn write_spec_file(dir: &Path) -> PathBuf {
    let path = dir.join("torture.mtspec");
    std::fs::write(&path, torture_spec().render()).expect("write spec file");
    path
}

/// A `sweep` binary invocation over the torture grid and a store.
fn sweep_cmd(spec_file: &Path, store: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    cmd.args(["--spec", &spec_file.to_string_lossy()])
        .args(["--axis", "arch=multi-tier+rsmc,pure-mobile-ip"])
        .args(["--axis", "vehicles=1,2"])
        .args(["--reps", "1", "--seed", "42", "--effort", "quick"])
        .args(["--store", &store.to_string_lossy()]);
    cmd
}

/// Byte content of every `.run` slot, keyed by file name, sorted.
fn store_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read store dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read slot"),
            )
        })
        .collect();
    out.sort();
    out
}

/// Modification times of every `.run` slot, keyed by file name.
fn store_mtimes(dir: &Path) -> HashMap<String, SystemTime> {
    std::fs::read_dir(dir)
        .expect("read store dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                e.metadata().and_then(|m| m.modified()).expect("mtime"),
            )
        })
        .collect()
}

/// The single-process reference: the same grid through the sweep engine.
fn reference_store(tag: &str) -> TempDir {
    let dir = TempDir::new(tag);
    let store = ResultStore::open(dir.path()).expect("open ref store");
    let outcome =
        run_sweep(&torture_plan(), 42, Some(&store), &BatchRunner::new(1)).expect("engine run");
    assert_eq!(outcome.computed, 4);
    dir
}

/// `worker <id>: saved <key> …` lines from one worker's stdout.
fn saved_keys(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter_map(|l| {
            let rest = l.split(" saved ").nth(1)?;
            Some(rest.split_whitespace().next()?.to_string())
        })
        .collect()
}

#[test]
fn sigkill_torture_completes_the_grid_bit_identical_and_exactly_once() {
    let reference = reference_store("sigkill-ref");
    let work = TempDir::new("sigkill");
    let spec_file = write_spec_file(work.path());
    let store_dir = work.path().join("store");

    // One fleet of 3 workers; two of them are SIGKILLed at staggered
    // offsets while the grid is still incomplete. (A kill landing
    // between cells is equally legal — the invariants below must hold
    // wherever it lands.) The last worker must reclaim every abandoned
    // cell and finish the grid alone.
    let mut all_stdout: Vec<String> = Vec::new();
    let mut children: Vec<_> = (0..3)
        .map(|i| {
            sweep_cmd(&spec_file, &store_dir)
                .args(["--worker-id", &format!("w{i}")])
                .args(["--lease-timeout-ms", "1200"])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    all_stdout.push(kill_and_collect(children.swap_remove(0)));
    std::thread::sleep(Duration::from_millis(300));
    all_stdout.push(kill_and_collect(children.swap_remove(0)));
    let survivor = children.pop().expect("one survivor");
    let out = survivor.wait_with_output().expect("wait survivor");
    assert!(
        out.status.success(),
        "surviving worker failed: status {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    all_stdout.push(String::from_utf8_lossy(&out.stdout).into_owned());
    assert_eq!(
        store_bytes(&store_dir).len(),
        4,
        "grid must be complete once the survivor exits"
    );

    // Bit-identical to the single-process engine run.
    assert_eq!(
        store_bytes(&store_dir),
        store_bytes(reference.path()),
        "multi-worker + SIGKILL must reproduce the sequential bytes exactly"
    );

    // Mutual exclusion: no cell saved by two workers. (The SIGKILLed
    // workers' buffered stdout may be lost, so some saves are silent —
    // but a *duplicate* save would have to appear in two transcripts.)
    let mut seen: HashMap<String, usize> = HashMap::new();
    for stdout in &all_stdout {
        for key in saved_keys(stdout) {
            *seen.entry(key).or_default() += 1;
        }
    }
    for (key, count) in &seen {
        assert_eq!(*count, 1, "cell {key} saved {count} times across the fleet");
    }
    assert!(
        seen.len() >= 2,
        "at most one save line may be lost per kill"
    );

    // Exactly-once resume: a full fleet pass over the finished grid
    // recomputes nothing (summary line) and rewrites nothing (mtimes).
    let before = store_mtimes(&store_dir);
    let fleet = sweep_cmd(&spec_file, &store_dir)
        .args(["--workers", "3", "--lease-timeout-ms", "1200"])
        .output()
        .expect("fleet pass");
    assert!(
        fleet.status.success(),
        "fleet stderr: {}",
        String::from_utf8_lossy(&fleet.stderr)
    );
    let stdout = String::from_utf8_lossy(&fleet.stdout);
    assert!(
        stdout.contains("4 cells: computed 0, loaded 4, quarantined 0, missing 0"),
        "fleet resume summary wrong:\n{stdout}"
    );
    assert_eq!(
        store_mtimes(&store_dir),
        before,
        "a resumed fleet must not rewrite completed slots"
    );
}

/// SIGKILLs a worker and returns whatever stdout it managed to flush.
fn kill_and_collect(mut child: std::process::Child) -> String {
    let _ = child.kill();
    let out = child.wait_with_output().expect("collect killed worker");
    assert!(
        !out.status.success(),
        "the killed worker cannot have exited cleanly"
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn poisoned_cell_is_quarantined_then_heals_to_identical_bytes() {
    let reference = reference_store("poison-ref");
    let work = TempDir::new("poison");
    let spec_file = write_spec_file(work.path());
    let store_dir = work.path().join("store");
    // The hook matches this cell's label substring; every worker that
    // claims it aborts, so each respawn burns one reclaim.
    let poisoned_label = "arch=pure-mobile-ip,vehicles=2";
    let poisoned_key = {
        let cells = torture_plan().cells().expect("cells");
        let cell = cells
            .iter()
            .find(|c| c.label.contains(poisoned_label))
            .expect("poisoned cell in grid");
        ResultStore::key(&cell.spec.render(), 42)
    };

    // Respawn single workers until the quarantine resolves the grid:
    // claim+abort (reclaims=0) → reclaim+abort (1) → reclaim > budget →
    // quarantine + drain rest, exit 3.
    let mut last_code = None;
    for attempt in 0..8 {
        let out = sweep_cmd(&spec_file, &store_dir)
            .args(["--worker-id", &format!("p{attempt}")])
            .args(["--lease-timeout-ms", "400", "--max-reclaims", "1"])
            .env("MTNET_SWEEP_KILL_CELL", poisoned_label)
            .output()
            .expect("spawn worker");
        last_code = out.status.code();
        if last_code == Some(3) {
            break;
        }
        assert!(
            !out.status.success(),
            "worker must crash while the cell is claimable: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        // Let the aborted worker's lease go stale before the respawn.
        std::thread::sleep(Duration::from_millis(700));
    }
    assert_eq!(
        last_code,
        Some(3),
        "the fleet must converge to quarantine (exit 3)"
    );
    let poison_file = store_dir.join(format!("{poisoned_key}.poison"));
    let poison_text = std::fs::read_to_string(&poison_file).expect("poison record");
    assert!(
        poison_text.contains("failures = 2"),
        "max_reclaims=1 quarantines on the second reclaim:\n{poison_text}"
    );
    // Every other cell completed, bit-identical to the reference.
    let complete: Vec<_> = store_bytes(&store_dir);
    assert_eq!(complete.len(), 3);
    let ref_bytes = store_bytes(reference.path());
    for (name, bytes) in &complete {
        let reference_slot = ref_bytes
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unexpected slot {name}"));
        assert_eq!(bytes, &reference_slot.1, "{name} diverged");
    }

    // The report degrades gracefully — the poisoned point reports q1 —
    // but shares the fleet's exit contract: a degraded aggregate exits 3
    // and names the quarantined cell.
    let report = sweep_cmd(&spec_file, &store_dir)
        .arg("--report")
        .output()
        .expect("report");
    assert_eq!(report.status.code(), Some(3), "degraded report exits 3");
    let report_out = String::from_utf8_lossy(&report.stdout);
    assert!(report_out.contains("(q1)"), "{report_out}");
    assert!(report_out.contains("quarantined 1"), "{report_out}");
    assert!(
        report_out.contains(&format!("quarantined: ({poisoned_label}")),
        "the quarantined cell is named:\n{report_out}"
    );

    // Lifting the quarantine heals the grid: the once-poisoned cell is
    // reclaimed-then-completed, and the whole store matches a run that
    // never crashed.
    std::fs::remove_file(&poison_file).expect("lift quarantine");
    let healed = sweep_cmd(&spec_file, &store_dir)
        .args(["--workers", "2", "--lease-timeout-ms", "1200"])
        .output()
        .expect("healing fleet");
    assert!(
        healed.status.success(),
        "healing fleet stderr: {}",
        String::from_utf8_lossy(&healed.stderr)
    );
    let healed_out = String::from_utf8_lossy(&healed.stdout);
    assert!(
        healed_out.contains("4 cells: computed 1, loaded 3, quarantined 0, missing 0"),
        "healing must recompute exactly the quarantined cell:\n{healed_out}"
    );
    assert_eq!(store_bytes(&store_dir), ref_bytes);
}
