//! Property tests on the multi-worker coordinator's on-disk formats:
//! the lease and quarantine-record files must round-trip render→parse
//! exactly (they are the fleet's only shared state), and the staleness
//! predicate must behave monotonically around its boundary — reclaim
//! decisions made by different workers at different instants must never
//! disagree about an *earlier* instant.

use mtnet_bench::coord::{Lease, Poison};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lease_roundtrips_for_arbitrary_fields(
        owner in "[-a-zA-Z0-9@._]{1,24}",
        pid in 1u32..=u32::MAX,
        claimed in 0u64..=u64::MAX / 2,
        beat_delta in 0u64..=1_000_000,
        reclaims in 0u32..=1_000,
        label in "[-a-z0-9=,+. ]{0,40}",
    ) {
        // Labels are axis assignments: they contain `=`, `,`, spaces —
        // everything the line-oriented format must not trip over. The
        // format trims value whitespace, so edge spaces are normalized.
        let lease = Lease {
            owner,
            pid,
            claimed_ms: claimed,
            heartbeat_ms: claimed + beat_delta,
            reclaims,
            label: label.trim().to_string(),
        };
        let back = Lease::parse(&lease.render());
        prop_assert_eq!(back.as_ref(), Ok(&lease), "render:\n{}", lease.render());
    }

    #[test]
    fn poison_roundtrips_for_arbitrary_fields(
        failures in 1u32..=10_000,
        last_owner in "[-a-zA-Z0-9@._]{1,24}",
        label in "[-a-z0-9=,+. ]{0,40}",
        when in 0u64..=u64::MAX / 2,
    ) {
        let poison = Poison {
            failures,
            last_owner,
            label: label.trim().to_string(),
            quarantined_ms: when,
        };
        let back = Poison::parse(&poison.render());
        prop_assert_eq!(back.as_ref(), Ok(&poison), "render:\n{}", poison.render());
    }

    #[test]
    fn staleness_is_monotonic_in_time_and_tight_at_the_boundary(
        heartbeat in 0u64..=u64::MAX / 4,
        timeout in 1u64..=u64::MAX / 4,
        probe in 0u64..=u64::MAX / 2,
    ) {
        let lease = Lease {
            owner: "w".into(),
            pid: 1,
            claimed_ms: heartbeat,
            heartbeat_ms: heartbeat,
            reclaims: 0,
            label: String::new(),
        };
        // Exact boundary: live at heartbeat+timeout, stale one past it.
        prop_assert!(!lease.is_stale(heartbeat + timeout, timeout));
        prop_assert!(lease.is_stale(heartbeat + timeout + 1, timeout));
        // Monotonicity: once stale at t, stale at every t' >= t.
        if lease.is_stale(probe, timeout) {
            prop_assert!(lease.is_stale(probe.saturating_add(1), timeout));
            prop_assert!(lease.is_stale(probe.saturating_add(timeout), timeout));
        }
        // And never stale at or before the heartbeat itself (skew-safe).
        prop_assert!(!lease.is_stale(heartbeat, timeout));
        prop_assert!(!lease.is_stale(heartbeat.saturating_sub(timeout), timeout));
    }
}
