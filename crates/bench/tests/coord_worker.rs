//! In-process contracts of the multi-worker coordinator: a lease-
//! protocol worker drains a grid to the same bytes the single-process
//! sweep engine produces, peers' completed cells are loaded not
//! recomputed, quarantined cells degrade the grid instead of wedging
//! it, and — the crash-recovery regression — a cell reclaimed from a
//! dead worker's stale lease completes bit-identical to a cell that
//! never crashed.

use mtnet_bench::coord::{
    collect_grid, load_poison, poison_path, run_worker, CoordConfig, Coordinator, Lease, Poison,
};
use mtnet_bench::store::ResultStore;
use mtnet_bench::sweep::{parse_axis, run_sweep, SweepPlan};
use mtnet_bench::Effort;
use mtnet_core::spec::ScenarioSpec;
use mtnet_sim::runner::BatchRunner;
use std::collections::HashSet;
use std::path::PathBuf;

struct TempStore {
    dir: PathBuf,
    store: ResultStore,
}

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let dir = std::env::temp_dir().join(format!("mtnet-coordw-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempStore {
            store: ResultStore::open(&dir).expect("temp store"),
            dir,
        }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn small_plan() -> SweepPlan {
    SweepPlan {
        family: "commute-corridor".into(),
        base: ScenarioSpec::commute_corridor().with_duration_s(120.0),
        axes: vec![
            parse_axis("arch=multi-tier+rsmc,pure-mobile-ip").unwrap(),
            parse_axis("vehicles=1,2").unwrap(),
        ],
        replications: 1,
        effort: Effort::Quick,
    }
}

fn quick_cfg() -> CoordConfig {
    CoordConfig {
        lease_timeout_ms: 300,
        max_reclaims: 2,
        backoff_base_ms: 1,
    }
}

/// Byte content of every `.run` slot, keyed by file name.
fn store_bytes(store: &ResultStore) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(store.dir())
        .expect("read store dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read slot"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn one_worker_drains_the_grid_bit_identical_to_the_sweep_engine() {
    let reference = TempStore::new("ref");
    let plan = small_plan();
    let engine =
        run_sweep(&plan, 42, Some(&reference.store), &BatchRunner::new(1)).expect("engine sweep");
    assert_eq!(engine.computed, 4);

    let tmp = TempStore::new("worker");
    let outcome = run_worker(&plan, 42, &tmp.store, quick_cfg(), "solo@1").expect("worker");
    assert_eq!(
        (
            outcome.cells,
            outcome.computed,
            outcome.loaded,
            outcome.quarantined
        ),
        (4, 4, 0, 0)
    );
    assert_eq!(outcome.saved_keys.len(), 4);
    // Same slots, same bytes as the single-process engine — a lease-
    // protocol worker is an execution strategy, not a result change.
    assert_eq!(store_bytes(&tmp.store), store_bytes(&reference.store));
    // No lease or temp debris survives a clean drain.
    let debris = std::fs::read_dir(tmp.store.dir())
        .expect("read dir")
        .flatten()
        .filter(|e| !e.path().extension().is_some_and(|x| x == "run"))
        .count();
    assert_eq!(debris, 0, "leases and temp files must all be cleaned up");

    // A second worker over the finished grid loads everything.
    let again = run_worker(&plan, 42, &tmp.store, quick_cfg(), "late@2").expect("late worker");
    assert_eq!((again.computed, again.loaded), (0, 4));
}

#[test]
fn reclaimed_then_completed_cell_is_bit_identical_to_a_never_crashed_one() {
    // Reference: the grid computed with no crashes anywhere.
    let reference = TempStore::new("calm");
    let plan = small_plan();
    run_sweep(&plan, 42, Some(&reference.store), &BatchRunner::new(1)).expect("engine sweep");

    // Crash story: a worker claimed the first cell and died — its lease
    // sits there with a long-gone heartbeat. A live worker must steal
    // the cell (reclaim), recompute it, and produce the same bytes.
    let tmp = TempStore::new("crashed");
    let cells = plan.cells().expect("cells");
    let victim_key = ResultStore::key(&cells[0].spec.render(), 42);
    let coord = Coordinator::new(&tmp.store, "dead@9", quick_cfg());
    let abandoned = Lease {
        owner: "dead@9".into(),
        pid: 9,
        claimed_ms: 1,
        heartbeat_ms: 1,
        reclaims: 0,
        label: cells[0].label.clone(),
    };
    std::fs::write(coord.lease_path(&victim_key), abandoned.render()).expect("plant stale lease");

    let outcome = run_worker(&plan, 42, &tmp.store, quick_cfg(), "alive@1").expect("worker");
    assert_eq!((outcome.computed, outcome.quarantined), (4, 0));
    assert!(
        outcome.saved_keys.contains(&victim_key),
        "the reclaimed cell must be recomputed by the live worker"
    );
    assert_eq!(
        store_bytes(&tmp.store),
        store_bytes(&reference.store),
        "a reclaimed-then-completed cell must load bit-identical to a never-crashed one"
    );
    assert!(
        !coord.lease_path(&victim_key).exists(),
        "the stolen lease must be released after completion"
    );
}

#[test]
fn quarantined_cell_degrades_the_grid_instead_of_wedging_the_worker() {
    let tmp = TempStore::new("poison");
    let plan = small_plan();
    let cells = plan.cells().expect("cells");
    let poisoned_key = ResultStore::key(&cells[2].spec.render(), 42);
    let record = Poison {
        failures: 3,
        last_owner: "dead@7".into(),
        label: cells[2].label.clone(),
        quarantined_ms: 1,
    };
    std::fs::write(poison_path(tmp.store.dir(), &poisoned_key), record.render())
        .expect("plant poison");

    let outcome = run_worker(&plan, 42, &tmp.store, quick_cfg(), "w@1").expect("worker");
    assert_eq!(
        (
            outcome.cells,
            outcome.computed,
            outcome.loaded,
            outcome.quarantined
        ),
        (4, 3, 0, 1)
    );
    assert_eq!(
        load_poison(tmp.store.dir(), &poisoned_key).expect("record survives"),
        record
    );

    // The fleet-level view agrees: 3 computed, 1 quarantined, exit 3.
    let grid = collect_grid(&plan, 42, &tmp.store, &HashSet::new()).expect("collect");
    assert_eq!(
        (
            grid.cells,
            grid.computed,
            grid.loaded,
            grid.quarantined,
            grid.missing
        ),
        (4, 3, 0, 1, 0)
    );
    assert_eq!(grid.exit_code(), 3);
    let table = grid.table.to_string();
    assert!(table.contains("quarantined (3 failures)"), "{table}");

    // Removing the quarantine record makes the cell computable again —
    // and it completes identically to an engine run (graceful recovery).
    std::fs::remove_file(poison_path(tmp.store.dir(), &poisoned_key)).expect("lift quarantine");
    let healed = run_worker(&plan, 42, &tmp.store, quick_cfg(), "w@2").expect("healed worker");
    assert_eq!(
        (healed.computed, healed.loaded, healed.quarantined),
        (1, 3, 0)
    );
    let reference = TempStore::new("poison-ref");
    run_sweep(&plan, 42, Some(&reference.store), &BatchRunner::new(1)).expect("engine");
    assert_eq!(store_bytes(&tmp.store), store_bytes(&reference.store));
}

#[test]
fn collect_grid_accounts_preexisting_cells_as_loaded_and_gaps_as_missing() {
    let tmp = TempStore::new("accounting");
    let plan = small_plan();
    // Complete half the grid "before the fleet" (preexisting snapshot).
    let half = SweepPlan {
        axes: vec![
            parse_axis("arch=multi-tier+rsmc,pure-mobile-ip").unwrap(),
            parse_axis("vehicles=1").unwrap(),
        ],
        ..plan.clone()
    };
    run_sweep(&half, 42, Some(&tmp.store), &BatchRunner::new(1)).expect("preload");
    let preexisting: HashSet<String> = tmp.store.keys().into_iter().collect();
    assert_eq!(preexisting.len(), 2);
    // The fleet then computes one more cell, leaving one missing.
    let three_quarters = SweepPlan {
        axes: vec![
            parse_axis("arch=multi-tier+rsmc,pure-mobile-ip").unwrap(),
            parse_axis("vehicles=1,2").unwrap(),
        ],
        ..plan.clone()
    };
    let cells = three_quarters.cells().expect("cells");
    let worker_plan = SweepPlan {
        axes: vec![
            parse_axis("arch=multi-tier+rsmc").unwrap(),
            parse_axis("vehicles=1,2").unwrap(),
        ],
        ..plan.clone()
    };
    run_worker(&worker_plan, 42, &tmp.store, quick_cfg(), "w@1").expect("worker");
    let grid = collect_grid(&three_quarters, 42, &tmp.store, &preexisting).expect("collect");
    assert_eq!(grid.cells, cells.len());
    assert_eq!(
        (grid.computed, grid.loaded, grid.quarantined, grid.missing),
        (1, 2, 0, 1)
    );
    assert_eq!(grid.exit_code(), 1, "missing cells mean resume, exit 1");
    let summary = grid.summary("commute-corridor");
    assert!(
        summary.contains("computed 1, loaded 2, quarantined 0, missing 1"),
        "{summary}"
    );
}
