//! End-to-end hardening checks on the `sweep` binary's multi-worker
//! flags: malformed `--workers` / `--lease-timeout-ms` values must fail
//! loudly (exit 2, error naming the flag) on both parsing paths — the
//! command-line flag and the environment override it pins — and the
//! coordinated modes must reject incoherent combinations instead of
//! silently ignoring one side.

use std::process::Command;

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

/// A syntactically complete invocation that would simulate if parsing
/// succeeded; every test below corrupts exactly one knob. `--no-store`
/// keeps the happy path from ever touching a store directory, except in
/// the coordinated modes (which require a store and reject it).
const BASE: &[&str] = &["--family", "dense-urban", "--effort", "quick", "--no-store"];

fn assert_exit_2(out: std::process::Output, must_name: &str, what: &str) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "{what}: stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(must_name),
        "{what}: error does not name {must_name}:\n{stderr}"
    );
}

#[test]
fn malformed_workers_flag_exits_2() {
    for bad in ["three", "0", "-2", "1.5", ""] {
        let out = sweep()
            .args(BASE)
            .args(["--workers", bad])
            .output()
            .expect("spawn sweep binary");
        assert_exit_2(out, "--workers", &format!("--workers {bad:?}"));
    }
}

#[test]
fn malformed_workers_env_exits_2() {
    let out = sweep()
        .args(BASE)
        .env("MTNET_SWEEP_WORKERS", "lots")
        .output()
        .expect("spawn sweep binary");
    assert_exit_2(out, "MTNET_SWEEP_WORKERS", "env override");
}

#[test]
fn malformed_lease_timeout_flag_exits_2() {
    for bad in ["soon", "0", "-1", "2.5"] {
        let out = sweep()
            .args(BASE)
            .args(["--lease-timeout-ms", bad])
            .output()
            .expect("spawn sweep binary");
        assert_exit_2(
            out,
            "--lease-timeout-ms",
            &format!("--lease-timeout-ms {bad:?}"),
        );
    }
}

#[test]
fn malformed_lease_timeout_env_exits_2() {
    let out = sweep()
        .args(BASE)
        .env("MTNET_LEASE_TIMEOUT_MS", "never")
        .output()
        .expect("spawn sweep binary");
    assert_exit_2(out, "MTNET_LEASE_TIMEOUT_MS", "env override");
}

#[test]
fn malformed_max_reclaims_flag_exits_2() {
    let out = sweep()
        .args(BASE)
        .args(["--max-reclaims", "many"])
        .output()
        .expect("spawn sweep binary");
    assert_exit_2(out, "--max-reclaims", "--max-reclaims many");
}

#[test]
fn coordinated_modes_require_a_store() {
    for coordinated in [
        &["--workers", "2"] as &[&str],
        &["--worker-id", "w0"],
        &["--report"],
    ] {
        let out = sweep()
            .args(BASE) // includes --no-store
            .args(coordinated)
            .output()
            .expect("spawn sweep binary");
        assert_exit_2(
            out,
            "--no-store",
            &format!("{coordinated:?} with --no-store"),
        );
    }
}

#[test]
fn report_mode_rejects_worker_flags() {
    for conflicting in [&["--workers", "2"] as &[&str], &["--worker-id", "w0"]] {
        let out = sweep()
            .args(["--family", "dense-urban", "--effort", "quick", "--report"])
            .args(conflicting)
            .output()
            .expect("spawn sweep binary");
        assert_exit_2(out, "--report", &format!("--report with {conflicting:?}"));
    }
}

#[test]
fn flag_beats_env_when_both_are_set() {
    // A malformed env value must not shadow a valid flag: the flag pins
    // the env var for itself and any respawned children, so the bad
    // inherited value is overwritten before anything reads it.
    let out = sweep()
        .args([
            "--family",
            "commute-corridor",
            "--axis",
            "vehicles=1",
            "--workers",
            "1",
        ])
        .args(["--effort", "quick", "--reps", "1", "--seed", "42"])
        .args([
            "--store",
            &std::env::temp_dir()
                .join(format!("mtnet-sweepcli-{}", std::process::id()))
                .to_string_lossy(),
        ])
        .env("MTNET_SWEEP_WORKERS", "not-a-number")
        .env("MTNET_LEASE_TIMEOUT_MS", "also-bad")
        .args(["--lease-timeout-ms", "10000"])
        .output()
        .expect("spawn sweep binary");
    let _ = std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("mtnet-sweepcli-{}", std::process::id())),
    );
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("computed 1, loaded 0, quarantined 0, missing 0"),
        "{stdout}"
    );
}
