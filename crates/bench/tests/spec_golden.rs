//! Golden tests pinning the declarative spec texts behind E1–E14.
//!
//! Every experiment arm is a `ScenarioSpec`; its canonical text is the
//! content address the sweep store keys on and the contract the
//! byte-identical-fingerprint guarantee rides on. This test pins
//! (a) the full text of two representative arms, human-readably, and
//! (b) a digest of every experiment's concatenated arm texts — so *any*
//! unintentional drift in *any* arm's spec (geometry, knobs, duration,
//! seed path) fails loudly. An intentional change updates the constants
//! below; the failure message prints the fresh text to paste.

use mtnet_bench::experiments::arm_specs;
use mtnet_bench::store::ResultStore;
use mtnet_bench::{Effort, ALL_IDS};

/// E2's first arm (the pure-Mobile-IP baseline) at Quick effort, in full.
const E2_ARM0_QUICK: &str = "\
mtnet-spec v1
name = \"commute-corridor\"
seed = path \"E2\" \"pure-mobile-ip\" rep 0
duration_s = 30.0
arch = pure-mobile-ip
domains = 2
micro_per_domain = 4
micro_kind = micro
micro_spacing_m = 400.0
domain_width_m = 3000.0
street_y_m = 1500.0
share_upper = on
macro_hole = off
satellite = off
pedestrians = 2
cyclists = 0
vehicles = 1
pedestrian_class = pedestrian
pedestrian_pause_s = 10.0
cyclist_speed_mps = 6.0
vehicle_speed_mps = 25.0
voice_every = 1
video_every = 0
web_every = 0
factors = speed+signal+resources
route_update_ms = none
semisoft_delay_ms = none
table_lifetime_ms = none
paging_update_ms = none
";

/// E12's third arm (the "no speed" ablation) at Quick effort, in full —
/// exercises quoting, factors rendering and population overrides.
const E12_ARM2_QUICK: &str = "\
mtnet-spec v1
name = \"small-city\"
seed = path \"E12\" \"no speed\" rep 0
duration_s = 30.0
arch = multi-tier+rsmc
domains = 3
micro_per_domain = 4
micro_kind = micro
micro_spacing_m = 400.0
domain_width_m = 3000.0
street_y_m = 1500.0
share_upper = on
macro_hole = off
satellite = off
pedestrians = 6
cyclists = 3
vehicles = 3
pedestrian_class = pedestrian
pedestrian_pause_s = 10.0
cyclist_speed_mps = 6.0
vehicle_speed_mps = 25.0
voice_every = 1
video_every = 3
web_every = 0
factors = signal+resources
route_update_ms = none
semisoft_delay_ms = none
table_lifetime_ms = none
paging_update_ms = none
";

/// `(experiment, arm count, digest of concatenated canonical texts)` at
/// Quick effort. The digest is the store's own content hash, so this is
/// exactly "would every arm land in the same store slot as before".
const QUICK_DIGESTS: [(&str, usize, &str); 14] = [
    ("E1", 2, "080ec007d756b65d"),
    ("E2", 2, "6f980c280036295f"),
    ("E3", 5, "5b7701f6f0f24e8f"),
    ("E4", 2, "84b186aa619da284"),
    ("E5", 0, "a8c7f832281a39c5"),
    ("E6", 1, "debdd7721285ce15"),
    ("E7", 1, "ef9e312ab55f9b3c"),
    ("E8", 1, "2c983c28a8997388"),
    ("E9", 2, "b22b7ca58b7df417"),
    ("E10", 9, "a35e178457aed7a1"),
    ("E11", 36, "df51789d3b35f1e5"),
    ("E12", 5, "9fb581ce7c347f11"),
    ("E13", 3, "0f216fe32b22f303"),
    ("E14", 1, "874e5836f83e6d26"),
];

/// E13's first arm (multi-tier under the shared fault schedule) at Quick
/// effort, in full — pins the `fault.*` grammar end to end.
const E13_ARM0_QUICK: &str = "\
mtnet-spec v1
name = \"small-city\"
seed = path \"E13\" \"multi-tier+rsmc\" rep 0
duration_s = 30.0
arch = multi-tier+rsmc
domains = 3
micro_per_domain = 4
micro_kind = micro
micro_spacing_m = 400.0
domain_width_m = 3000.0
street_y_m = 1500.0
share_upper = on
macro_hole = off
satellite = off
pedestrians = 6
cyclists = 0
vehicles = 3
pedestrian_class = pedestrian
pedestrian_pause_s = 10.0
cyclist_speed_mps = 6.0
vehicle_speed_mps = 25.0
voice_every = 1
video_every = 3
web_every = 0
factors = speed+signal+resources
route_update_ms = none
semisoft_delay_ms = none
table_lifetime_ms = none
paging_update_ms = none
fault.cell_outages = 1:8.0:16.0
fault.link_flaps = 1:5.0:8.0:0.5:0.5:2
fault.rsmc_failover = 2:18.0:5.0
";

#[test]
fn representative_arm_texts_are_pinned() {
    let e2 = arm_specs("E2", Effort::Quick);
    assert_eq!(
        e2[0].render(),
        E2_ARM0_QUICK,
        "E2 arm 0 drifted; fresh text:\n{}",
        e2[0].render()
    );
    let e12 = arm_specs("E12", Effort::Quick);
    assert_eq!(
        e12[2].render(),
        E12_ARM2_QUICK,
        "E12 arm 2 drifted; fresh text:\n{}",
        e12[2].render()
    );
    let e13 = arm_specs("E13", Effort::Quick);
    assert_eq!(
        e13[0].render(),
        E13_ARM0_QUICK,
        "E13 arm 0 drifted; fresh text:\n{}",
        e13[0].render()
    );
}

#[test]
fn every_experiments_spec_texts_are_pinned() {
    assert_eq!(QUICK_DIGESTS.len(), ALL_IDS.len());
    for (id, arms, digest) in QUICK_DIGESTS {
        let specs = arm_specs(id, Effort::Quick);
        assert_eq!(specs.len(), arms, "{id}: arm count changed");
        let concatenated: String = specs.iter().map(|s| s.render()).collect();
        let fresh = ResultStore::key(&concatenated, 0);
        assert_eq!(
            fresh, digest,
            "{id}: spec texts drifted (fresh digest {fresh}); \
             if intentional, update QUICK_DIGESTS. Concatenated texts:\n{concatenated}"
        );
    }
}

#[test]
fn spec_texts_parse_back_exactly() {
    // The pinned texts are also valid input: the parser reproduces the
    // very specs the runners execute.
    use mtnet_core::spec::ScenarioSpec;
    for id in ALL_IDS {
        for (i, spec) in arm_specs(id, Effort::Quick).iter().enumerate() {
            let back =
                ScenarioSpec::parse(&spec.render()).unwrap_or_else(|e| panic!("{id} arm {i}: {e}"));
            assert_eq!(&back, spec, "{id} arm {i}");
        }
    }
}
