//! End-to-end checks that a malformed `MTNET_THREADS` fails loudly
//! (exit 2) on both parsing paths — the environment variable read by
//! `BatchRunner::from_env` and the `--threads` flag — instead of being
//! silently ignored on one of them. The `--shards` knob gets the same
//! treatment, plus a cross-process proof that a sharded run's stdout is
//! byte-identical to the sequential run's.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn malformed_threads_env_exits_2() {
    let out = experiments()
        .args(["quick", "E1"])
        .env("MTNET_THREADS", "lots")
        .output()
        .expect("spawn experiments binary");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("MTNET_THREADS"), "{stderr}");
}

#[test]
fn malformed_threads_flag_exits_2() {
    let out = experiments()
        .args(["quick", "E1", "--threads", "lots"])
        .output()
        .expect("spawn experiments binary");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn malformed_shards_flag_exits_2() {
    for bad in ["two", "0", "-4"] {
        let out = experiments()
            .args(["quick", "E1", "--shards", bad])
            .output()
            .expect("spawn experiments binary");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--shards {bad}: stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--shards"),
            "--shards {bad} error does not name the flag"
        );
    }
}

#[test]
fn sharded_suite_output_is_byte_identical_to_sequential() {
    // The experiment table (stdout) carries every reported metric; the
    // suite header is the only line that may differ between shard
    // counts. `MTNET_THREADS=1` vs the flag path also cross-checks that
    // `--shards` composes with `--threads`.
    let run = |extra: &[&str]| -> Vec<String> {
        let out = experiments()
            .args(["quick", "E11", "--threads", "1"])
            .args(extra)
            .output()
            .expect("spawn experiments binary");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip(1) // header names the shard count
            .map(str::to_string)
            .collect()
    };
    let sequential = run(&[]);
    let sharded = run(&["--shards", "2"]);
    assert!(!sequential.is_empty());
    assert_eq!(sequential, sharded);
}
