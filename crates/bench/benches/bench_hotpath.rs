//! Criterion benches for the hot-path layers: cached routing
//! (`RouteCache` vs per-call Dijkstra), spatial radio measurement (grid
//! index vs full scan, and the batched SoA sweep vs both, at 10/100/1k
//! cells), per-packet flow lookup (persistent index vs linear scan), and
//! scheduler backends (calendar queue vs binary heap on a hold-model
//! churn). Each pair documents the speed relationship the code relies
//! on — the optimized variant ahead, or (for the scheduler pair) the
//! crossover that motivates the per-world backend choice: the heap's
//! constant factor wins tiny pending sets, the calendar's O(1) wins the
//! thousands-pending populations the experiment suite actually runs.
//! The equivalence of each pair's *answers* is enforced by property
//! tests (`tests/properties.rs`), so these benches only argue speed.
//!
//! Every sample runs a 10 000-operation batch (the `_x10k` suffix), so
//! sub-microsecond routines are measured well above timer resolution —
//! the vendored criterion stand-in times one closure call per sample.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtnet_net::{Addr, FlowId, LinkConfig, NodeId, RouteCache, Topology};
use mtnet_radio::{Cell, CellId, CellKind, CellMap};
use mtnet_sim::{FxHashMap, Scheduler, SchedulerKind, SimDuration, SimTime};

const BATCH: u64 = 10_000;

/// A two-level access-network-ish topology: one core, `n_gw` gateways,
/// four base stations chained under each gateway.
fn build_topology(n_gw: u32) -> Topology {
    let mut topo = Topology::new();
    let core = topo.add_node(Addr::from_octets(1, 0, 0, 1));
    for g in 0..n_gw {
        let gw = topo.add_node(Addr::from_octets(20, g as u8, 0, 1));
        topo.connect(core, gw, LinkConfig::wide_area());
        let mut parent = gw;
        for b in 0..4u8 {
            let bs = topo.add_node(Addr::from_octets(20, g as u8, 1, b + 1));
            topo.connect(parent, bs, LinkConfig::access());
            parent = bs;
        }
    }
    topo
}

fn bench_next_hop(c: &mut Criterion) {
    let topo = build_topology(8);
    let n = u64::from(topo.node_count() as u32);
    let mut group = c.benchmark_group("next_hop");
    group.sample_size(20);
    group.bench_function("naive_dijkstra_per_call_x10k", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for k in 0..BATCH {
                let i = k * 7 % (n * n);
                let (src, dst) = (NodeId((i / n) as u32), NodeId((i % n) as u32));
                found += u32::from(topo.next_hop_on_path(src, dst).is_some());
            }
            black_box(found)
        })
    });
    group.bench_function("route_cache_x10k", |b| {
        let mut cache = RouteCache::new();
        b.iter(|| {
            let mut found = 0u32;
            for k in 0..BATCH {
                let i = k * 7 % (n * n);
                let (src, dst) = (NodeId((i / n) as u32), NodeId((i % n) as u32));
                found += u32::from(cache.next_hop(&topo, src, dst).is_some());
            }
            black_box(found)
        })
    });
    group.finish();
}

/// A city-scale deployment: a 10×10 micro grid under 4 macro umbrellas.
fn build_cells() -> CellMap {
    let mut map = CellMap::without_shadowing();
    let mut id = 0u32;
    for gx in 0..10 {
        for gy in 0..10 {
            map.add(Cell::new(
                CellId(id),
                CellKind::Micro,
                mtnet_mobility::Point::new(gx as f64 * 400.0, gy as f64 * 400.0),
                NodeId(id),
            ));
            id += 1;
        }
    }
    for mx in 0..2 {
        for my in 0..2 {
            map.add(Cell::new(
                CellId(id),
                CellKind::Macro,
                mtnet_mobility::Point::new(
                    1000.0 + mx as f64 * 2000.0,
                    1000.0 + my as f64 * 2000.0,
                ),
                NodeId(id),
            ));
            id += 1;
        }
    }
    map
}

fn bench_measure(c: &mut Criterion) {
    let map = build_cells();
    let mut group = c.benchmark_group("measure");
    group.sample_size(20);
    let probe =
        |k: u64| mtnet_mobility::Point::new((k % 40) as f64 * 100.0, (k / 40 % 40) as f64 * 100.0);
    group.bench_function("full_scan_x10k", |b| {
        b.iter(|| {
            let mut audible = 0usize;
            for k in 0..BATCH {
                audible += map.measure_full_scan(probe(k), None).len();
            }
            black_box(audible)
        })
    });
    group.bench_function("grid_index_x10k", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut audible = 0usize;
            for k in 0..BATCH {
                map.measure_into(probe(k), None, &mut scratch);
                audible += scratch.len();
            }
            black_box(audible)
        })
    });
    group.finish();
}

fn bench_flow_lookup(c: &mut Criterion) {
    const FLOWS: u64 = 64;
    let flows: Vec<FlowId> = (1..=FLOWS).map(FlowId).collect();
    let index: FxHashMap<FlowId, usize> = flows.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut group = c.benchmark_group("flow_lookup");
    group.sample_size(50);
    group.bench_function("linear_position_scan_x10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in 0..BATCH {
                let want = FlowId(k % FLOWS + 1);
                hits += usize::from(flows.iter().position(|&f| f == want).is_some());
            }
            black_box(hits)
        })
    });
    group.bench_function("indexed_x10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in 0..BATCH {
                let want = FlowId(k % FLOWS + 1);
                hits += usize::from(index.get(&want).is_some());
            }
            black_box(hits)
        })
    });
    group.finish();
}

/// A deployment of roughly `n` cells: a micro grid under macro umbrellas
/// (1:25 macro:micro, like the city scenarios).
fn build_cells_n(n: usize) -> CellMap {
    let mut map = CellMap::without_shadowing();
    let side = (n as f64).sqrt().ceil() as u32;
    let mut id = 0u32;
    for gx in 0..side {
        for gy in 0..side {
            if (id as usize) >= n {
                break;
            }
            map.add(Cell::new(
                CellId(id),
                if id % 26 == 25 {
                    CellKind::Macro
                } else {
                    CellKind::Micro
                },
                mtnet_mobility::Point::new(f64::from(gx) * 400.0, f64::from(gy) * 400.0),
                NodeId(id),
            ));
            id += 1;
        }
    }
    map
}

/// Batched SoA measurement vs the scalar full scan across deployment
/// sizes — the speedup side of the `measure_batch ≡ measure_full_scan`
/// property.
fn bench_measure_batch(c: &mut Criterion) {
    for n in [10usize, 100, 1_000] {
        let map = build_cells_n(n);
        let extent = (n as f64).sqrt().ceil() * 400.0;
        let probe = |k: u64| {
            mtnet_mobility::Point::new(
                (k % 37) as f64 / 37.0 * extent,
                (k % 53) as f64 / 53.0 * extent,
            )
        };
        let mut group = c.benchmark_group(format!("measure_batch_{n}cells"));
        group.sample_size(20);
        group.bench_function("scalar_full_scan_x10k", |b| {
            b.iter(|| {
                let mut audible = 0usize;
                for k in 0..BATCH {
                    audible += map.measure_full_scan(probe(k), None).len();
                }
                black_box(audible)
            })
        });
        group.bench_function("soa_batch_x10k", |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let mut audible = 0usize;
                for k in 0..BATCH {
                    map.measure_batch(probe(k), None, &mut scratch);
                    audible += scratch.len();
                }
                black_box(audible)
            })
        });
        group.finish();
    }
}

/// The explicit lane widths head to head on the SoA sweep — the speedup
/// side of the lane-width half of the `measure_batch ≡ full scan`
/// property. Scalar is the exact original loop; W4/W8 are the portable
/// vector pre-filters feeding the same scalar tail.
fn bench_rssi_lanes(c: &mut Criterion) {
    use mtnet_radio::LaneSelect;
    let n = 1_000usize;
    let map = build_cells_n(n);
    let extent = (n as f64).sqrt().ceil() * 400.0;
    let probe = |k: u64| {
        mtnet_mobility::Point::new(
            (k % 37) as f64 / 37.0 * extent,
            (k % 53) as f64 / 53.0 * extent,
        )
    };
    let mut group = c.benchmark_group(format!("rssi_lanes_{n}cells"));
    group.sample_size(20);
    for (name, sel) in [
        ("scalar_x10k", LaneSelect::Scalar),
        ("w4_x10k", LaneSelect::W4),
        ("w8_x10k", LaneSelect::W8),
    ] {
        group.bench_function(name, |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let mut audible = 0usize;
                for k in 0..BATCH {
                    map.measure_batch_lanes(probe(k), None, &mut scratch, sel);
                    audible += scratch.len();
                }
                black_box(audible)
            })
        });
    }
    group.finish();
}

/// Serial pops vs batched run-taking over a tie-heavy schedule — the
/// speedup side of the `batched_runs_equal_serial_pops` property. Every
/// instant carries an 8-way tie, the shape type-batched dispatch
/// amortizes.
fn bench_dispatch(c: &mut Criterion) {
    let fill = |q: &mut Scheduler<u64>| {
        for i in 0..4_096u64 {
            q.schedule_at(SimTime::from_nanos(i / 8 * 1_000), i);
        }
    };
    let mut group = c.benchmark_group("dispatch_4096events");
    group.sample_size(20);
    group.bench_function("serial_pops", |b| {
        b.iter(|| {
            let mut q = Scheduler::with_kind(SchedulerKind::Calendar);
            fill(&mut q);
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc ^= e.into_event();
            }
            black_box(acc)
        })
    });
    group.bench_function("batched_runs", |b| {
        b.iter(|| {
            let mut q = Scheduler::with_kind(SchedulerKind::Calendar);
            fill(&mut q);
            let mut acc = 0u64;
            let mut run = Vec::new();
            while q.take_run_at_or_before(SimTime::MAX, u64::MAX, &mut run) > 0 {
                for e in run.drain(..) {
                    acc ^= e;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Scheduler backends head to head on the event loop's own access
/// pattern: a hold model (pop one, push one at `now + delay`) over a
/// standing population, the delays mixing packet-scale gaps with
/// occasional far-future timers (the overflow-ladder case). The small
/// population shows the heap's constant-factor advantage, the large one
/// the calendar's O(1) scaling — the crossover behind
/// `SchedulerKind` being selectable per world.
fn bench_scheduler(c: &mut Criterion) {
    let run = |kind: SchedulerKind, standing: usize| {
        let mut q = Scheduler::with_kind(kind);
        for i in 0..standing as u64 {
            q.schedule_at(SimTime::from_nanos(i * 1_000), i);
        }
        let mut acc = 0u64;
        for k in 0..BATCH {
            let e = q
                .pop_at_or_before(SimTime::MAX)
                .expect("standing population");
            acc ^= e.into_event();
            let delay = if k % 64 == 0 {
                SimDuration::from_secs(2) // periodic-timer scale
            } else {
                SimDuration::from_nanos(50_000 + k % 7 * 13_000) // packet scale
            };
            q.schedule_in(delay, k);
        }
        acc
    };
    let mut group = c.benchmark_group("scheduler_hold_model");
    group.sample_size(20);
    for standing in [256usize, 4_096] {
        group.bench_function(&format!("heap_{standing}pending_x10k"), |b| {
            b.iter(|| black_box(run(SchedulerKind::Heap, standing)))
        });
        group.bench_function(&format!("calendar_{standing}pending_x10k"), |b| {
            b.iter(|| black_box(run(SchedulerKind::Calendar, standing)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_next_hop,
    bench_measure,
    bench_measure_batch,
    bench_rssi_lanes,
    bench_dispatch,
    bench_scheduler,
    bench_flow_lookup
);
criterion_main!(benches);
