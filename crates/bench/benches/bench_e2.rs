//! Criterion bench regenerating Fig 2.2 Mobile IP procedures (E2).
//! Short (Effort::Quick) runs so the whole suite stays tractable; the
//! `experiments` binary produces the full-length recorded tables.

use criterion::{criterion_group, criterion_main, Criterion};
use mtnet_bench::experiments;
#[allow(unused_imports)]
use mtnet_bench::Effort;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2");
    group.sample_size(10);
    group.bench_function("e2_regenerate", |b| {
        b.iter(|| std::hint::black_box(experiments::e2_mobileip(Effort::Quick, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
