//! Criterion bench regenerating Fig 3.4 intra-domain handoffs (E8).
//! Short (Effort::Quick) runs so the whole suite stays tractable; the
//! `experiments` binary produces the full-length recorded tables.

use criterion::{criterion_group, criterion_main, Criterion};
use mtnet_bench::experiments;
#[allow(unused_imports)]
use mtnet_bench::Effort;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.bench_function("e8_regenerate", |b| {
        b.iter(|| std::hint::black_box(experiments::e8_intradomain(Effort::Quick, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
