//! Fixed-bucket histogram: constant memory, O(1) record, exact merge.
//!
//! [`Histogram`](crate::Histogram) sizes itself to the recorded range
//! (log-scale buckets, allocated lazily per order of magnitude), which is
//! the right trade for one tracker. A metro-scale world records hundreds
//! of millions of latency samples into **one** world-level accumulator —
//! there the shape must be fixed up front: a flat bucket table allocated
//! once whose footprint never changes no matter how many samples stream
//! through, so the world's metric state stays O(1) in both events and
//! subscribers.
//!
//! Buckets are uniform over `[0, upper)` with the overflow policies
//! folded into the edges: negatives clamp into the first bucket,
//! `>= upper` into the last. Percentiles interpolate within a bucket, so
//! resolution is `upper / N` — pick the range to match the quantity
//! (e.g. 0–2048 ms in 1-ms steps for one-way delay).

use serde::{Deserialize, Serialize};

/// Number of uniform buckets, allocated once at construction.
const BUCKETS: usize = 2048;

/// A constant-memory uniform-bucket histogram over `[0, upper)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedHistogram {
    upper: f64,
    count: u64,
    buckets: Vec<u64>,
}

impl FixedHistogram {
    /// Creates a histogram over `[0, upper)`; resolution is
    /// `upper / 2048`.
    ///
    /// # Panics
    ///
    /// Panics unless `upper` is finite and positive.
    pub fn new(upper: f64) -> Self {
        assert!(
            upper.is_finite() && upper > 0.0,
            "FixedHistogram upper bound must be finite and positive, got {upper}"
        );
        FixedHistogram {
            upper,
            count: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// The configured upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Records one value. Values below zero clamp into the first bucket,
    /// values at or above the upper bound into the last.
    #[inline]
    pub fn record(&mut self, value: f64) {
        let idx = ((value / self.upper * BUCKETS as f64) as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `p`-th percentile (0–100), linearly interpolated inside the
    /// bucket it lands in; `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let within = (rank - seen) as f64 / n as f64;
                let width = self.upper / BUCKETS as f64;
                return Some((i as f64 + within) * width);
            }
            seen += n;
        }
        Some(self.upper)
    }

    /// Adds every sample of `other`.
    ///
    /// # Panics
    ///
    /// Panics when the bounds differ — merging histograms with
    /// different ranges silently misassigns buckets.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert!(
            self.upper == other.upper,
            "cannot merge FixedHistograms with different bounds ({} vs {})",
            self.upper,
            other.upper
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// `(bucket lower edge, count)` for every non-empty bucket, in
    /// ascending order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = self.upper / BUCKETS as f64;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(move |(i, &n)| (i as f64 * width, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_footprint_and_exact_count() {
        let mut h = FixedHistogram::new(2000.0);
        let before = h.buckets.len();
        for i in 0..100_000u64 {
            h.record((i % 3000) as f64);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.buckets.len(), before, "bucket table never grows");
        assert_eq!(h.upper(), 2000.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut h = FixedHistogram::new(100.0);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((p50 - 50.0).abs() < 1.0, "p50 {p50}");
        let p95 = h.percentile(95.0).unwrap();
        assert!((p95 - 95.0).abs() < 1.0, "p95 {p95}");
        assert_eq!(FixedHistogram::new(1.0).percentile(50.0), None);
        assert!(FixedHistogram::new(1.0).is_empty());
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = FixedHistogram::new(10.0);
        h.record(-5.0);
        h.record(1e12);
        assert_eq!(h.count(), 2);
        let entries: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 0.0, "negative folded into first bucket");
        assert!(
            entries[1].0 > 10.0 - 2.0 * 10.0 / 2048.0,
            "overflow folded into last bucket"
        );
    }

    #[test]
    fn merge_is_exact() {
        let mut a = FixedHistogram::new(100.0);
        let mut b = FixedHistogram::new(100.0);
        let mut whole = FixedHistogram::new(100.0);
        for i in 0..50 {
            a.record(i as f64);
            whole.record(i as f64);
        }
        for i in 50..100 {
            b.record(i as f64);
            whole.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = FixedHistogram::new(100.0);
        a.merge(&FixedHistogram::new(200.0));
    }
}
