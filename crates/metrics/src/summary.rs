//! Streaming moment statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming mean / variance / min / max over `f64` observations.
///
/// Numerically stable (Welford), mergeable (parallel variance formula), and
/// serializable for experiment reports.
///
/// ```
/// use mtnet_metrics::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] { s.record(x); }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from an iterator of observations.
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }

    /// Records one observation. Non-finite values are ignored (and counted
    /// nowhere) so a single corrupt sample cannot poison a report.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (divides by `n`); 0 when fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean; 0 when fewer than 2 samples.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width for the mean.
    ///
    /// Uses z = 1.96; adequate for the sample sizes simulations produce.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another summary into this one (order-independent result).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
                self.count,
                self.mean(),
                self.sample_std_dev(),
                self.min,
                self.max
            )
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_iter([3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let whole = Summary::from_iter(data.iter().copied());
        let mut a = Summary::from_iter(data[..400].iter().copied());
        let b = Summary::from_iter(data[400..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_iter([1.0, 2.0]);
        let before = format!("{s}");
        s.merge(&Summary::new());
        assert_eq!(format!("{s}"), before);

        let mut empty = Summary::new();
        empty.merge(&Summary::from_iter([1.0, 2.0]));
        assert_eq!(empty.mean(), 1.5);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let small = Summary::from_iter((0..10).map(|i| i as f64));
        let large = Summary::from_iter((0..1000).map(|i| (i % 10) as f64));
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    fn extend_trait() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Summary::new().to_string(), "n=0");
        assert!(Summary::from_iter([1.0]).to_string().contains("n=1"));
    }
}
