//! # mtnet-metrics — statistics primitives for simulation experiments
//!
//! Self-contained, allocation-light statistics used by every experiment in
//! the multi-tier mobility reproduction:
//!
//! * [`Counter`] — monotone event counters with rate helpers.
//! * [`Summary`] — streaming mean/variance/min/max (Welford) with merge and
//!   normal-approximation confidence intervals.
//! * [`Replicates`] — named scalar metrics aggregated across independent
//!   replications (the cross-run layer over [`Summary`]).
//! * [`Histogram`] — log-scale bucketed histogram with percentile queries
//!   (HdrHistogram-style, base-2 with linear sub-buckets).
//! * [`FixedHistogram`] — uniform fixed-bucket histogram with a constant
//!   footprint, for world-level streaming accumulators.
//! * [`TimeWeighted`] — integrates a piecewise-constant value over simulated
//!   time (queue occupancy, channel usage, …).
//! * [`TimeSeries`] — (t, value) samples with downsampling.
//! * [`Table`] — fixed-width text tables for experiment output.
//!
//! ```
//! use mtnet_metrics::Summary;
//! let mut s = Summary::new();
//! for x in [1.0, 2.0, 3.0, 4.0] { s.record(x); }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod fixed;
mod histogram;
mod replicates;
mod series;
mod summary;
mod table;
mod timeweighted;

pub use counter::Counter;
pub use fixed::FixedHistogram;
pub use histogram::Histogram;
pub use replicates::Replicates;
pub use series::{SeriesPoint, TimeSeries};
pub use summary::Summary;
pub use table::{fmt_f64, Table};
pub use timeweighted::TimeWeighted;
