//! Time-weighted averaging of piecewise-constant signals.

use serde::{Deserialize, Serialize};

/// Integrates a piecewise-constant value over (simulated) time, yielding the
/// time-weighted average — e.g. mean queue depth, mean channels busy.
///
/// Time is passed as `f64` seconds so the crate stays independent of the
/// simulator's clock type; callers convert with `SimTime::as_secs_f64`.
///
/// ```
/// use mtnet_metrics::TimeWeighted;
/// let mut g = TimeWeighted::new(0.0, 0.0);
/// g.set(10.0, 2.0);  // value 2 from t=10
/// g.set(20.0, 4.0);  // value 4 from t=20
/// assert_eq!(g.average(30.0), (10.0*0.0 + 10.0*2.0 + 10.0*4.0) / 30.0);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates a gauge starting at `start_time` with `initial` value.
    pub fn new(start_time: f64, initial: f64) -> Self {
        TimeWeighted {
            start: start_time,
            last_t: start_time,
            value: initial,
            integral: 0.0,
            peak: initial,
        }
    }

    /// Advances the clock to `t`, accruing the current value, then switches
    /// to `new_value`. Out-of-order timestamps are clamped (no negative
    /// spans) so a stray event cannot corrupt the integral.
    pub fn set(&mut self, t: f64, new_value: f64) {
        let t = t.max(self.last_t);
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = new_value;
        self.peak = self.peak.max(new_value);
    }

    /// Adds `delta` to the current value at time `t` (queue push/pop style).
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[start, end_time]`. Returns the current
    /// value when the window is empty.
    pub fn average(&self, end_time: f64) -> f64 {
        let end = end_time.max(self.last_t);
        let total = end - self.start;
        if total <= 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * (end - self.last_t);
        integral / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_average_is_value() {
        let g = TimeWeighted::new(0.0, 3.0);
        assert_eq!(g.average(10.0), 3.0);
    }

    #[test]
    fn step_signal() {
        let mut g = TimeWeighted::new(0.0, 0.0);
        g.set(5.0, 10.0);
        // [0,5): 0, [5,10): 10 => avg 5
        assert_eq!(g.average(10.0), 5.0);
    }

    #[test]
    fn add_delta_tracks_queue() {
        let mut g = TimeWeighted::new(0.0, 0.0);
        g.add(1.0, 1.0); // depth 1 at t=1
        g.add(2.0, 1.0); // depth 2 at t=2
        g.add(3.0, -2.0); // empty at t=3
        assert_eq!(g.current(), 0.0);
        assert_eq!(g.peak(), 2.0);
        // integral = 0*1 + 1*1 + 2*1 + 0*1 = 3 over 4s
        assert_eq!(g.average(4.0), 0.75);
    }

    #[test]
    fn empty_window_returns_current() {
        let g = TimeWeighted::new(5.0, 7.0);
        assert_eq!(g.average(5.0), 7.0);
        assert_eq!(g.average(4.0), 7.0);
    }

    #[test]
    fn out_of_order_updates_clamped() {
        let mut g = TimeWeighted::new(0.0, 1.0);
        g.set(10.0, 2.0);
        g.set(5.0, 3.0); // clamped to t=10
        assert_eq!(g.current(), 3.0);
        // [0,10): 1 => integral 10; value 3 onwards
        assert_eq!(g.average(20.0), (10.0 + 30.0) / 20.0);
    }

    #[test]
    fn nonzero_start_time() {
        let mut g = TimeWeighted::new(100.0, 2.0);
        g.set(110.0, 4.0);
        assert_eq!(g.average(120.0), 3.0);
    }
}
