//! Monotone counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonically increasing event counter.
///
/// ```
/// use mtnet_metrics::Counter;
/// let mut c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.value(), 5);
/// assert_eq!(c.rate_per_sec(10.0), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Events per second over an observation window of `secs` seconds.
    /// Returns 0 for a non-positive window.
    pub fn rate_per_sec(&self, secs: f64) -> f64 {
        if secs > 0.0 {
            self.value as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of this counter relative to `total` (e.g. losses / sent);
    /// 0 when `total` is zero.
    pub fn fraction_of(&self, total: &Counter) -> f64 {
        if total.value == 0 {
            0.0
        } else {
            self.value as f64 / total.value as f64
        }
    }

    /// Folds another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.add(other.value);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl From<u64> for Counter {
    fn from(value: u64) -> Self {
        Counter { value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_and_add() {
        let mut c = Counter::new();
        c.inc();
        c.inc();
        c.add(3);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn add_saturates() {
        let mut c = Counter::from(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn rate_handles_zero_window() {
        let c = Counter::from(100);
        assert_eq!(c.rate_per_sec(0.0), 0.0);
        assert_eq!(c.rate_per_sec(-1.0), 0.0);
        assert_eq!(c.rate_per_sec(50.0), 2.0);
    }

    #[test]
    fn fraction_of_total() {
        let lost = Counter::from(25);
        let sent = Counter::from(100);
        assert_eq!(lost.fraction_of(&sent), 0.25);
        assert_eq!(lost.fraction_of(&Counter::new()), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = Counter::from(3);
        a.merge(&Counter::from(4));
        assert_eq!(a.value(), 7);
    }

    #[test]
    fn display() {
        assert_eq!(Counter::from(42).to_string(), "42");
    }
}
