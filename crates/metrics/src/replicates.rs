//! Cross-replication aggregation of named scalar metrics.

use crate::Summary;
use std::fmt;

/// Aggregates named scalar metrics across independent replications.
///
/// Each replication contributes one observation per metric name; the
/// collector keeps a mergeable [`Summary`] per name, in first-insertion
/// order (so experiment tables render columns in the order the harness
/// recorded them, not alphabetically).
///
/// ```
/// use mtnet_metrics::Replicates;
/// let mut agg = Replicates::new();
/// for loss in [0.010, 0.014, 0.012] {
///     agg.record("loss", loss); // one replication each
/// }
/// assert_eq!(agg.get("loss").unwrap().count(), 3);
/// assert!((agg.mean("loss") - 0.012).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Replicates {
    metrics: Vec<(String, Summary)>,
}

impl Replicates {
    /// An empty collector.
    pub fn new() -> Self {
        Replicates::default()
    }

    /// Records one replication's observation of `name`.
    pub fn record(&mut self, name: &str, value: f64) {
        if let Some((_, s)) = self.metrics.iter_mut().find(|(n, _)| n == name) {
            s.record(value);
        } else {
            let mut s = Summary::new();
            s.record(value);
            self.metrics.push((name.to_string(), s));
        }
    }

    /// The cross-replication summary for `name`, if any was recorded.
    pub fn get(&self, name: &str) -> Option<&Summary> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The mean of `name` across replications; 0 when never recorded.
    pub fn mean(&self, name: &str) -> f64 {
        self.get(name).map_or(0.0, Summary::mean)
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates `(name, summary)` in first-insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.metrics.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Merges another collector into this one (summaries of shared names
    /// merge; new names append in the other's order). The result is the
    /// same as if every observation had been recorded here.
    pub fn merge(&mut self, other: &Replicates) {
        for (name, s) in &other.metrics {
            if let Some((_, mine)) = self.metrics.iter_mut().find(|(n, _)| n == name) {
                mine.merge(s);
            } else {
                self.metrics.push((name.clone(), *s));
            }
        }
    }
}

impl fmt::Display for Replicates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, s)) in self.metrics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name}: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_name() {
        let mut r = Replicates::new();
        r.record("loss", 0.1);
        r.record("loss", 0.3);
        r.record("delay", 40.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("loss").unwrap().count(), 2);
        assert!((r.mean("loss") - 0.2).abs() < 1e-12);
        assert_eq!(r.mean("delay"), 40.0);
        assert_eq!(r.mean("missing"), 0.0);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn preserves_insertion_order() {
        let mut r = Replicates::new();
        for name in ["z", "a", "m"] {
            r.record(name, 1.0);
        }
        let order: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(order, ["z", "a", "m"]);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut all = Replicates::new();
        let mut left = Replicates::new();
        let mut right = Replicates::new();
        for (i, x) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            all.record("m", *x);
            if i < 3 {
                left.record("m", *x);
            } else {
                right.record("m", *x);
            }
        }
        right.record("extra", 9.0);
        left.merge(&right);
        assert_eq!(
            left.get("m").unwrap().count(),
            all.get("m").unwrap().count()
        );
        assert!((left.mean("m") - all.mean("m")).abs() < 1e-12);
        assert_eq!(left.mean("extra"), 9.0);
    }

    #[test]
    fn display_lists_metrics() {
        let mut r = Replicates::new();
        r.record("loss", 0.5);
        let text = r.to_string();
        assert!(text.contains("loss"), "{text}");
        assert!(text.contains("n=1"), "{text}");
        assert!(Replicates::new().to_string().is_empty());
        assert!(Replicates::new().is_empty());
    }
}
