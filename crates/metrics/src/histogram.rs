//! Log-scale histogram with percentile queries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of linear sub-buckets per power-of-two bucket. 32 sub-buckets give
/// a worst-case quantization error of ~3%, plenty for latency reporting.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// A histogram of non-negative integer values (latencies in ns, sizes in
/// bytes, hop counts, …) with logarithmic bucketing and bounded relative
/// error, in the spirit of HdrHistogram.
///
/// Values are grouped into power-of-two ranges, each split into
/// 32 linear sub-buckets, so relative quantization error is ≤ 1/32.
///
/// ```
/// use mtnet_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 { h.record(v); }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((470..=530).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Histogram {
    /// Sparse bucket counts, indexed by encoded bucket id.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Encodes a value into its bucket index.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            // Values below 32 get exact (unit-width) buckets.
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let bucket = msb - SUB_BITS + 1; // which power-of-two range
            let sub = (value >> (bucket - 1)) as usize & (SUB_BUCKETS - 1);
            (bucket as usize + 1) * SUB_BUCKETS + sub - SUB_BUCKETS
        }
    }

    /// Representative (midpoint-ish upper bound) value for a bucket index —
    /// the largest value mapping to that bucket.
    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            index as u64
        } else {
            let bucket = (index / SUB_BUCKETS) as u32;
            let sub = (index % SUB_BUCKETS) as u64 + SUB_BUCKETS as u64;
            (sub << (bucket - 1)) + (1u64 << (bucket - 1)) - 1
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of recorded values (sums are kept exactly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Value at or below which `pct` percent of observations fall
    /// (`0 < pct <= 100`), with ≤ ~3% relative quantization error.
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `(0, 100]`.
    pub fn percentile(&self, pct: f64) -> Option<u64> {
        assert!(pct > 0.0 && pct <= 100.0, "percentile out of range: {pct}");
        if self.count == 0 {
            return None;
        }
        let target = ((pct / 100.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                // Clamp to true extrema so p100 == max exactly.
                return Some(Self::value_of(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (p50) convenience accessor.
    pub fn median(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Iterates over `(bucket_upper_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::value_of(i), c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "empty histogram");
        }
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0).unwrap(),
            self.percentile(95.0).unwrap(),
            self.percentile(99.0).unwrap(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaviour() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.to_string(), "empty histogram");
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        // Buckets below 32 are unit-width, so percentiles are exact.
        assert_eq!(h.percentile(100.0), Some(31));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        for exp in 0..50u32 {
            let v = 3u64 << exp >> 1; // assorted magnitudes
            let v = v.max(1);
            h.record(v);
            let idx = Histogram::index_of(v);
            let rep = Histogram::value_of(idx);
            assert!(rep >= v, "representative below value: {rep} < {v}");
            let err = (rep - v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0, "error {err} too large for {v}");
        }
    }

    #[test]
    fn index_value_round_trip_monotone() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            1_000_000,
            u64::MAX / 2,
        ] {
            let idx = Histogram::index_of(v);
            assert!(idx >= last, "indices must be monotone in value");
            last = idx;
            // value_of(index_of(v)) must bound v from above.
            assert!(Histogram::value_of(idx) >= v);
        }
    }

    #[test]
    fn percentiles_on_uniform() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (pct, expect) in [(25.0, 2500u64), (50.0, 5000), (90.0, 9000), (99.0, 9900)] {
            let got = h.percentile(pct).unwrap() as f64;
            let err = (got - expect as f64).abs() / expect as f64;
            assert!(err < 0.05, "p{pct}: got {got}, want ~{expect}");
        }
        assert_eq!(h.percentile(100.0), Some(10_000));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record_n(10, 3);
        h.record(70);
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 1..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 1..300u64 {
            b.record(v * 7);
            whole.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.percentile(50.0), whole.percentile(50.0));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(5, 0);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_zero_rejected() {
        let mut h = Histogram::new();
        h.record(1);
        h.percentile(0.0);
    }

    #[test]
    fn iter_skips_empty_buckets() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1000);
        let entries: Vec<_> = h.iter().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], (1, 1));
    }

    #[test]
    fn display_format() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.to_string();
        assert!(s.contains("n=100"), "{s}");
        assert!(s.contains("p95"), "{s}");
    }
}
