//! Time-series collection for plotting experiment curves.

use serde::{Deserialize, Serialize};

/// One `(time, value)` sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Sample time, in seconds.
    pub t: f64,
    /// Sample value.
    pub value: f64,
}

/// An append-only series of timestamped samples, with helpers for the
/// report generator (downsampling, extrema, last value).
///
/// ```
/// use mtnet_metrics::TimeSeries;
/// let mut s = TimeSeries::new("loss_rate");
/// s.push(0.0, 0.01);
/// s.push(1.0, 0.02);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last().unwrap().value, 0.02);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    name: String,
    points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (used as a column header in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples should be pushed in non-decreasing time
    /// order; this is asserted in debug builds.
    pub fn push(&mut self, t: f64, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|p| p.t <= t),
            "series must be pushed in time order"
        );
        self.points.push(SeriesPoint { t, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All samples, in time order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.last().copied()
    }

    /// Largest sample value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Mean of sample values (unweighted).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// Downsamples to at most `max_points` by averaging fixed-size chunks;
    /// returns a new series. Used to keep report files small.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        assert!(max_points > 0, "max_points must be positive");
        if self.points.len() <= max_points {
            return self.clone();
        }
        let chunk = self.points.len().div_ceil(max_points);
        let mut out = TimeSeries::new(self.name.clone());
        for c in self.points.chunks(chunk) {
            let t = c.iter().map(|p| p.t).sum::<f64>() / c.len() as f64;
            let v = c.iter().map(|p| p.value).sum::<f64>() / c.len() as f64;
            out.points.push(SeriesPoint { t, value: v });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("x");
        assert!(s.is_empty());
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(), "x");
        assert_eq!(s.last(), Some(SeriesPoint { t: 1.0, value: 3.0 }));
        assert_eq!(s.max_value(), Some(3.0));
        assert_eq!(s.mean_value(), 2.0);
    }

    #[test]
    fn empty_queries() {
        let s = TimeSeries::new("e");
        assert_eq!(s.last(), None);
        assert_eq!(s.max_value(), None);
        assert_eq!(s.mean_value(), 0.0);
    }

    #[test]
    fn downsample_preserves_short_series() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        let d = s.downsample(10);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn downsample_reduces_and_averages() {
        let mut s = TimeSeries::new("x");
        for i in 0..100 {
            s.push(i as f64, 10.0);
        }
        let d = s.downsample(10);
        assert!(d.len() <= 10);
        assert!(d.points().iter().all(|p| (p.value - 10.0).abs() < 1e-12));
        // Overall mean is preserved for a constant signal.
        assert_eq!(d.mean_value(), 10.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn downsample_zero_rejected() {
        TimeSeries::new("x").downsample(0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_asserts() {
        let mut s = TimeSeries::new("x");
        s.push(5.0, 0.0);
        s.push(1.0, 0.0);
    }
}
