//! The binary-heap backend: the reference ordering implementation.
//!
//! Kept alongside the calendar queue as the semantics oracle — property
//! tests drive both backends through identical schedule/cancel/pop
//! interleavings and demand the exact same pop sequence. It is also the
//! right choice for tiny or wildly irregular schedules where the calendar
//! queue's bucket tuning has nothing to grab onto.
//!
//! A heap entry is sifted O(log n) times per push/pop, so payloads do
//! not ride in the heap: the heap holds 24-byte `(time, seq, slot)` keys
//! and payloads sit still in a slot slab until their key surfaces.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-ordered queue of `(time, seq)` keys over `BinaryHeap`, payloads in
/// a slab. O(log n) push/pop.
#[derive(Debug)]
pub(crate) struct HeapQueue<E> {
    /// Min-heap (via `Reverse`) of `(time, seq, slot)` keys.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// `slots[slot] = Some((seq, event))` while pending; `None` once
    /// cancelled (the dangling key is purged when it surfaces). A slot is
    /// not reused until its key has popped.
    slots: Vec<Option<(u64, E)>>,
    /// Slots whose key has surfaced, ready for reuse.
    free: Vec<u32>,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    pub(crate) fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, event: E) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((seq, event));
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("fewer than 2^32 pending events");
                self.slots.push(Some((seq, event)));
                s
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
    }

    /// The `(time, seq)` key of the earliest live entry, purging
    /// cancelled heads on the way.
    #[inline]
    pub(crate) fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        while let Some(&Reverse((time, seq, slot))) = self.heap.peek() {
            if self.slots[slot as usize].is_some() {
                return Some((time, seq));
            }
            // Cancelled head: the dangling key just releases its slot.
            self.heap.pop();
            self.free.push(slot);
        }
        None
    }

    #[inline]
    pub(crate) fn pop_min(&mut self) -> Option<(SimTime, u64, E)> {
        while let Some(Reverse((time, seq, slot))) = self.heap.pop() {
            let payload = self.slots[slot as usize].take();
            self.free.push(slot);
            if let Some((stored_seq, event)) = payload {
                debug_assert_eq!(stored_seq, seq, "slot reused before its key popped");
                return Some((time, seq, event));
            }
        }
        None
    }

    /// Pops the earliest live entry only if it fires at or before
    /// `horizon`.
    #[inline]
    pub(crate) fn pop_min_at_or_before(&mut self, horizon_ns: u64) -> Option<(SimTime, u64, E)> {
        let (time, _) = self.peek_min()?;
        if time.as_nanos() > horizon_ns {
            return None;
        }
        self.pop_min()
    }

    /// Removes the entry with sequence number `seq`, returning it if it
    /// was pending. O(n) over the slab — cancellation is off the hot
    /// path; see [`super::Scheduler::cancel`].
    pub(crate) fn cancel(&mut self, seq: u64) -> Option<E> {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|(s, _)| *s == seq) {
                let (_, event) = slot.take().expect("just matched");
                // The dangling heap key surfaces (and frees the slot) in
                // peek_min/pop_min.
                return Some(event);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_entries_in_key_order() {
        let mut q = HeapQueue::new();
        q.push(SimTime::from_secs(2), 0, "late");
        q.push(SimTime::from_secs(1), 2, "tie-b");
        q.push(SimTime::from_secs(1), 1, "tie-a");
        assert_eq!(q.peek_min(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("tie-a"));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("tie-b"));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("late"));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn cancel_by_seq_and_slot_reuse() {
        let mut q = HeapQueue::new();
        q.push(SimTime::from_secs(1), 0, 10);
        q.push(SimTime::from_secs(2), 1, 11);
        assert_eq!(q.cancel(0), Some(10));
        assert_eq!(q.cancel(0), None);
        assert_eq!(
            q.peek_min(),
            Some((SimTime::from_secs(2), 1)),
            "purges head"
        );
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(11));
        // Both slots recycled.
        q.push(SimTime::from_secs(3), 2, 12);
        q.push(SimTime::from_secs(3), 3, 13);
        assert_eq!(q.slots.len(), 2);
    }
}
