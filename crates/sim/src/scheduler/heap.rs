//! The binary-heap backend: the reference ordering implementation.
//!
//! Kept alongside the calendar queue as the semantics oracle — property
//! tests drive both backends through identical schedule/cancel/pop
//! interleavings and demand the exact same pop sequence. It is also the
//! right choice for tiny or wildly irregular schedules where the calendar
//! queue's bucket tuning has nothing to grab onto.
//!
//! A heap entry is sifted O(log n) times per push/pop, so payloads do
//! not ride in the heap: the heap holds 24-byte `(time, seq, slot)` keys
//! and payloads sit still in a slot slab until their key surfaces.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-ordered queue of `(time, seq)` keys over `BinaryHeap`, payloads in
/// a slab. O(log n) push/pop.
#[derive(Debug)]
pub(crate) struct HeapQueue<E> {
    /// Min-heap (via `Reverse`) of `(time, seq, slot)` keys.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// `slots[slot] = Some((seq, event))` while pending; `None` once
    /// cancelled (the dangling key is purged when it surfaces). A slot is
    /// not reused until its key has popped.
    slots: Vec<Option<(u64, E)>>,
    /// Slots whose key has surfaced, ready for reuse.
    free: Vec<u32>,
    /// Slots examined by `cancel` — the cost test pins cancellation at
    /// one probe per call (no slab walk).
    #[cfg(test)]
    pub(crate) cancel_probes: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    pub(crate) fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            #[cfg(test)]
            cancel_probes: 0,
        }
    }

    /// Pushes an entry and returns its slab slot — the placement hint
    /// the token carries so [`HeapQueue::cancel`] is one probe.
    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, event: E) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((seq, event));
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("fewer than 2^32 pending events");
                self.slots.push(Some((seq, event)));
                s
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
        slot
    }

    /// The `(time, seq)` key of the earliest live entry, purging
    /// cancelled heads on the way.
    #[inline]
    pub(crate) fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        while let Some(&Reverse((time, seq, slot))) = self.heap.peek() {
            if self.slots[slot as usize].is_some() {
                return Some((time, seq));
            }
            // Cancelled head: the dangling key just releases its slot.
            self.heap.pop();
            self.free.push(slot);
        }
        None
    }

    #[inline]
    pub(crate) fn pop_min(&mut self) -> Option<(SimTime, u64, E)> {
        while let Some(Reverse((time, seq, slot))) = self.heap.pop() {
            let payload = self.slots[slot as usize].take();
            self.free.push(slot);
            if let Some((stored_seq, event)) = payload {
                debug_assert_eq!(stored_seq, seq, "slot reused before its key popped");
                return Some((time, seq, event));
            }
        }
        None
    }

    /// Pops the earliest live entry only if it fires at or before
    /// `horizon`.
    #[inline]
    pub(crate) fn pop_min_at_or_before(&mut self, horizon_ns: u64) -> Option<(SimTime, u64, E)> {
        let (time, _) = self.peek_min()?;
        if time.as_nanos() > horizon_ns {
            return None;
        }
        self.pop_min()
    }

    /// The earliest live entry's firing time and a borrow of its
    /// payload — the look-before-you-pop the type-batched run loop
    /// needs to stop at a variant boundary without disturbing the
    /// queue.
    #[inline]
    pub(crate) fn peek_min_event(&mut self) -> Option<(SimTime, &E)> {
        let (time, _) = self.peek_min()?;
        let &Reverse((_, _, slot)) = self.heap.peek().expect("peek_min surfaced a live head");
        let (_, event) = self.slots[slot as usize]
            .as_ref()
            .expect("peek_min leaves a live head");
        Some((time, event))
    }

    /// Removes the entry with sequence number `seq`, returning it if it
    /// was pending. `slot` is the placement hint [`HeapQueue::push`]
    /// returned for this entry: one probe validates that the slot still
    /// holds this seq (slots recycle only after their key surfaces, and
    /// seqs are never reused, so a stale hint can only mismatch — never
    /// alias another live entry with the same seq).
    pub(crate) fn cancel(&mut self, seq: u64, slot: u32) -> Option<E> {
        #[cfg(test)]
        {
            self.cancel_probes += 1;
        }
        match self.slots.get_mut(slot as usize) {
            Some(s) if s.as_ref().is_some_and(|(stored, _)| *stored == seq) => {
                let (_, event) = s.take().expect("just matched");
                // The dangling heap key surfaces (and frees the slot) in
                // peek_min/pop_min.
                Some(event)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_entries_in_key_order() {
        let mut q = HeapQueue::new();
        q.push(SimTime::from_secs(2), 0, "late");
        q.push(SimTime::from_secs(1), 2, "tie-b");
        q.push(SimTime::from_secs(1), 1, "tie-a");
        assert_eq!(q.peek_min(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("tie-a"));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("tie-b"));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("late"));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn cancel_by_seq_and_slot_reuse() {
        let mut q = HeapQueue::new();
        let s0 = q.push(SimTime::from_secs(1), 0, 10);
        q.push(SimTime::from_secs(2), 1, 11);
        assert_eq!(q.cancel(0, s0), Some(10));
        assert_eq!(q.cancel(0, s0), None);
        assert_eq!(
            q.peek_min(),
            Some((SimTime::from_secs(2), 1)),
            "purges head"
        );
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(11));
        // Both slots recycled.
        q.push(SimTime::from_secs(3), 2, 12);
        q.push(SimTime::from_secs(3), 3, 13);
        assert_eq!(q.slots.len(), 2);
    }

    #[test]
    fn stale_or_forged_hints_never_cancel_the_wrong_entry() {
        let mut q = HeapQueue::new();
        let s0 = q.push(SimTime::from_secs(1), 0, 10);
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(10));
        // Slot 0 is recycled by a new entry; the old token's hint now
        // points at a different seq and must miss.
        let s1 = q.push(SimTime::from_secs(2), 1, 11);
        assert_eq!(s1, s0, "slot recycled");
        assert_eq!(q.cancel(0, s0), None);
        // Out-of-range hints are a miss, not a panic.
        assert_eq!(q.cancel(1, 999), None);
        assert_eq!(q.cancel(1, s1), Some(11));
    }

    /// The satellite contract: cancelling against a 10k-entry slab is
    /// one slot probe per cancel, not an O(pending) seq-walk. Mirrors
    /// the calendar backend's `cancel_cost_is_bucket_local_on_a_10k_wheel`.
    #[test]
    fn cancel_cost_is_one_probe_on_a_10k_slab() {
        let n: u64 = 10_000;
        let mut q = HeapQueue::new();
        let slots: Vec<u32> = (0..n)
            .map(|i| q.push(SimTime::from_nanos(1_000 + i * 7), i, i))
            .collect();
        q.cancel_probes = 0;
        for (i, &slot) in slots.iter().enumerate() {
            assert_eq!(q.cancel(i as u64, slot), Some(i as u64));
        }
        assert_eq!(
            q.cancel_probes, n,
            "each of the {n} cancels must probe exactly one slot"
        );
        assert_eq!(q.pop_min(), None, "everything was cancelled");
    }

    #[test]
    fn peek_min_event_sees_the_live_head_through_cancelled_keys() {
        let mut q = HeapQueue::new();
        let s0 = q.push(SimTime::from_secs(1), 0, "cancelled");
        q.push(SimTime::from_secs(1), 1, "head");
        q.push(SimTime::from_secs(2), 2, "late");
        q.cancel(0, s0);
        assert_eq!(q.peek_min_event(), Some((SimTime::from_secs(1), &"head")));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some("head"));
        assert_eq!(q.peek_min_event(), Some((SimTime::from_secs(2), &"late")));
    }
}
