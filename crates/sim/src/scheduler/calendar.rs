//! The calendar-queue backend: a bucketed timing wheel with an overflow
//! ladder, giving O(1) amortized push/pop for the near-future event mass
//! a discrete-event simulation generates.
//!
//! Events are bucketed by `time >> shift` (bucket width is a power of two
//! nanoseconds). The wheel covers `n_buckets` consecutive bucket indices
//! starting at a monotonically advancing `cursor`; events beyond that
//! span wait in a binary-heap *overflow ladder* and surface when their
//! time comes. The bucket width is retuned from the observed inter-event
//! gap (an EMA over pop-to-pop time advances) whenever the structure
//! resizes, so occupancy stays near a few events per bucket across
//! workload phases.
//!
//! Unlike the binary-heap reference (whose sift operations move an entry
//! O(log n) times, so it keeps payloads in a side slab), a calendar entry
//! moves O(1) times — into its bucket, within the one-time bucket sort,
//! and out — so payloads live **inline** in the buckets: no slab, no
//! free-list, no per-event indirection.
//!
//! Ordering is the same `(time, seq)` total order as the heap backend:
//! within the active bucket, entries are kept sorted (descending, so the
//! minimum pops from the tail in O(1)); across buckets, the cursor walk
//! and the single-lap invariant make the first non-empty bucket hold the
//! minimum; the overflow top is compared against the wheel candidate on
//! every peek. Property tests drive this backend and the heap through
//! identical interleavings and require identical pop sequences.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: the `(time, seq)` ordering key plus the payload.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Overflow-ladder wrapper: min-heap order on `(time, seq)` only (the
/// payload takes no part in ordering, and `E` need not be `Ord`).
#[derive(Debug)]
struct Ladder<E>(Entry<E>);

impl<E> PartialEq for Ladder<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for Ladder<E> {}
impl<E> PartialOrd for Ladder<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Ladder<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest on top.
        other.0.key().cmp(&self.0.key())
    }
}

/// Where the cached minimum lives (so `pop_min` after `peek_min` is O(1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MinLoc {
    /// Tail of the (sorted) wheel bucket at this index.
    Wheel(usize),
    /// Top of the overflow ladder.
    Overflow,
}

/// Calendar queue over `(time, seq, event)` entries. See the module docs.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    /// The wheel. `buckets[i]` holds entries whose (cursor-clamped)
    /// absolute bucket index `b` satisfies `b & mask == i` and
    /// `cursor <= b < cursor + n_buckets` — one lap only, never two.
    buckets: Vec<Vec<Entry<E>>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width exponent: a bucket spans `1 << shift` nanoseconds.
    shift: u32,
    /// Absolute index of the wheel's current bucket. Only advances (the
    /// facade never schedules below the last popped time).
    cursor: u64,
    /// Whether `buckets[cursor & mask]` is currently sorted descending.
    sorted: bool,
    /// Entries beyond the wheel span, min-heap ordered.
    overflow: BinaryHeap<Ladder<E>>,
    /// Number of entries in the wheel (excluding overflow).
    wheel_len: usize,
    /// Total entries (wheel + overflow).
    len: usize,
    /// Time of the last popped entry, in ns — the facade guarantees no
    /// future push below this, which is what lets `cursor` only advance.
    floor_ns: u64,
    /// Exponential moving average of the observed inter-pop gap, in ns
    /// (the resize policy's width signal). Zero until the first gap.
    gap_ema_ns: u64,
    /// Cached key and location of the current minimum (valid until a push
    /// undercuts it, a pop consumes it, or a cancel hits).
    cached: Option<((SimTime, u64), MinLoc)>,
    /// Pushes+pops since the last rebuild (rebuild-thrash guard).
    ops_since_rebuild: u64,
    /// Countdown to the next resize-policy evaluation: the grow/retune
    /// conditions are consulted once per [`RESIZE_CHECK_PERIOD`] pushes
    /// instead of on every push, keeping the fast path branch-light. The
    /// wheel can overshoot its target occupancy by at most one period —
    /// noise against the 8× grow threshold.
    resize_check_in: u32,
    /// Total rebuilds (monitoring/debugging aid, exercised in tests).
    rebuilds: u64,
    /// Entries examined by `cancel` probes (test-only cost pin).
    #[cfg(test)]
    cancel_probes: u64,
}

/// Smallest wheel: 64 buckets.
const MIN_BUCKETS: usize = 64;
/// Largest wheel: 2^20 buckets — only reachable with ~8 million pending
/// events.
const MAX_BUCKETS: usize = 1 << 20;
/// Narrowest bucket: 2^10 ns ≈ 1 µs.
const MIN_SHIFT: u32 = 10;
/// Widest bucket: 2^34 ns ≈ 17 s.
const MAX_SHIFT: u32 = 34;
/// Consecutive empty buckets scanned before giving up and jumping the
/// cursor straight to the wheel's true minimum.
const SCAN_LIMIT: u64 = 256;
/// Pushes between resize-policy evaluations.
const RESIZE_CHECK_PERIOD: u32 = 256;

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: std::iter::repeat_with(Vec::new).take(MIN_BUCKETS).collect(),
            mask: MIN_BUCKETS - 1,
            // 2^20 ns ≈ 1 ms: a sane width before any gap has been
            // observed; the first rebuild replaces it with a tuned one.
            shift: 20,
            cursor: 0,
            sorted: false,
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
            floor_ns: 0,
            gap_ema_ns: 0,
            cached: None,
            ops_since_rebuild: 0,
            resize_check_in: RESIZE_CHECK_PERIOD,
            rebuilds: 0,
            #[cfg(test)]
            cancel_probes: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// How many times the wheel has been retuned (test/monitoring aid).
    #[cfg(test)]
    pub(crate) fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total entry capacity across the wheel's buckets (test aid: pins
    /// the drained-bucket release policy).
    #[cfg(test)]
    pub(crate) fn wheel_capacity(&self) -> usize {
        self.buckets.iter().map(|b| b.capacity()).sum()
    }

    fn n_buckets(&self) -> usize {
        self.mask + 1
    }

    /// Absolute bucket index an entry files under, clamped to the cursor:
    /// an entry may legitimately be earlier than the cursor's window (the
    /// cursor skips empty buckets during peeks, and a later push may
    /// target the gap) — such entries join the *current* bucket, which
    /// keeps the "first non-empty bucket holds the minimum" invariant
    /// intact because they are earlier than everything beyond it.
    fn bucket_index(&self, time: SimTime) -> u64 {
        (time.as_nanos() >> self.shift).max(self.cursor)
    }

    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.resize_check_in -= 1;
        if self.resize_check_in == 0 {
            self.resize_check_in = RESIZE_CHECK_PERIOD;
            if self.len >= 8 * self.n_buckets() && self.n_buckets() < MAX_BUCKETS {
                self.rebuild();
            } else if self.overflow.len() > self.len / 2
                && self.len > 128
                && self.ops_since_rebuild > 4 * self.n_buckets() as u64
            {
                // The wheel span missed the workload's horizon: most
                // entries sit in the overflow ladder degrading to heap
                // behavior. Retune.
                self.rebuild();
            }
        }
        self.ops_since_rebuild += 1;
        let key = (time, seq);
        let entry = Entry { time, seq, event };
        let ab = self.bucket_index(time);
        if ab >= self.cursor + self.n_buckets() as u64 {
            self.overflow.push(Ladder(entry));
        } else {
            let idx = (ab & self.mask as u64) as usize;
            let bucket = &mut self.buckets[idx];
            if self.sorted && idx == (self.cursor & self.mask as u64) as usize {
                // Keep the active bucket pop-ready: insert in descending
                // position. Same-time entries carry fresh (largest) seqs,
                // so the insertion point is near the tail — cheap memmove.
                let pos = bucket.partition_point(|e| e.key() > key);
                bucket.insert(pos, entry);
            } else {
                bucket.push(entry);
            }
            self.wheel_len += 1;
        }
        self.len += 1;
        // Only an entry undercutting the cached minimum invalidates it: a
        // later one cannot displace the minimum, and a same-bucket insert
        // keeps the minimum at the sorted bucket's tail.
        if let Some((cached_min, _)) = self.cached {
            if key < cached_min {
                self.cached = None;
            }
        }
    }

    /// The `(time, seq)` key of the earliest entry, without removing it.
    /// Advances the cursor past empty buckets and caches the hit so the
    /// `pop_min` that follows is O(1).
    #[inline]
    pub(crate) fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        if let Some((key, _)) = self.cached {
            return Some(key);
        }
        if self.len == 0 {
            return None;
        }
        let overflow_top = self.overflow.peek().map(|l| l.0.key());
        if self.wheel_len == 0 {
            let key = overflow_top?;
            // Drag the wheel to the ladder's position so pushes near this
            // entry land in buckets again.
            self.advance_cursor(key.0.as_nanos() >> self.shift);
            self.cached = Some((key, MinLoc::Overflow));
            return Some(key);
        }
        let mut scanned = 0u64;
        loop {
            // The current bucket is checked BEFORE any overflow early
            // exit: cursor-clamped entries (pushed below the cursor's
            // window after the cursor skipped their bucket) live only in
            // the current bucket and may undercut an overflow entry whose
            // bucket the cursor already passed.
            let idx = (self.cursor & self.mask as u64) as usize;
            if !self.buckets[idx].is_empty() {
                if !self.sorted {
                    // Sort descending once per bucket visit: the minimum
                    // then pops from the tail, and the quadratic
                    // scan-per-pop of naive calendar buckets never forms.
                    self.buckets[idx].sort_unstable_by(|a, b| b.key().cmp(&a.key()));
                    self.sorted = true;
                }
                let wheel_min = self.buckets[idx].last().expect("non-empty").key();
                let (key, loc) = match overflow_top {
                    Some(o) if o < wheel_min => (o, MinLoc::Overflow),
                    _ => (wheel_min, MinLoc::Wheel(idx)),
                };
                self.cached = Some((key, loc));
                return Some(key);
            }
            // Current bucket empty: every remaining wheel entry sits in a
            // strictly later bucket (clamped entries only ever occupy the
            // current one), so its time is at least `(cursor+1) << shift`
            // — an overflow top at or before the cursor's bucket is the
            // minimum.
            if let Some(o) = overflow_top {
                if (o.0.as_nanos() >> self.shift) <= self.cursor {
                    self.cached = Some((o, MinLoc::Overflow));
                    return Some(o);
                }
            }
            self.advance_cursor(self.cursor + 1);
            scanned += 1;
            if scanned >= SCAN_LIMIT {
                // Sparse stretch: jump straight to the wheel's minimum
                // instead of strolling bucket by bucket.
                let target = self
                    .wheel_min_bucket()
                    .expect("wheel_len > 0 means an entry exists");
                self.advance_cursor(target);
                scanned = 0;
            }
        }
    }

    /// Pops the earliest entry only if it fires at or before `horizon` —
    /// the fused peek-then-pop of a bounded run loop.
    #[inline]
    pub(crate) fn pop_min_at_or_before(&mut self, horizon_ns: u64) -> Option<(SimTime, u64, E)> {
        let (time, _) = match self.cached {
            Some((key, _)) => key,
            None => self.peek_min()?,
        };
        if time.as_nanos() > horizon_ns {
            return None;
        }
        self.pop_min()
    }

    #[inline]
    pub(crate) fn pop_min(&mut self) -> Option<(SimTime, u64, E)> {
        let loc = match self.cached {
            Some((_, loc)) => loc,
            None => {
                self.peek_min()?;
                self.cached.expect("peek_min caches on success").1
            }
        };
        let entry = match loc {
            MinLoc::Wheel(idx) => {
                self.wheel_len -= 1;
                let e = self.buckets[idx].pop().expect("cached wheel min exists");
                Self::release_if_drained(&mut self.buckets[idx]);
                e
            }
            MinLoc::Overflow => self.overflow.pop().expect("cached overflow min exists").0,
        };
        self.len -= 1;
        self.cached = None;
        let t = entry.time.as_nanos();
        debug_assert!(t >= self.floor_ns, "pop order went backwards");
        // EMA over pop-to-pop time advances: the live estimate of the
        // event stream's inter-event gap, robust against the long-horizon
        // timer tail that skews pending-set-spread estimates.
        let delta = t - self.floor_ns;
        self.gap_ema_ns = self.gap_ema_ns - self.gap_ema_ns / 16 + delta / 16;
        self.floor_ns = t;
        self.ops_since_rebuild += 1;
        if self.len < self.n_buckets() / 4 && self.n_buckets() > MIN_BUCKETS {
            self.rebuild();
        }
        Some((entry.time, entry.seq, entry.event))
    }

    /// The earliest entry's firing time and a borrow of its payload —
    /// the look-before-you-pop the type-batched run loop needs to stop
    /// at a variant boundary without disturbing the queue. Caches the
    /// position exactly like [`Self::peek_min`], so the `pop_min` that
    /// follows a hit is O(1).
    #[inline]
    pub(crate) fn peek_min_event(&mut self) -> Option<(SimTime, &E)> {
        self.peek_min()?;
        let ((time, _), loc) = self.cached.expect("peek_min caches on success");
        let entry = match loc {
            MinLoc::Wheel(idx) => self.buckets[idx].last().expect("cached wheel min exists"),
            MinLoc::Overflow => &self.overflow.peek().expect("cached overflow min exists").0,
        };
        Some((time, &entry.event))
    }

    /// Removes the entry with sequence number `seq` scheduled at `time`,
    /// returning it if it was pending.
    ///
    /// The firing time pins the search to one bucket. Invariant: a live
    /// wheel entry's absolute bucket is exactly `max(time >> shift,
    /// cursor)` — it files there ([`Self::bucket_index`] clamps exactly
    /// so), rebuilds refile it with the same clamp, and the cursor never
    /// advances past a non-empty bucket (the peek scan stops at the
    /// first occupied one and the sparse jump targets the wheel
    /// minimum). So cancellation probes that single bucket, falling back
    /// to the overflow ladder, instead of walking every bucket — which
    /// made spec-driven teardown of large pending timer sets (fault
    /// plans) quadratic. A 10k-pending test pins the cost.
    pub(crate) fn cancel(&mut self, seq: u64, time: SimTime) -> Option<E> {
        let ab = self.bucket_index(time);
        if ab < self.cursor + self.n_buckets() as u64 {
            let idx = (ab & self.mask as u64) as usize;
            #[cfg(test)]
            {
                self.cancel_probes += self.buckets[idx].len() as u64;
            }
            let bucket = &mut self.buckets[idx];
            if let Some(pos) = bucket.iter().position(|e| e.seq == seq) {
                debug_assert_eq!(bucket[pos].time, time, "token time differs from entry");
                // `remove` (not swap_remove) keeps a sorted active bucket
                // sorted; elsewhere order within the bucket is free.
                let entry = bucket.remove(pos);
                Self::release_if_drained(bucket);
                self.wheel_len -= 1;
                self.len -= 1;
                self.cached = None;
                return Some(entry.event);
            }
        }
        // Not in the wheel bucket its time names: the entry is either
        // riding the overflow ladder (filed before the span reached it)
        // or has already fired / been cancelled.
        #[cfg(test)]
        {
            self.cancel_probes += self.overflow.len() as u64;
        }
        if self.overflow.iter().any(|l| l.0.seq == seq) {
            let mut found = None;
            let drained: Vec<Ladder<E>> = std::mem::take(&mut self.overflow).into_vec();
            for l in drained {
                if l.0.seq == seq {
                    found = Some(l.0.event);
                } else {
                    self.overflow.push(l);
                }
            }
            self.len -= 1;
            self.cached = None;
            return found;
        }
        None
    }

    /// Frees a drained bucket's backing allocation once it grew past the
    /// minimal first-push capacity. Periodic timer populations (metro:
    /// millions of ticks on 5 s / 60 s cadences) sweep an occupancy wave
    /// across the wheel lap after lap; without this, every bucket the
    /// wave ever touched would keep its spike capacity forever and the
    /// wheel's footprint would grow linearly in simulated time (~40 B per
    /// event at metro scale). Buckets that stay at the minimal capacity —
    /// the active bucket oscillating under a same-instant packet chain —
    /// are left alone, so the hot path never churns the allocator.
    fn release_if_drained(bucket: &mut Vec<Entry<E>>) {
        if bucket.is_empty() && bucket.capacity() > 4 {
            *bucket = Vec::new();
        }
    }

    /// Moves the cursor forward, never backward, resetting the
    /// sorted-bucket flag when the active bucket changes.
    fn advance_cursor(&mut self, to: u64) {
        if to > self.cursor {
            self.cursor = to;
            self.sorted = false;
        }
    }

    /// Absolute bucket index of the earliest entry in the wheel (full
    /// scan; used only by the sparse-stretch jump).
    fn wheel_min_bucket(&self) -> Option<u64> {
        self.buckets
            .iter()
            .flatten()
            .map(|e| e.time.as_nanos() >> self.shift)
            .min()
            .map(|b| b.max(self.cursor))
    }

    /// Re-tunes bucket count and width from observed behavior and refiles
    /// every entry. Width = the observed inter-event gap — the EMA of
    /// pop-to-pop time advances, falling back to pending-set spread over
    /// pending count before any pops — widened 4× so the once-per-bucket
    /// sort amortizes over several pops; bucket count ≈ half the pending
    /// count, so the wheel spans about twice the pending event mass's
    /// horizon.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        entries.extend(
            std::mem::take(&mut self.overflow)
                .into_vec()
                .into_iter()
                .map(|l| l.0),
        );
        let n = entries.len().max(1);
        let new_n_buckets = (n / 2).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        let gap = if self.gap_ema_ns > 0 {
            self.gap_ema_ns
        } else {
            let min_ns = entries.iter().map(|e| e.time.as_nanos()).min();
            let max_ns = entries.iter().map(|e| e.time.as_nanos()).max();
            let spread = match (min_ns, max_ns) {
                (Some(lo), Some(hi)) => hi - lo,
                _ => 0,
            };
            (spread / n as u64).max(1)
        };
        // Round the observed gap up to the next power of two, then widen
        // by 4× (see the occupancy note above).
        self.shift =
            ((u64::BITS - (gap - 1).leading_zeros()).max(1) + 2).clamp(MIN_SHIFT, MAX_SHIFT);
        if self.buckets.len() != new_n_buckets {
            self.buckets = std::iter::repeat_with(Vec::new)
                .take(new_n_buckets)
                .collect();
        }
        self.mask = new_n_buckets - 1;
        self.cursor = self.floor_ns >> self.shift;
        self.sorted = false;
        self.wheel_len = 0;
        self.len = 0;
        self.cached = None;
        self.ops_since_rebuild = 0;
        self.rebuilds += 1;
        for entry in entries {
            let ab = self.bucket_index(entry.time);
            if ab >= self.cursor + self.n_buckets() as u64 {
                self.overflow.push(Ladder(entry));
            } else {
                self.buckets[(ab & self.mask as u64) as usize].push(entry);
                self.wheel_len += 1;
            }
            self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(SimTime, u64, u64)> {
        std::iter::from_fn(|| q.pop_min()).collect()
    }

    #[test]
    fn pops_entries_in_time_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(2_000), 0, 10);
        q.push(SimTime::from_nanos(1_000), 1, 11);
        q.push(SimTime::from_nanos(1_000), 2, 12);
        q.push(SimTime::from_nanos(3_000), 3, 13);
        assert_eq!(q.peek_min(), Some((SimTime::from_nanos(1_000), 1)));
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, vec![11, 12, 10, 13]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_future_entries_take_the_overflow_ladder_and_return() {
        let mut q = CalendarQueue::new();
        // Far beyond the fresh wheel's span (64 buckets × 1 ms).
        q.push(SimTime::from_nanos(3_600_000_000_000), 0, 1);
        q.push(SimTime::from_nanos(1_000), 1, 2);
        assert_eq!(q.overflow.len(), 1, "distant entry must ride the ladder");
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(2));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(1));
    }

    #[test]
    fn push_below_cursor_window_still_pops_first() {
        // Peeking advances the cursor past empty buckets; a later push may
        // target the skipped gap and must still pop before everything else.
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(1_000), 0, 0);
        assert!(q.pop_min().is_some());
        q.push(SimTime::from_nanos(500_000_000), 1, 1);
        assert_eq!(q.peek_min(), Some((SimTime::from_nanos(500_000_000), 1)));
        q.push(SimTime::from_nanos(2_000), 2, 2); // earlier than the cursor
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(2));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(1));
    }

    #[test]
    fn growth_triggers_rebuild_and_order_survives() {
        let mut q = CalendarQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            // Scatter: mixed near and far, with same-time ties.
            q.push(SimTime::from_nanos((i % 97) * 1_000_000 + (i / 97)), i, i);
        }
        assert!(q.rebuilds() > 0, "10k entries must outgrow 64 buckets");
        let popped = drain(&mut q);
        assert_eq!(popped.len(), n as usize);
        for w in popped.windows(2) {
            assert!(
                (w[0].0, w[0].1) < (w[1].0, w[1].1),
                "pop order must be strictly increasing"
            );
        }
    }

    #[test]
    fn shrink_rebuild_keeps_remaining_entries() {
        let mut q = CalendarQueue::new();
        for i in 0..4_096u64 {
            q.push(SimTime::from_nanos(i * 10_000), i, i);
        }
        for i in 0..4_000u64 {
            assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(i));
        }
        assert_eq!(q.len(), 96);
        for i in 4_000..4_096u64 {
            assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(i));
        }
    }

    #[test]
    fn interleaved_peek_push_pop_stays_consistent() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(5_000), 0, 0);
        assert_eq!(q.peek_min(), Some((SimTime::from_nanos(5_000), 0)));
        q.push(SimTime::from_nanos(1_000), 1, 1); // undercuts the cache
        assert_eq!(q.peek_min(), Some((SimTime::from_nanos(1_000), 1)));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(1));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(0));
    }

    #[test]
    fn cancel_removes_from_wheel_and_ladder() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(1_000), 0, 0);
        q.push(SimTime::from_nanos(2_000), 1, 1);
        q.push(SimTime::from_nanos(3_600_000_000_000), 2, 2); // ladder
        assert_eq!(q.cancel(0, SimTime::from_nanos(1_000)), Some(0));
        assert_eq!(q.cancel(0, SimTime::from_nanos(1_000)), None, "cancelled");
        assert_eq!(
            q.cancel(2, SimTime::from_nanos(3_600_000_000_000)),
            Some(2),
            "ladder entry cancellable"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(1));
        assert_eq!(q.cancel(1, SimTime::from_nanos(2_000)), None, "popped");
    }

    #[test]
    fn cancel_finds_entries_clamped_below_the_cursor() {
        // A push below the cursor's window files into the *current*
        // bucket; its cancel hint must clamp the same way.
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(1_000), 0, 0);
        assert!(q.pop_min().is_some());
        q.push(SimTime::from_nanos(500_000_000), 1, 1);
        assert!(q.peek_min().is_some()); // drags the cursor forward
        q.push(SimTime::from_nanos(2_000), 2, 2); // clamped entry
        assert_eq!(q.cancel(2, SimTime::from_nanos(2_000)), Some(2));
        assert_eq!(q.pop_min().map(|(_, _, e)| e), Some(1));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn cancel_cost_is_bucket_local_on_a_10k_wheel() {
        // Teardown of a large pending set (a spec-driven fault plan)
        // cancels every timer. The bucket hint makes that linear: the
        // old full-wheel walk examined O(pending) entries per cancel,
        // ~n²/2 ≈ 5·10⁷ total here; bucket-local probing stays within a
        // small constant per cancel.
        let mut q = CalendarQueue::new();
        let n: u64 = 10_000;
        for i in 0..n {
            q.push(SimTime::from_nanos(i * 50_000), i, i);
        }
        assert!(q.rebuilds() > 0, "10k entries must have retuned the wheel");
        for i in 0..n {
            assert_eq!(q.cancel(i, SimTime::from_nanos(i * 50_000)), Some(i));
        }
        assert_eq!(q.len(), 0);
        assert!(
            q.cancel_probes <= 40 * n,
            "cancel examined {} entries across {n} cancels — not bucket-local",
            q.cancel_probes
        );
    }

    #[test]
    fn clamped_entry_beats_overflow_entry_whose_bucket_the_cursor_passed() {
        // Regression: with the default 64-bucket/2^20ns wheel, an entry
        // pushed beyond the span rides the overflow ladder. Once the
        // cursor walks PAST that entry's bucket (it advances before the
        // overflow early-exit fires), a later push clamped into the
        // cursor's bucket may be earlier than the overflow top. The peek
        // must compare the current bucket before trusting the ladder —
        // taking the ladder entry first popped time backwards.
        const B: u64 = 1 << 20; // bucket width
        let mut q = CalendarQueue::new();
        // Anchor the floor, then seed the ladder while the span is [0,64).
        q.push(SimTime::from_nanos(1_000), 0, 0);
        assert!(q.pop_min().is_some());
        q.push(SimTime::from_nanos(66 * B + 10), 1, 1); // bucket 66: ladder
                                                        // A wheel entry at bucket 17, popped to drag the cursor forward,
                                                        // then one at bucket 80 (inside the new span) so the wheel stays
                                                        // non-empty while the scan walks toward the ladder entry.
        q.push(SimTime::from_nanos(17 * B + 1), 2, 2);
        assert_eq!(q.pop_min().map(|(_, s, _)| s), Some(2));
        q.push(SimTime::from_nanos(80 * B + 1), 3, 3);
        // The scan advances past bucket 66 (empty) before concluding the
        // ladder entry is next; the cursor now sits beyond it.
        assert_eq!(q.peek_min(), Some((SimTime::from_nanos(66 * B + 10), 1)));
        // A fresh push just above the floor clamps into the cursor's
        // bucket — and is EARLIER than the ladder entry.
        q.push(SimTime::from_nanos(17 * B + 2), 4, 4);
        assert_eq!(q.pop_min().map(|(_, s, _)| s), Some(4), "clamped first");
        assert_eq!(q.pop_min().map(|(_, s, _)| s), Some(1), "ladder second");
        assert_eq!(q.pop_min().map(|(_, s, _)| s), Some(3));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn drained_buckets_release_spike_capacity() {
        // Periodic timer populations sweep an occupancy wave across the
        // wheel: each bucket fills with a spike of entries once per lap,
        // drains, and is not refilled until the next lap. If a drained
        // bucket kept its spike capacity, a wheel too large to lap within
        // the run (metro: 2^20 buckets) would ratchet its footprint
        // linearly in simulated time. Model one wave bucket directly: a
        // same-bucket burst plus spread-out ballast, then drain the burst.
        let mut q = CalendarQueue::new();
        let n = 1_000u64;
        for i in 0..n {
            q.push(SimTime::from_nanos(1_000 + i), i, i); // one hot bucket
        }
        for i in 0..n {
            // Ballast keeps `len` above the shrink-rebuild threshold
            // while the burst drains.
            q.push(SimTime::from_nanos(10_000_000 + i * 10_000), n + i, n + i);
        }
        let before = q.wheel_capacity();
        for _ in 0..n {
            q.pop_min().expect("burst entry");
        }
        let after = q.wheel_capacity();
        assert_eq!(q.len(), n as usize, "only the burst was drained");
        assert!(
            after + 512 <= before,
            "draining a {n}-entry bucket must release its allocation \
             (capacity before {before}, after {after})"
        );
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(1_000), 0, 0);
        q.push(SimTime::from_nanos(5_000), 1, 1);
        assert_eq!(q.pop_min_at_or_before(3_000).map(|(_, _, e)| e), Some(0));
        assert_eq!(q.pop_min_at_or_before(3_000), None);
        assert_eq!(q.pop_min_at_or_before(5_000).map(|(_, _, e)| e), Some(1));
    }
}
