//! The pending-event set: `(time, seq)`-ordered events behind a
//! selectable backend — a calendar queue (bucketed timing wheel, O(1)
//! amortized, the default) or a binary heap (the reference).

mod calendar;
mod heap;

use crate::event::{EventToken, ScheduledEvent};
use crate::time::{SimDuration, SimTime};
use calendar::CalendarQueue;
use heap::HeapQueue;

/// Which ordering backend a [`Scheduler`] uses. Both implement the exact
/// same `(time, seq)` total order — property tests drive them through
/// identical schedule/cancel/pop interleavings and demand identical pop
/// sequences — so the choice is purely a performance one and can be made
/// per world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Bucketed timing wheel with an overflow ladder: O(1) amortized
    /// push/pop, bucket width self-tuned from the observed inter-event
    /// gap, payloads inline in the buckets. The right choice for
    /// simulation event loops.
    #[default]
    Calendar,
    /// Binary heap over small keys with a payload slab: O(log n)
    /// push/pop. The reference backend, and the safe harbor for tiny or
    /// wildly irregular schedules.
    Heap,
}

/// The ordering backend (enum dispatch: two variants, statically known).
#[derive(Debug)]
enum KeyQueue<E> {
    Calendar(CalendarQueue<E>),
    Heap(HeapQueue<E>),
}

impl<E> KeyQueue<E> {
    /// Pushes an entry, returning the backend's placement hint for the
    /// token (the heap's slab slot; the calendar needs none — its hint
    /// is the firing time itself).
    #[inline]
    fn push(&mut self, time: SimTime, seq: u64, event: E) -> u32 {
        match self {
            KeyQueue::Calendar(q) => {
                q.push(time, seq, event);
                0
            }
            KeyQueue::Heap(q) => q.push(time, seq, event),
        }
    }

    #[inline]
    fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        match self {
            KeyQueue::Calendar(q) => q.peek_min(),
            KeyQueue::Heap(q) => q.peek_min(),
        }
    }

    #[inline]
    fn pop_min(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            KeyQueue::Calendar(q) => q.pop_min(),
            KeyQueue::Heap(q) => q.pop_min(),
        }
    }

    #[inline]
    fn pop_min_at_or_before(&mut self, horizon_ns: u64) -> Option<(SimTime, u64, E)> {
        match self {
            KeyQueue::Calendar(q) => q.pop_min_at_or_before(horizon_ns),
            KeyQueue::Heap(q) => q.pop_min_at_or_before(horizon_ns),
        }
    }

    /// The earliest entry's firing time and a borrow of its payload.
    #[inline]
    fn peek_min_event(&mut self) -> Option<(SimTime, &E)> {
        match self {
            KeyQueue::Calendar(q) => q.peek_min_event(),
            KeyQueue::Heap(q) => q.peek_min_event(),
        }
    }

    fn cancel(&mut self, seq: u64, time: SimTime, slot: u32) -> Option<E> {
        match self {
            // The calendar jumps to the bucket the firing time names;
            // the heap probes the one slab slot the token's hint names.
            KeyQueue::Calendar(q) => q.cancel(seq, time),
            KeyQueue::Heap(q) => q.cancel(seq, slot),
        }
    }
}

/// Priority queue of future events.
///
/// Events are ordered by `(time, seq)` — deterministic FIFO among
/// simultaneous events. The backend is selectable per scheduler
/// ([`SchedulerKind`]): the default calendar queue stores events inline
/// in timing-wheel buckets and makes push/pop O(1) amortized; the binary
/// heap remains as the O(log n) reference.
///
/// Cancellation by [`EventToken`] carries no per-event bookkeeping on
/// the schedule/pop fast path: the token's firing time steers the
/// calendar backend to the single bucket the event can occupy (the heap
/// reference still walks its slab). Cancelling a token that already
/// fired (or was already cancelled) is recognized and rejected rather
/// than corrupting [`Scheduler::len`].
///
/// ```
/// use mtnet_sim::{Scheduler, SimTime};
/// let mut q: Scheduler<&str> = Scheduler::new();
/// q.schedule_at(SimTime::from_secs(2), "b");
/// let tok = q.schedule_at(SimTime::from_secs(1), "a");
/// q.cancel(tok);
/// let next = q.pop().unwrap();
/// assert_eq!(next.into_event(), "b");
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: KeyQueue<E>,
    /// Number of pending events (cancels remove eagerly, so this is the
    /// backend's true population).
    live: usize,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero with the default
    /// (calendar-queue) backend.
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::default())
    }

    /// Creates an empty scheduler with an explicit ordering backend.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        Scheduler {
            queue: match kind {
                SchedulerKind::Calendar => KeyQueue::Calendar(CalendarQueue::new()),
                SchedulerKind::Heap => KeyQueue::Heap(HeapQueue::new()),
            },
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Which ordering backend this scheduler runs on.
    pub fn kind(&self) -> SchedulerKind {
        match self.queue {
            KeyQueue::Calendar(_) => SchedulerKind::Calendar,
            KeyQueue::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled (monitoring/debugging aid).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever cancelled.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Scheduling in the past is clamped to `now` (the event fires next, in
    /// scheduling order); this keeps zero-delay message chains simple.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        let slot = self.queue.push(time, seq, event);
        EventToken { seq, time, slot }
    }

    /// Schedules `event` after the given delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `true` if the token was live —
    /// tokens that never existed, already fired, or were already cancelled
    /// are rejected without perturbing the event count.
    ///
    /// The token pins the search: the calendar backend probes the one
    /// bucket the firing time names (plus the overflow ladder) and the
    /// heap backend the one slab slot the token's placement hint names,
    /// so tearing down a large set of pending timers — e.g. a
    /// spec-driven fault plan — stays linear in the number of
    /// cancellations rather than quadratic on either backend. Events
    /// already taken by [`Scheduler::take_run_at_or_before`] are
    /// committed, exactly like a popped event.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.seq >= self.next_seq {
            return false;
        }
        match self.queue.cancel(token.seq, token.time, token.slot) {
            Some(_) => {
                self.live -= 1;
                self.cancelled_total += 1;
                true
            }
            None => false, // already fired or already cancelled
        }
    }

    /// Pops the next event, advancing `now` to its firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let (time, seq, event) = self.queue.pop_min()?;
        self.live -= 1;
        self.now = time;
        Some(ScheduledEvent { time, seq, event })
    }

    /// Pops the next event only if it fires at or before `horizon` — one
    /// queue walk for the peek-then-pop pattern of a bounded run loop
    /// (the calendar backend caches the peeked position, so the pop that
    /// follows is O(1)).
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        let (time, seq, event) = self.queue.pop_min_at_or_before(horizon.as_nanos())?;
        self.live -= 1;
        self.now = time;
        Some(ScheduledEvent { time, seq, event })
    }

    /// Firing time of the next event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_min().map(|(time, _)| time)
    }

    /// Fills `out` with the next *run* — the maximal sequence of
    /// consecutive same-variant events at the earliest pending timestamp
    /// (capped at `max`) — and advances `now` to that timestamp.
    /// Returns the run length; `0` means nothing fires at or before
    /// `horizon`.
    ///
    /// This is the type-batched dispatch path. Both backends surface
    /// same-time ties in seq order already, so the run is built by
    /// popping directly while the next entry keeps the run's timestamp
    /// and [`std::mem::discriminant`] — no staging buffer, no re-sort,
    /// and the peek that stops the run leaves the backend's cached
    /// position warm for the next call. Order is exactly the
    /// one-at-a-time order: runs never reorder across a variant boundary
    /// or a timestamp. Events in a returned run are committed (fired)
    /// from the scheduler's point of view — exactly like popped events —
    /// while everything not yet handed out stays resident and
    /// cancellable.
    pub fn take_run_at_or_before(&mut self, horizon: SimTime, max: u64, out: &mut Vec<E>) -> usize {
        out.clear();
        if max == 0 {
            return 0;
        }
        let Some((time, _, first)) = self.queue.pop_min_at_or_before(horizon.as_nanos()) else {
            return 0;
        };
        let disc = std::mem::discriminant(&first);
        out.push(first);
        while (out.len() as u64) < max {
            match self.queue.peek_min_event() {
                Some((t, ev)) if t == time && std::mem::discriminant(ev) == disc => {
                    let (_, _, ev) = self.queue.pop_min().expect("just peeked a live entry");
                    out.push(ev);
                }
                _ => break,
            }
        }
        self.live -= out.len();
        self.now = time;
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every facade test runs against both backends: the suite itself is
    /// an equivalence check (the randomized version lives in the
    /// integration property tests).
    fn both(test: impl Fn(SchedulerKind)) {
        test(SchedulerKind::Calendar);
        test(SchedulerKind::Heap);
    }

    #[test]
    fn default_kind_is_calendar() {
        let q: Scheduler<()> = Scheduler::new();
        assert_eq!(q.kind(), SchedulerKind::Calendar);
        let h: Scheduler<()> = Scheduler::with_kind(SchedulerKind::Heap);
        assert_eq!(h.kind(), SchedulerKind::Heap);
    }

    #[test]
    fn pops_in_time_order() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(3), 3);
            q.schedule_at(SimTime::from_secs(1), 1);
            q.schedule_at(SimTime::from_secs(2), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn simultaneous_events_fifo() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn now_advances_with_pop() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(5), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(5));
        });
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(5), "first");
            q.pop();
            q.schedule_at(SimTime::from_secs(1), "late");
            let e = q.pop().unwrap();
            assert_eq!(e.time(), SimTime::from_secs(5));
            assert_eq!(e.into_event(), "late");
        });
    }

    #[test]
    fn cancel_suppresses_event() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            assert!(q.cancel(a));
            assert!(!q.cancel(a), "double cancel is a no-op");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().unwrap().into_event(), "b");
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn cancel_unknown_token_rejected() {
        both(|kind| {
            let mut q: Scheduler<()> = Scheduler::with_kind(kind);
            assert!(!q.cancel(EventToken {
                seq: 99,
                time: SimTime::ZERO,
                slot: 0,
            }));
        });
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        // Regression: cancelling a token whose event already fired used to
        // insert a tombstone anyway, making `len()` (`heap - cancelled`)
        // underflow. The token must be rejected and accounting stay exact.
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            assert_eq!(q.pop().unwrap().into_event(), "a");
            assert!(!q.cancel(a), "token already fired");
            assert_eq!(q.len(), 1, "live count untouched by the stale cancel");
            assert_eq!(q.cancelled_total(), 0);
            assert_eq!(q.pop().unwrap().into_event(), "b");
            assert!(q.is_empty());
            assert!(!q.cancel(a), "still rejected after the queue drained");
        });
    }

    #[test]
    fn cancel_interleaved_with_pops() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            for round in 0..10 {
                let tok = q.schedule_at(SimTime::from_secs(round), round);
                if round % 3 == 0 {
                    assert!(q.cancel(tok));
                    assert_eq!(q.peek_time(), None);
                } else {
                    assert_eq!(q.pop().unwrap().into_event(), round);
                }
                assert!(q.is_empty());
            }
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        });
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(5), "b");
            assert_eq!(
                q.pop_at_or_before(SimTime::from_secs(3))
                    .unwrap()
                    .into_event(),
                "a"
            );
            assert!(q.pop_at_or_before(SimTime::from_secs(3)).is_none());
            assert_eq!(q.len(), 1, "the late event stays queued");
            assert_eq!(
                q.pop_at_or_before(SimTime::from_secs(5))
                    .unwrap()
                    .into_event(),
                "b"
            );
        });
    }

    #[test]
    fn len_counts_live_only() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_in(SimDuration::from_secs(1), ());
            q.schedule_in(SimDuration::from_secs(2), ());
            assert_eq!(q.len(), 2);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn counters_track_activity() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_in(SimDuration::ZERO, ());
            q.schedule_in(SimDuration::ZERO, ());
            q.cancel(a);
            assert_eq!(q.scheduled_total(), 2);
            assert_eq!(q.cancelled_total(), 1);
        });
    }

    /// Two-variant payload for run-boundary tests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum T {
        A(u32),
        B(u32),
    }

    #[test]
    fn runs_split_at_variant_boundaries_in_seq_order() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(1);
            // Interleaved variants at one timestamp: runs must follow seq
            // order exactly, never regroup across a boundary.
            q.schedule_at(t, T::A(0));
            q.schedule_at(t, T::A(1));
            q.schedule_at(t, T::B(2));
            q.schedule_at(t, T::A(3));
            q.schedule_at(SimTime::from_secs(2), T::B(4));
            let horizon = SimTime::from_secs(9);
            let mut run = Vec::new();
            assert_eq!(q.take_run_at_or_before(horizon, u64::MAX, &mut run), 2);
            assert_eq!(run, [T::A(0), T::A(1)]);
            assert_eq!(q.now(), t, "now advances with the first run");
            assert_eq!(q.take_run_at_or_before(horizon, u64::MAX, &mut run), 1);
            assert_eq!(run, [T::B(2)]);
            assert_eq!(q.take_run_at_or_before(horizon, u64::MAX, &mut run), 1);
            assert_eq!(run, [T::A(3)]);
            // Next timestamp only after the tie set is exhausted.
            assert_eq!(q.take_run_at_or_before(horizon, u64::MAX, &mut run), 1);
            assert_eq!(run, [T::B(4)]);
            assert_eq!(q.now(), SimTime::from_secs(2));
            assert_eq!(q.take_run_at_or_before(horizon, u64::MAX, &mut run), 0);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn take_run_respects_horizon_and_budget_cap() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(5);
            for i in 0..6 {
                q.schedule_at(t, T::A(i));
            }
            let mut run = Vec::new();
            assert_eq!(
                q.take_run_at_or_before(SimTime::from_secs(4), u64::MAX, &mut run),
                0,
                "nothing fires before the horizon"
            );
            // A budget cap of 4 leaves a live leftover tie set…
            assert_eq!(q.take_run_at_or_before(t, 4, &mut run), 4);
            assert_eq!(run, [T::A(0), T::A(1), T::A(2), T::A(3)]);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(t), "leftovers stay visible");
            // …which a later call resumes, even under a smaller budget.
            assert_eq!(q.take_run_at_or_before(t, 1, &mut run), 1);
            assert_eq!(run, [T::A(4)]);
            assert_eq!(q.take_run_at_or_before(t, 1, &mut run), 1);
            assert_eq!(run, [T::A(5)]);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn drained_but_undispatched_entries_stay_cancellable() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(1);
            q.schedule_at(t, T::A(0));
            let doomed = q.schedule_at(t, T::A(1));
            q.schedule_at(t, T::A(2));
            let mut run = Vec::new();
            // Budget 1 dispatches only A(0); the rest of the tie set
            // stays resident in the backend.
            assert_eq!(q.take_run_at_or_before(t, 1, &mut run), 1);
            assert_eq!(run, [T::A(0)]);
            assert!(q.cancel(doomed), "not-yet-dispatched is still live");
            assert!(!q.cancel(doomed), "double cancel rejected");
            assert_eq!(q.len(), 1);
            assert_eq!(q.cancelled_total(), 1);
            assert_eq!(q.take_run_at_or_before(t, u64::MAX, &mut run), 1);
            assert_eq!(run, [T::A(2)], "the cancelled entry never surfaces");
            assert!(q.is_empty());
        });
    }

    #[test]
    fn pop_serves_tie_set_leftovers_before_later_pushes() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(1);
            q.schedule_at(t, T::A(0));
            q.schedule_at(t, T::B(1));
            let mut run = Vec::new();
            assert_eq!(q.take_run_at_or_before(t, u64::MAX, &mut run), 1);
            // New same-time work arrives while the tie set is partially
            // dispatched: it files behind the leftovers (larger seq).
            q.schedule_at(t, T::A(2));
            // Mixed-mode consumption: plain pops must see the leftover
            // B(1) first, then the newly pushed A(2).
            assert_eq!(q.pop().unwrap().into_event(), T::B(1));
            assert_eq!(q.pop_at_or_before(t).unwrap().into_event(), T::A(2));
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn take_run_after_pop_consumption_sees_remaining_events() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(1), T::A(0));
            q.schedule_at(SimTime::from_secs(2), T::B(1));
            assert_eq!(q.pop().unwrap().into_event(), T::A(0));
            let mut run = Vec::new();
            assert_eq!(
                q.take_run_at_or_before(SimTime::from_secs(2), u64::MAX, &mut run),
                1
            );
            assert_eq!(run, [T::B(1)]);
        });
    }

    #[test]
    fn cancel_deep_in_the_queue() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let tokens: Vec<_> = (0..64)
                .map(|i| q.schedule_at(SimTime::from_secs(i), i))
                .collect();
            // Cancel a scattering: head, middle, tail.
            for &i in &[0usize, 31, 32, 63] {
                assert!(q.cancel(tokens[i]));
            }
            assert_eq!(q.len(), 60);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
            let expected: Vec<u64> = (0..64).filter(|i| ![0, 31, 32, 63].contains(i)).collect();
            assert_eq!(order, expected);
        });
    }
}
