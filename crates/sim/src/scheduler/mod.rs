//! The pending-event set: `(time, seq)`-ordered events behind a
//! selectable backend — a calendar queue (bucketed timing wheel, O(1)
//! amortized, the default) or a binary heap (the reference).

mod calendar;
mod heap;

use crate::event::{EventToken, ScheduledEvent};
use crate::time::{SimDuration, SimTime};
use calendar::CalendarQueue;
use heap::HeapQueue;

/// Which ordering backend a [`Scheduler`] uses. Both implement the exact
/// same `(time, seq)` total order — property tests drive them through
/// identical schedule/cancel/pop interleavings and demand identical pop
/// sequences — so the choice is purely a performance one and can be made
/// per world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Bucketed timing wheel with an overflow ladder: O(1) amortized
    /// push/pop, bucket width self-tuned from the observed inter-event
    /// gap, payloads inline in the buckets. The right choice for
    /// simulation event loops.
    #[default]
    Calendar,
    /// Binary heap over small keys with a payload slab: O(log n)
    /// push/pop. The reference backend, and the safe harbor for tiny or
    /// wildly irregular schedules.
    Heap,
}

/// The ordering backend (enum dispatch: two variants, statically known).
#[derive(Debug)]
enum KeyQueue<E> {
    Calendar(CalendarQueue<E>),
    Heap(HeapQueue<E>),
}

impl<E> KeyQueue<E> {
    #[inline]
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        match self {
            KeyQueue::Calendar(q) => q.push(time, seq, event),
            KeyQueue::Heap(q) => q.push(time, seq, event),
        }
    }

    #[inline]
    fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        match self {
            KeyQueue::Calendar(q) => q.peek_min(),
            KeyQueue::Heap(q) => q.peek_min(),
        }
    }

    #[inline]
    fn pop_min(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            KeyQueue::Calendar(q) => q.pop_min(),
            KeyQueue::Heap(q) => q.pop_min(),
        }
    }

    #[inline]
    fn pop_min_at_or_before(&mut self, horizon_ns: u64) -> Option<(SimTime, u64, E)> {
        match self {
            KeyQueue::Calendar(q) => q.pop_min_at_or_before(horizon_ns),
            KeyQueue::Heap(q) => q.pop_min_at_or_before(horizon_ns),
        }
    }

    fn cancel(&mut self, seq: u64, time: SimTime) -> Option<E> {
        match self {
            // The calendar jumps to the bucket the firing time names.
            KeyQueue::Calendar(q) => q.cancel(seq, time),
            KeyQueue::Heap(q) => q.cancel(seq),
        }
    }
}

/// Priority queue of future events.
///
/// Events are ordered by `(time, seq)` — deterministic FIFO among
/// simultaneous events. The backend is selectable per scheduler
/// ([`SchedulerKind`]): the default calendar queue stores events inline
/// in timing-wheel buckets and makes push/pop O(1) amortized; the binary
/// heap remains as the O(log n) reference.
///
/// Cancellation by [`EventToken`] carries no per-event bookkeeping on
/// the schedule/pop fast path: the token's firing time steers the
/// calendar backend to the single bucket the event can occupy (the heap
/// reference still walks its slab). Cancelling a token that already
/// fired (or was already cancelled) is recognized and rejected rather
/// than corrupting [`Scheduler::len`].
///
/// ```
/// use mtnet_sim::{Scheduler, SimTime};
/// let mut q: Scheduler<&str> = Scheduler::new();
/// q.schedule_at(SimTime::from_secs(2), "b");
/// let tok = q.schedule_at(SimTime::from_secs(1), "a");
/// q.cancel(tok);
/// let next = q.pop().unwrap();
/// assert_eq!(next.into_event(), "b");
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: KeyQueue<E>,
    /// Number of pending events (cancels remove eagerly, so this is the
    /// backend's true population).
    live: usize,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero with the default
    /// (calendar-queue) backend.
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::default())
    }

    /// Creates an empty scheduler with an explicit ordering backend.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        Scheduler {
            queue: match kind {
                SchedulerKind::Calendar => KeyQueue::Calendar(CalendarQueue::new()),
                SchedulerKind::Heap => KeyQueue::Heap(HeapQueue::new()),
            },
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Which ordering backend this scheduler runs on.
    pub fn kind(&self) -> SchedulerKind {
        match self.queue {
            KeyQueue::Calendar(_) => SchedulerKind::Calendar,
            KeyQueue::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled (monitoring/debugging aid).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever cancelled.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Scheduling in the past is clamped to `now` (the event fires next, in
    /// scheduling order); this keeps zero-delay message chains simple.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        self.queue.push(time, seq, event);
        EventToken { seq, time }
    }

    /// Schedules `event` after the given delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `true` if the token was live —
    /// tokens that never existed, already fired, or were already cancelled
    /// are rejected without perturbing the event count.
    ///
    /// The token's firing time pins the search: the calendar backend
    /// probes the one bucket that time names (plus the overflow ladder)
    /// instead of walking every bucket, so tearing down a large set of
    /// pending timers — e.g. a spec-driven fault plan — stays linear in
    /// the number of cancellations rather than quadratic. The heap
    /// backend remains an O(pending) slab walk; it is the reference, not
    /// the event-loop backend.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.seq >= self.next_seq {
            return false;
        }
        match self.queue.cancel(token.seq, token.time) {
            Some(_) => {
                self.live -= 1;
                self.cancelled_total += 1;
                true
            }
            None => false, // already fired or already cancelled
        }
    }

    /// Pops the next event, advancing `now` to its firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let (time, seq, event) = self.queue.pop_min()?;
        self.live -= 1;
        self.now = time;
        Some(ScheduledEvent { time, seq, event })
    }

    /// Pops the next event only if it fires at or before `horizon` — one
    /// queue walk for the peek-then-pop pattern of a bounded run loop
    /// (the calendar backend caches the peeked position, so the pop that
    /// follows is O(1)).
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        let (time, seq, event) = self.queue.pop_min_at_or_before(horizon.as_nanos())?;
        self.live -= 1;
        self.now = time;
        Some(ScheduledEvent { time, seq, event })
    }

    /// Firing time of the next event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_min().map(|(time, _)| time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every facade test runs against both backends: the suite itself is
    /// an equivalence check (the randomized version lives in the
    /// integration property tests).
    fn both(test: impl Fn(SchedulerKind)) {
        test(SchedulerKind::Calendar);
        test(SchedulerKind::Heap);
    }

    #[test]
    fn default_kind_is_calendar() {
        let q: Scheduler<()> = Scheduler::new();
        assert_eq!(q.kind(), SchedulerKind::Calendar);
        let h: Scheduler<()> = Scheduler::with_kind(SchedulerKind::Heap);
        assert_eq!(h.kind(), SchedulerKind::Heap);
    }

    #[test]
    fn pops_in_time_order() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(3), 3);
            q.schedule_at(SimTime::from_secs(1), 1);
            q.schedule_at(SimTime::from_secs(2), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn simultaneous_events_fifo() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn now_advances_with_pop() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(5), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(5));
        });
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(5), "first");
            q.pop();
            q.schedule_at(SimTime::from_secs(1), "late");
            let e = q.pop().unwrap();
            assert_eq!(e.time(), SimTime::from_secs(5));
            assert_eq!(e.into_event(), "late");
        });
    }

    #[test]
    fn cancel_suppresses_event() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            assert!(q.cancel(a));
            assert!(!q.cancel(a), "double cancel is a no-op");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().unwrap().into_event(), "b");
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn cancel_unknown_token_rejected() {
        both(|kind| {
            let mut q: Scheduler<()> = Scheduler::with_kind(kind);
            assert!(!q.cancel(EventToken {
                seq: 99,
                time: SimTime::ZERO
            }));
        });
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        // Regression: cancelling a token whose event already fired used to
        // insert a tombstone anyway, making `len()` (`heap - cancelled`)
        // underflow. The token must be rejected and accounting stay exact.
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            assert_eq!(q.pop().unwrap().into_event(), "a");
            assert!(!q.cancel(a), "token already fired");
            assert_eq!(q.len(), 1, "live count untouched by the stale cancel");
            assert_eq!(q.cancelled_total(), 0);
            assert_eq!(q.pop().unwrap().into_event(), "b");
            assert!(q.is_empty());
            assert!(!q.cancel(a), "still rejected after the queue drained");
        });
    }

    #[test]
    fn cancel_interleaved_with_pops() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            for round in 0..10 {
                let tok = q.schedule_at(SimTime::from_secs(round), round);
                if round % 3 == 0 {
                    assert!(q.cancel(tok));
                    assert_eq!(q.peek_time(), None);
                } else {
                    assert_eq!(q.pop().unwrap().into_event(), round);
                }
                assert!(q.is_empty());
            }
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        });
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(5), "b");
            assert_eq!(
                q.pop_at_or_before(SimTime::from_secs(3))
                    .unwrap()
                    .into_event(),
                "a"
            );
            assert!(q.pop_at_or_before(SimTime::from_secs(3)).is_none());
            assert_eq!(q.len(), 1, "the late event stays queued");
            assert_eq!(
                q.pop_at_or_before(SimTime::from_secs(5))
                    .unwrap()
                    .into_event(),
                "b"
            );
        });
    }

    #[test]
    fn len_counts_live_only() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_in(SimDuration::from_secs(1), ());
            q.schedule_in(SimDuration::from_secs(2), ());
            assert_eq!(q.len(), 2);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn counters_track_activity() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let a = q.schedule_in(SimDuration::ZERO, ());
            q.schedule_in(SimDuration::ZERO, ());
            q.cancel(a);
            assert_eq!(q.scheduled_total(), 2);
            assert_eq!(q.cancelled_total(), 1);
        });
    }

    #[test]
    fn cancel_deep_in_the_queue() {
        both(|kind| {
            let mut q = Scheduler::with_kind(kind);
            let tokens: Vec<_> = (0..64)
                .map(|i| q.schedule_at(SimTime::from_secs(i), i))
                .collect();
            // Cancel a scattering: head, middle, tail.
            for &i in &[0usize, 31, 32, 63] {
                assert!(q.cancel(tokens[i]));
            }
            assert_eq!(q.len(), 60);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
            let expected: Vec<u64> = (0..64).filter(|i| ![0, 31, 32, 63].contains(i)).collect();
            assert_eq!(order, expected);
        });
    }
}
