//! The run loop tying a [`Model`] to a [`Scheduler`].

use crate::event::EventToken;
use crate::model::{Context, Model};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::time::{SimDuration, SimTime};

/// Why a call to [`Simulator::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained — nothing left to simulate.
    QueueEmpty,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The model called [`Context::request_stop`].
    Stopped,
    /// The configured event budget was exhausted (runaway-loop guard).
    EventBudgetExhausted,
}

/// Sequential discrete-event simulator.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Simulator<M: Model> {
    model: M,
    scheduler: Scheduler<M::Event>,
    events_processed: u64,
    events_emitted: u64,
    event_budget: u64,
    stop_requested: bool,
    /// Whether [`Simulator::run_until`] dispatches type-batched runs
    /// (see [`Simulator::with_batched_dispatch`]).
    batched: bool,
    /// Reused run buffer for the batched loop — grows once to the
    /// largest same-type run and then costs no allocation.
    run_scratch: Vec<M::Event>,
}

impl<M: Model> Simulator<M> {
    /// Creates a simulator around `model` with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Simulator {
            model,
            scheduler: Scheduler::new(),
            events_processed: 0,
            events_emitted: 0,
            // Large default: protects against accidental infinite
            // zero-delay loops without ever tripping in legitimate runs.
            event_budget: u64::MAX,
            stop_requested: false,
            batched: false,
            run_scratch: Vec::new(),
        }
    }

    /// Switches [`Simulator::run_until`] between one-at-a-time dispatch
    /// (`false`, the default and the property-tested reference) and
    /// type-batched dispatch (`true`): same-timestamp events are drained
    /// from the queue in one sweep and delivered to
    /// [`Model::handle_run`] in consecutive same-variant runs. Execution
    /// order is identical either way — batching amortizes dispatch, it
    /// never reorders — with one documented exception for handlers that
    /// cancel same-instant events of their own type (see
    /// [`Model::handle_run`]).
    pub fn with_batched_dispatch(mut self, batched: bool) -> Self {
        self.batched = batched;
        self
    }

    /// Caps the total number of events processed across all `run*` calls.
    /// Useful as a runaway guard in property tests.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Selects the event-queue backend (see [`SchedulerKind`]). Both
    /// backends implement the identical `(time, seq)` total order, so
    /// results are bit-for-bit the same either way — this is a
    /// performance knob, selectable per simulation.
    ///
    /// # Panics
    ///
    /// Panics if events have already been scheduled (the backend cannot
    /// be swapped under a populated queue).
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        assert!(
            self.scheduler.is_empty() && self.scheduler.scheduled_total() == 0,
            "select the scheduler backend before scheduling events"
        );
        self.scheduler = Scheduler::with_kind(kind);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Shared access to the model (for inspecting results).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for reconfiguring between phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulator and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events scheduled by the model so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Number of live pending events.
    pub fn pending_events(&self) -> usize {
        self.scheduler.len()
    }

    /// Firing time of the earliest pending event, if any. Lets an outer
    /// coordinator (e.g. a conservative-window parallel driver) pick the
    /// next safe horizon without popping anything.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.scheduler.peek_time()
    }

    /// Schedules an event from outside the model (initial conditions).
    pub fn schedule_at(&mut self, time: SimTime, event: M::Event) -> EventToken {
        self.scheduler.schedule_at(time, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventToken {
        self.scheduler.schedule_in(delay, event)
    }

    /// Dispatches one popped event to the model: the single copy of the
    /// count-context-handle sequence shared by [`Simulator::step`] and
    /// [`Simulator::run_until`].
    fn dispatch(&mut self, entry: crate::ScheduledEvent<M::Event>) -> SimTime {
        let time = entry.time();
        let event = entry.into_event();
        self.events_processed += 1;
        let mut ctx = Context::new(
            &mut self.scheduler,
            &mut self.events_emitted,
            &mut self.stop_requested,
        );
        self.model.handle_event(&mut ctx, event);
        time
    }

    /// Executes a single event, if one is pending. Returns its firing time.
    pub fn step(&mut self) -> Option<SimTime> {
        let entry = self.scheduler.pop()?;
        Some(self.dispatch(entry))
    }

    /// Runs until the queue drains, the model requests a stop, or the event
    /// budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `horizon` (inclusive: events **at** the horizon fire), the
    /// queue drains, the model requests a stop, or the event budget is
    /// exhausted. Time never advances past the last executed event.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        if self.batched {
            return self.run_until_batched(horizon);
        }
        self.stop_requested = false;
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            // Single heap walk per event (peek and pop fused).
            let Some(entry) = self.scheduler.pop_at_or_before(horizon) else {
                return if self.scheduler.is_empty() {
                    RunOutcome::QueueEmpty
                } else {
                    RunOutcome::HorizonReached
                };
            };
            self.dispatch(entry);
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
        }
    }

    /// The type-batched twin of the loop above: same termination rules,
    /// same execution order, but events arrive in same-variant runs via
    /// [`Model::handle_run`]. The budget caps each run's length, so an
    /// exhausted budget leaves the rest of the tie set resident in the
    /// scheduler for a later call to resume; stop requests take effect
    /// at run granularity (the run that requested the stop completes —
    /// a model needing event-granular stops runs unbatched).
    fn run_until_batched(&mut self, horizon: SimTime) -> RunOutcome {
        self.stop_requested = false;
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            let remaining = self.event_budget - self.events_processed;
            let n = self
                .scheduler
                .take_run_at_or_before(horizon, remaining, &mut self.run_scratch);
            if n == 0 {
                return if self.scheduler.is_empty() {
                    RunOutcome::QueueEmpty
                } else {
                    RunOutcome::HorizonReached
                };
            }
            self.events_processed += n as u64;
            #[cfg(feature = "runstats")]
            {
                use std::sync::atomic::{AtomicU64, Ordering};
                static RUNS: AtomicU64 = AtomicU64::new(0);
                static EVS: AtomicU64 = AtomicU64::new(0);
                let r = RUNS.fetch_add(1, Ordering::Relaxed) + 1;
                let e = EVS.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
                if r % 1_000_000 == 0 {
                    eprintln!(
                        "[runstats] runs={r} events={e} avg={:.3}",
                        e as f64 / r as f64
                    );
                }
            }
            let mut ctx = Context::new(
                &mut self.scheduler,
                &mut self.events_emitted,
                &mut self.stop_requested,
            );
            self.model.handle_run(&mut ctx, &mut self.run_scratch);
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself forever at a fixed period.
    struct Metronome {
        ticks: u64,
        period: SimDuration,
    }

    impl Model for Metronome {
        type Event = ();
        fn handle_event(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
            self.ticks += 1;
            ctx.schedule_in(self.period, ());
        }
    }

    fn metronome() -> Simulator<Metronome> {
        let mut sim = Simulator::new(Metronome {
            ticks: 0,
            period: SimDuration::from_secs(1),
        });
        sim.schedule_at(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn run_until_horizon_inclusive() {
        let mut sim = metronome();
        let outcome = sim.run_until(SimTime::from_secs(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // ticks at t=0..=10 inclusive
        assert_eq!(sim.model().ticks, 11);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn run_until_resumable() {
        let mut sim = metronome();
        sim.run_until(SimTime::from_secs(5));
        let ticks_mid = sim.model().ticks;
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.model().ticks, ticks_mid + 5);
    }

    #[test]
    fn queue_empty_outcome() {
        struct Once;
        impl Model for Once {
            type Event = ();
            fn handle_event(&mut self, _: &mut Context<'_, ()>, _: ()) {}
        }
        let mut sim = Simulator::new(Once);
        sim.schedule_at(SimTime::from_secs(1), ());
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn event_budget_guards_runaway() {
        let mut sim = metronome().with_event_budget(100);
        assert_eq!(sim.run(), RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn next_event_time_peeks_without_popping() {
        let mut sim = metronome();
        assert_eq!(sim.next_event_time(), Some(SimTime::ZERO));
        assert_eq!(sim.pending_events(), 1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(3)));
        let mut empty = Simulator::new(Metronome {
            ticks: 0,
            period: SimDuration::from_secs(1),
        });
        assert_eq!(empty.next_event_time(), None);
    }

    #[test]
    fn step_returns_firing_time() {
        let mut sim = metronome();
        assert_eq!(sim.step(), Some(SimTime::ZERO));
        assert_eq!(sim.step(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn emitted_counter_tracks_model_scheduling() {
        let mut sim = metronome();
        sim.run_until(SimTime::from_secs(3));
        // Each handled tick emits exactly one follow-up.
        assert_eq!(sim.events_emitted(), sim.events_processed());
    }

    #[test]
    fn into_model_returns_state() {
        let mut sim = metronome();
        sim.run_until(SimTime::from_secs(2));
        let m = sim.into_model();
        assert_eq!(m.ticks, 3);
    }

    /// Records every handled event as `(now, tag)` and fans out new
    /// work with same-instant ties — a trace-equality probe for the
    /// batched loop.
    struct Tracer {
        trace: Vec<(SimTime, u32)>,
        runs: Vec<usize>,
    }

    impl Model for Tracer {
        type Event = u32;
        fn handle_event(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
            self.trace.push((ctx.now(), ev));
            // Fan out: even tags spawn a same-instant odd tag and a
            // later even one, so ties and cross-timestamp chains form.
            if ev % 2 == 0 && ev < 40 {
                ctx.schedule_now(ev + 1);
                ctx.schedule_in(SimDuration::from_millis(u64::from(ev % 7) + 1), ev + 2);
            }
        }
        fn handle_run(&mut self, ctx: &mut Context<'_, u32>, run: &mut Vec<u32>) {
            self.runs.push(run.len());
            for ev in run.drain(..) {
                self.handle_event(ctx, ev);
            }
        }
    }

    fn traced(batched: bool) -> Simulator<Tracer> {
        let mut sim = Simulator::new(Tracer {
            trace: vec![],
            runs: vec![],
        })
        .with_batched_dispatch(batched);
        for i in 0..4 {
            sim.schedule_at(
                SimTime::from_millis(i),
                u32::from(u16::try_from(i).unwrap()) * 2,
            );
        }
        sim
    }

    #[test]
    fn batched_dispatch_matches_the_reference_loop() {
        let mut reference = traced(false);
        assert_eq!(reference.run(), RunOutcome::QueueEmpty);
        let mut batched = traced(true);
        assert_eq!(batched.run(), RunOutcome::QueueEmpty);
        assert_eq!(batched.model().trace, reference.model().trace);
        assert_eq!(batched.events_processed(), reference.events_processed());
        assert_eq!(batched.events_emitted(), reference.events_emitted());
        assert_eq!(batched.now(), reference.now());
        assert!(
            reference.model().runs.is_empty(),
            "the reference loop never calls handle_run"
        );
        let batched_total: usize = batched.model().runs.iter().sum();
        assert_eq!(batched_total as u64, batched.events_processed());
    }

    #[test]
    fn batched_budget_exhaustion_is_resumable_mid_tie_set() {
        let mut sim = traced(true).with_event_budget(5);
        assert_eq!(sim.run(), RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.events_processed(), 5);
        let mut reference = traced(false);
        reference.run();
        // The first five handled events match the reference prefix even
        // though the budget cut a run short…
        assert_eq!(sim.model().trace, reference.model().trace[..5]);
        // …and lifting the budget finishes the identical tail.
        let mut sim = Simulator {
            event_budget: u64::MAX,
            ..sim
        };
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        assert_eq!(sim.model().trace, reference.model().trace);
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let mut sim = metronome();
            sim.run_until(SimTime::from_secs(100));
            (sim.model().ticks, sim.now(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }
}
