//! The run loop tying a [`Model`] to a [`Scheduler`].

use crate::event::EventToken;
use crate::model::{Context, Model};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::time::{SimDuration, SimTime};

/// Why a call to [`Simulator::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained — nothing left to simulate.
    QueueEmpty,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The model called [`Context::request_stop`].
    Stopped,
    /// The configured event budget was exhausted (runaway-loop guard).
    EventBudgetExhausted,
}

/// Sequential discrete-event simulator.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Simulator<M: Model> {
    model: M,
    scheduler: Scheduler<M::Event>,
    events_processed: u64,
    events_emitted: u64,
    event_budget: u64,
    stop_requested: bool,
}

impl<M: Model> Simulator<M> {
    /// Creates a simulator around `model` with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Simulator {
            model,
            scheduler: Scheduler::new(),
            events_processed: 0,
            events_emitted: 0,
            // Large default: protects against accidental infinite
            // zero-delay loops without ever tripping in legitimate runs.
            event_budget: u64::MAX,
            stop_requested: false,
        }
    }

    /// Caps the total number of events processed across all `run*` calls.
    /// Useful as a runaway guard in property tests.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Selects the event-queue backend (see [`SchedulerKind`]). Both
    /// backends implement the identical `(time, seq)` total order, so
    /// results are bit-for-bit the same either way — this is a
    /// performance knob, selectable per simulation.
    ///
    /// # Panics
    ///
    /// Panics if events have already been scheduled (the backend cannot
    /// be swapped under a populated queue).
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        assert!(
            self.scheduler.is_empty() && self.scheduler.scheduled_total() == 0,
            "select the scheduler backend before scheduling events"
        );
        self.scheduler = Scheduler::with_kind(kind);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Shared access to the model (for inspecting results).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for reconfiguring between phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulator and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events scheduled by the model so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Number of live pending events.
    pub fn pending_events(&self) -> usize {
        self.scheduler.len()
    }

    /// Firing time of the earliest pending event, if any. Lets an outer
    /// coordinator (e.g. a conservative-window parallel driver) pick the
    /// next safe horizon without popping anything.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.scheduler.peek_time()
    }

    /// Schedules an event from outside the model (initial conditions).
    pub fn schedule_at(&mut self, time: SimTime, event: M::Event) -> EventToken {
        self.scheduler.schedule_at(time, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventToken {
        self.scheduler.schedule_in(delay, event)
    }

    /// Dispatches one popped event to the model: the single copy of the
    /// count-context-handle sequence shared by [`Simulator::step`] and
    /// [`Simulator::run_until`].
    fn dispatch(&mut self, entry: crate::ScheduledEvent<M::Event>) -> SimTime {
        let time = entry.time();
        let event = entry.into_event();
        self.events_processed += 1;
        let mut ctx = Context::new(
            &mut self.scheduler,
            &mut self.events_emitted,
            &mut self.stop_requested,
        );
        self.model.handle_event(&mut ctx, event);
        time
    }

    /// Executes a single event, if one is pending. Returns its firing time.
    pub fn step(&mut self) -> Option<SimTime> {
        let entry = self.scheduler.pop()?;
        Some(self.dispatch(entry))
    }

    /// Runs until the queue drains, the model requests a stop, or the event
    /// budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `horizon` (inclusive: events **at** the horizon fire), the
    /// queue drains, the model requests a stop, or the event budget is
    /// exhausted. Time never advances past the last executed event.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.stop_requested = false;
        loop {
            if self.events_processed >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            // Single heap walk per event (peek and pop fused).
            let Some(entry) = self.scheduler.pop_at_or_before(horizon) else {
                return if self.scheduler.is_empty() {
                    RunOutcome::QueueEmpty
                } else {
                    RunOutcome::HorizonReached
                };
            };
            self.dispatch(entry);
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself forever at a fixed period.
    struct Metronome {
        ticks: u64,
        period: SimDuration,
    }

    impl Model for Metronome {
        type Event = ();
        fn handle_event(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
            self.ticks += 1;
            ctx.schedule_in(self.period, ());
        }
    }

    fn metronome() -> Simulator<Metronome> {
        let mut sim = Simulator::new(Metronome {
            ticks: 0,
            period: SimDuration::from_secs(1),
        });
        sim.schedule_at(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn run_until_horizon_inclusive() {
        let mut sim = metronome();
        let outcome = sim.run_until(SimTime::from_secs(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // ticks at t=0..=10 inclusive
        assert_eq!(sim.model().ticks, 11);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn run_until_resumable() {
        let mut sim = metronome();
        sim.run_until(SimTime::from_secs(5));
        let ticks_mid = sim.model().ticks;
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.model().ticks, ticks_mid + 5);
    }

    #[test]
    fn queue_empty_outcome() {
        struct Once;
        impl Model for Once {
            type Event = ();
            fn handle_event(&mut self, _: &mut Context<'_, ()>, _: ()) {}
        }
        let mut sim = Simulator::new(Once);
        sim.schedule_at(SimTime::from_secs(1), ());
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn event_budget_guards_runaway() {
        let mut sim = metronome().with_event_budget(100);
        assert_eq!(sim.run(), RunOutcome::EventBudgetExhausted);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn next_event_time_peeks_without_popping() {
        let mut sim = metronome();
        assert_eq!(sim.next_event_time(), Some(SimTime::ZERO));
        assert_eq!(sim.pending_events(), 1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(3)));
        let mut empty = Simulator::new(Metronome {
            ticks: 0,
            period: SimDuration::from_secs(1),
        });
        assert_eq!(empty.next_event_time(), None);
    }

    #[test]
    fn step_returns_firing_time() {
        let mut sim = metronome();
        assert_eq!(sim.step(), Some(SimTime::ZERO));
        assert_eq!(sim.step(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn emitted_counter_tracks_model_scheduling() {
        let mut sim = metronome();
        sim.run_until(SimTime::from_secs(3));
        // Each handled tick emits exactly one follow-up.
        assert_eq!(sim.events_emitted(), sim.events_processed());
    }

    #[test]
    fn into_model_returns_state() {
        let mut sim = metronome();
        sim.run_until(SimTime::from_secs(2));
        let m = sim.into_model();
        assert_eq!(m.ticks, 3);
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let mut sim = metronome();
            sim.run_until(SimTime::from_secs(100));
            (sim.model().ticks, sim.now(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }
}
