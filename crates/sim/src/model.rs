//! The [`Model`] trait — the user-supplied world — and the [`Context`]
//! handed to it on every event.

use crate::event::EventToken;
use crate::scheduler::Scheduler;
use crate::time::{SimDuration, SimTime};

/// The simulated world: owns all state and reacts to events.
///
/// The engine never inspects `Event`; models define their own enum and
/// dispatch inside [`Model::handle_event`]. See the crate-level example.
pub trait Model {
    /// The event payload type processed by this model.
    type Event;

    /// Handles one event at the current simulated time.
    ///
    /// New events are scheduled through `ctx`; the engine executes them in
    /// `(time, scheduling-order)` order.
    fn handle_event(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);

    /// Handles a *run*: consecutive same-variant events at one simulated
    /// instant, in scheduling order, delivered together by the
    /// type-batched dispatch path (see
    /// [`crate::Simulator::with_batched_dispatch`]).
    ///
    /// The default drains the buffer through [`Model::handle_event`] one
    /// event at a time — semantically the engine's one-at-a-time loop,
    /// so implementing `handle_event` alone is always correct. Models
    /// with hot event types override this to hoist per-variant dispatch
    /// out of the loop and warm caches across the run (e.g. touching an
    /// arena slot per packet up front). Overrides must process every
    /// event in buffer order and must not assume the run is a single
    /// variant — the engine guarantees it, but arbitrary callers may
    /// not.
    ///
    /// The engine considers every event in `run` fired the moment the
    /// run is handed over: a handler cancelling a token for a later
    /// event *in the same run* gets `false` where the one-at-a-time loop
    /// would have suppressed the event. Models that cancel same-instant
    /// events of their own type from handlers should keep batched
    /// dispatch off.
    fn handle_run(&mut self, ctx: &mut Context<'_, Self::Event>, run: &mut Vec<Self::Event>) {
        for event in run.drain(..) {
            self.handle_event(ctx, event);
        }
    }
}

/// Per-event execution context: the clock plus scheduling operations.
///
/// A `Context` borrows the engine's scheduler for the duration of one
/// [`Model::handle_event`] call.
#[derive(Debug)]
pub struct Context<'a, E> {
    scheduler: &'a mut Scheduler<E>,
    events_emitted: &'a mut u64,
    stop_requested: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    pub(crate) fn new(
        scheduler: &'a mut Scheduler<E>,
        events_emitted: &'a mut u64,
        stop_requested: &'a mut bool,
    ) -> Self {
        Context {
            scheduler,
            events_emitted,
            stop_requested,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Schedules an event at an absolute instant (clamped to `now` if in
    /// the past) and returns a cancellation token.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        *self.events_emitted += 1;
        self.scheduler.schedule_at(time, event)
    }

    /// Schedules an event after `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        *self.events_emitted += 1;
        self.scheduler.schedule_in(delay, event)
    }

    /// Schedules an event to run after all other events at the current
    /// instant (zero-delay continuation).
    pub fn schedule_now(&mut self, event: E) -> EventToken {
        self.schedule_in(SimDuration::ZERO, event)
    }

    /// Cancels a previously scheduled event. No-op if already fired.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.scheduler.cancel(token)
    }

    /// Number of live pending events.
    pub fn pending_events(&self) -> usize {
        self.scheduler.len()
    }

    /// Requests that the run loop stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    struct PingPong {
        pings: u32,
        limit: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl Model for PingPong {
        type Event = Ev;
        fn handle_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Ping => {
                    self.pings += 1;
                    if self.pings >= self.limit {
                        ctx.request_stop();
                    } else {
                        ctx.schedule_in(SimDuration::from_millis(10), Ev::Pong);
                    }
                }
                Ev::Pong => {
                    ctx.schedule_now(Ev::Ping);
                }
            }
        }
    }

    #[test]
    fn request_stop_halts_run() {
        let mut sim = Simulator::new(PingPong { pings: 0, limit: 5 });
        sim.schedule_at(SimTime::ZERO, Ev::Ping);
        sim.run();
        assert_eq!(sim.model().pings, 5);
    }

    #[test]
    fn schedule_now_runs_at_same_instant() {
        struct M {
            times: Vec<SimTime>,
        }
        impl Model for M {
            type Event = u8;
            fn handle_event(&mut self, ctx: &mut Context<'_, u8>, ev: u8) {
                self.times.push(ctx.now());
                if ev == 0 {
                    ctx.schedule_now(1);
                }
            }
        }
        let mut sim = Simulator::new(M { times: vec![] });
        sim.schedule_at(SimTime::from_secs(1), 0u8);
        sim.run();
        assert_eq!(sim.model().times, vec![SimTime::from_secs(1); 2]);
    }
}
