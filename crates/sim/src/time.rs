//! Simulated time: absolute instants ([`SimTime`]) and spans
//! ([`SimDuration`]) with integer-nanosecond resolution.
//!
//! Integer nanoseconds keep arithmetic exact and ordering total, which is a
//! prerequisite for deterministic replay. Saturating arithmetic is used
//! throughout so that mis-configured (huge) timeouts clamp instead of
//! panicking mid-run.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds in one millisecond.
const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one microsecond.
const NANOS_PER_MICRO: u64 = 1_000;

/// An absolute instant of simulated time, in nanoseconds since simulation
/// start.
///
/// ```
/// use mtnet_sim::{SimTime, SimDuration};
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_nanos(), 2_500_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use mtnet_sim::SimDuration;
/// assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(NANOS_PER_MICRO))
    }

    /// Creates an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(NANOS_PER_MILLI))
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns this instant as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(NANOS_PER_MICRO))
    }

    /// Creates a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(NANOS_PER_MILLI))
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Returns true if this is the zero span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Multiplies the span by a non-negative float (e.g. jitter factors).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

/// Renders a nanosecond count using the most natural unit.
fn format_nanos(n: u64) -> String {
    if n == u64::MAX {
        "inf".to_owned()
    } else if n >= NANOS_PER_SEC {
        format!("{:.6}s", n as f64 / NANOS_PER_SEC as f64)
    } else if n >= NANOS_PER_MILLI {
        format!("{:.3}ms", n as f64 / NANOS_PER_MILLI as f64)
    } else if n >= NANOS_PER_MICRO {
        format!("{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.001);
        assert_eq!(d, SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 2, SimDuration::from_millis(50));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1500),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1500),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000000s");
        assert_eq!(SimTime::MAX.to_string(), "inf");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
