//! The pending-event set: a binary heap keyed by `(time, seq)` with O(1)
//! logical cancellation.

use crate::event::{EventToken, ScheduledEvent};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Priority queue of future events.
///
/// Cancellation is *logical*: cancelled tokens go into a tombstone set and
/// the entry is discarded when popped. This keeps both `schedule` and
/// `cancel` cheap; tombstones are purged as their entries surface.
///
/// ```
/// use mtnet_sim::{Scheduler, SimTime};
/// let mut q: Scheduler<&str> = Scheduler::new();
/// q.schedule_at(SimTime::from_secs(2), "b");
/// let tok = q.schedule_at(SimTime::from_secs(1), "a");
/// q.cancel(tok);
/// let next = q.pop().unwrap();
/// assert_eq!(next.into_event(), "b");
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<(ScheduledEvent<E>, EventToken)>>,
    cancelled: HashSet<EventToken>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (monitoring/debugging aid).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever cancelled.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Scheduling in the past is clamped to `now` (the event fires next, in
    /// scheduling order); this keeps zero-delay message chains simple.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let token = EventToken(seq);
        self.heap
            .push(Reverse((ScheduledEvent { time, seq, event }, token)));
        token
    }

    /// Schedules `event` after the given delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `true` if the token was live.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        // A token could reference an event that already fired; inserting it
        // anyway would leak a tombstone, so only count tokens still queued.
        if token.0 >= self.next_seq {
            return false;
        }
        let inserted = self.cancelled.insert(token);
        if inserted {
            self.cancelled_total += 1;
        }
        inserted
    }

    /// Pops the next live event, advancing `now` to its firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse((entry, token))) = self.heap.pop() {
            if self.cancelled.remove(&token) {
                continue;
            }
            self.now = entry.time;
            return Some(entry);
        }
        // Heap drained; any remaining tombstones refer to fired events.
        self.cancelled.clear();
        None
    }

    /// Firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge dead entries at the head so the peek is accurate.
        while let Some(Reverse((entry, token))) = self.heap.peek() {
            if self.cancelled.contains(token) {
                let Reverse((_, token)) = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&token);
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = Scheduler::new();
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = Scheduler::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = Scheduler::new();
        q.schedule_at(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.time(), SimTime::from_secs(5));
        assert_eq!(e.into_event(), "late");
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut q = Scheduler::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_event(), "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_rejected() {
        let mut q: Scheduler<()> = Scheduler::new();
        assert!(!q.cancel(EventToken(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = Scheduler::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn len_counts_live_only() {
        let mut q = Scheduler::new();
        let a = q.schedule_in(SimDuration::from_secs(1), ());
        q.schedule_in(SimDuration::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = Scheduler::new();
        let a = q.schedule_in(SimDuration::ZERO, ());
        q.schedule_in(SimDuration::ZERO, ());
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }
}
