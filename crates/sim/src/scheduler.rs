//! The pending-event set: a binary heap of small `(time, seq, slot)` keys
//! over a payload slab, with O(1) logical cancellation.

use crate::event::{EventToken, ScheduledEvent};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Priority queue of future events.
///
/// The heap holds only 24-byte `(time, seq, slot)` keys; payloads live in
/// a slab indexed by `slot`. Sift operations during push/pop therefore
/// move small fixed-size keys instead of whole event payloads — the
/// difference is most of the queue cost when events carry packets.
///
/// Cancellation is *logical*: the slot is emptied, and the dangling heap
/// key is discarded when it surfaces. A slot is not reused until its heap
/// key has been popped, so a surfacing key whose slot is empty is always a
/// cancelled event and never someone else's payload. Live-event
/// accounting is an explicit counter, so cancelling a token that already
/// fired is recognized (the seq is in no slot) and rejected rather than
/// corrupting [`Scheduler::len`].
///
/// ```
/// use mtnet_sim::{Scheduler, SimTime};
/// let mut q: Scheduler<&str> = Scheduler::new();
/// q.schedule_at(SimTime::from_secs(2), "b");
/// let tok = q.schedule_at(SimTime::from_secs(1), "a");
/// q.cancel(tok);
/// let next = q.pop().unwrap();
/// assert_eq!(next.into_event(), "b");
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    /// Min-heap (via `Reverse`) ordered by `(time, seq)` — deterministic
    /// FIFO among simultaneous events. The third element is the slab slot.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload slab: `slots[slot] = Some((seq, event))` while pending,
    /// `None` once cancelled. Reserved until the heap key pops.
    slots: Vec<Option<(u64, E)>>,
    /// Slots whose heap key has surfaced, ready for reuse.
    free: Vec<u32>,
    /// Number of pending, non-cancelled events.
    live: usize,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled (monitoring/debugging aid).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever cancelled.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Scheduling in the past is clamped to `now` (the event fires next, in
    /// scheduling order); this keeps zero-delay message chains simple.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((seq, event));
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("fewer than 2^32 pending events");
                self.slots.push(Some((seq, event)));
                s
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
        EventToken { seq, slot }
    }

    /// Schedules `event` after the given delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `true` if the token was live —
    /// tokens that never existed, already fired, or were already cancelled
    /// are rejected without perturbing the live-event count. O(1): the
    /// token names its slab slot, and a slot's stored `seq` matching the
    /// token's proves the event is still the token's own (slots are only
    /// reused after their heap key pops).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.seq >= self.next_seq {
            return false;
        }
        match self.slots.get_mut(token.slot as usize) {
            Some(slot @ Some(_)) if slot.as_ref().is_some_and(|(seq, _)| *seq == token.seq) => {
                *slot = None;
                self.live -= 1;
                self.cancelled_total += 1;
                true
            }
            _ => false, // already fired, already cancelled, or slot reused
        }
    }

    /// Pops the next live event, advancing `now` to its firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse((time, seq, slot))) = self.heap.pop() {
            let payload = self.slots[slot as usize].take();
            self.free.push(slot);
            if let Some((stored_seq, event)) = payload {
                debug_assert_eq!(stored_seq, seq, "slot reused before its key popped");
                self.live -= 1;
                self.now = time;
                return Some(ScheduledEvent { time, seq, event });
            }
            // Cancelled: the dangling key just releases its slot.
        }
        None
    }

    /// Pops the next live event only if it fires at or before `horizon` —
    /// one heap walk for the peek-then-pop pattern of a bounded run loop.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        while let Some(&Reverse((time, seq, slot))) = self.heap.peek() {
            if self.slots[slot as usize].is_none() {
                // Cancelled head: purge and keep looking.
                self.heap.pop();
                self.free.push(slot);
                continue;
            }
            if time > horizon {
                return None;
            }
            self.heap.pop();
            let (stored_seq, event) = self.slots[slot as usize].take().expect("checked live");
            debug_assert_eq!(stored_seq, seq, "slot reused before its key popped");
            self.free.push(slot);
            self.live -= 1;
            self.now = time;
            return Some(ScheduledEvent { time, seq, event });
        }
        None
    }

    /// Firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((time, _, slot))) = self.heap.peek() {
            if self.slots[slot as usize].is_some() {
                return Some(time);
            }
            // Purge the cancelled head so the peek is accurate.
            self.heap.pop();
            self.free.push(slot);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = Scheduler::new();
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_event())).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = Scheduler::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = Scheduler::new();
        q.schedule_at(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.time(), SimTime::from_secs(5));
        assert_eq!(e.into_event(), "late");
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut q = Scheduler::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_event(), "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_rejected() {
        let mut q: Scheduler<()> = Scheduler::new();
        assert!(!q.cancel(EventToken { seq: 99, slot: 0 }));
    }

    #[test]
    fn cancel_rejects_token_whose_slot_was_reused() {
        // Event A fires; its slot is reused by event B. A's stale token
        // must not cancel B (the slot's stored seq no longer matches).
        let mut q = Scheduler::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().into_event(), "a");
        let b = q.schedule_at(SimTime::from_secs(2), "b");
        assert_eq!(a.slot, b.slot, "test premise: the slot is reused");
        assert!(!q.cancel(a), "stale token must not hit the new event");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_event(), "b");
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        // Regression: cancelling a token whose event already fired used to
        // insert a tombstone anyway, making `len()` (`heap - cancelled`)
        // underflow. The token must be rejected and accounting stay exact.
        let mut q = Scheduler::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().into_event(), "a");
        assert!(!q.cancel(a), "token already fired");
        assert_eq!(q.len(), 1, "live count untouched by the stale cancel");
        assert_eq!(q.cancelled_total(), 0);
        assert_eq!(q.pop().unwrap().into_event(), "b");
        assert!(q.is_empty());
        assert!(!q.cancel(a), "still rejected after the queue drained");
    }

    #[test]
    fn slots_are_reused_after_pop() {
        let mut q = Scheduler::new();
        for round in 0..10 {
            let tok = q.schedule_at(SimTime::from_secs(round), round);
            if round % 3 == 0 {
                q.cancel(tok);
                assert_eq!(q.peek_time(), None);
            } else {
                assert_eq!(q.pop().unwrap().into_event(), round);
            }
            assert!(q.is_empty());
        }
        // Every round reused the same slab slot (cancelled heads are
        // purged by peek, popped ones by pop).
        assert_eq!(q.slots.len(), 1);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = Scheduler::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn len_counts_live_only() {
        let mut q = Scheduler::new();
        let a = q.schedule_in(SimDuration::from_secs(1), ());
        q.schedule_in(SimDuration::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = Scheduler::new();
        let a = q.schedule_in(SimDuration::ZERO, ());
        q.schedule_in(SimDuration::ZERO, ());
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }
}
