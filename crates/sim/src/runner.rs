//! Deterministic parallel batch execution.
//!
//! Simulated worlds are single-threaded event loops; throughput comes from
//! running *many* of them — experiment arms, replications, parameter
//! sweeps — concurrently. [`BatchRunner`] fans a `Vec` of jobs out across a
//! pool of scoped worker threads (`std::thread`, no external dependencies)
//! and collects the results **in submission order**.
//!
//! ## Determinism contract
//!
//! The runner adds no randomness and no ordering freedom to results:
//!
//! * Each job is executed exactly once, by exactly one worker.
//! * The output `Vec` is indexed like the input `Vec`, regardless of which
//!   worker ran which job or in what real-time order they finished.
//! * Jobs must be self-contained (`Send`, results `Send`): everything a run
//!   needs — including its sub-seed, see [`crate::rng::SeedTree`] — is
//!   decided *before* dispatch, so `threads = 1` and `threads = N` produce
//!   byte-identical results.
//!
//! ```
//! use mtnet_sim::runner::BatchRunner;
//! let squares = BatchRunner::new(4).run((0..32u64).collect(), |_, j| j * j);
//! assert_eq!(squares[7], 49); // submission order preserved
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count
/// (`MTNET_THREADS=1` forces the sequential path).
pub const THREADS_ENV: &str = "MTNET_THREADS";

/// A fixed-width scoped thread pool executing job batches in submission
/// order. See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRunner {
    threads: usize,
}

impl BatchRunner {
    /// A runner with exactly `threads` workers; `0` means "one per
    /// available core".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        BatchRunner { threads }
    }

    /// A runner sized from the environment: [`THREADS_ENV`] if set,
    /// otherwise one worker per available core. A malformed variable is
    /// an error — use this in binaries that want to surface it.
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var(THREADS_ENV) {
            Ok(v) if !v.trim().is_empty() => Ok(Self::new(parse_thread_count(&v)?)),
            _ => Ok(Self::new(0)),
        }
    }

    /// [`BatchRunner::try_from_env`], failing loudly: a malformed
    /// [`THREADS_ENV`] prints the error and exits with status 2 rather
    /// than being silently ignored.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every job, returning results in submission order.
    ///
    /// With one worker (or at most one job) everything runs inline on the
    /// caller's thread — the literal sequential path the determinism tests
    /// compare against. A panicking job aborts the whole batch: the panic
    /// surfaces to the caller when the scope joins.
    pub fn run<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(usize, J) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
        }
        // Shared work queue; each result lands in its submission slot, so
        // completion order is irrelevant to the output.
        let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("queue lock").pop_front();
                    let Some((i, j)) = job else {
                        break;
                    };
                    let r = f(i, j);
                    *slots[i].lock().expect("slot lock") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every job completed")
            })
            .collect()
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Worker count for "use every core": `std::thread::available_parallelism`
/// with a floor of 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The one validated thread-count parser every consumer of
/// [`THREADS_ENV`] (and the harness `--threads` flag) shares: a
/// non-negative integer, where `0` means "one worker per available
/// core". Anything else is an error naming the expected form.
pub fn parse_thread_count(value: &str) -> Result<usize, String> {
    value.trim().parse::<usize>().map_err(|_| {
        format!("{THREADS_ENV} must be a non-negative integer (0 = one per core), got {value:?}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_submission_order() {
        for threads in [1, 2, 4, 8] {
            let out = BatchRunner::new(threads).run((0..100u64).collect(), |i, j| {
                assert_eq!(i as u64, j, "job handed its own index");
                j * 3
            });
            assert_eq!(out, (0..100u64).map(|j| j * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = BatchRunner::new(4).run(vec![(); 57], |_, ()| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |_, seed: u64| {
            // A cheap but stateful computation: a short LCG walk.
            let mut x = seed;
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let jobs: Vec<u64> = (0..40).map(|i| i * 7 + 1).collect();
        let seq = BatchRunner::new(1).run(jobs.clone(), work);
        let par = BatchRunner::new(6).run(jobs, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let r = BatchRunner::new(4);
        assert_eq!(r.run(Vec::<u8>::new(), |_, j| j), Vec::<u8>::new());
        assert_eq!(r.run(vec![9u8], |_, j| j + 1), vec![10]);
    }

    #[test]
    fn zero_resolves_to_available_cores() {
        let r = BatchRunner::new(0);
        assert!(r.threads() >= 1);
        assert_eq!(r.threads(), available_threads());
    }

    #[test]
    fn parse_thread_count_is_strict() {
        assert_eq!(parse_thread_count("3"), Ok(3));
        assert_eq!(parse_thread_count(" 12 "), Ok(12));
        assert_eq!(parse_thread_count("0"), Ok(0));
        let err = parse_thread_count("lots").unwrap_err();
        assert!(err.contains(THREADS_ENV) && err.contains("lots"), "{err}");
        assert!(parse_thread_count("-2").is_err());
        assert!(parse_thread_count("1.5").is_err());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        BatchRunner::new(2).run((0..8).collect::<Vec<u32>>(), |_, j| {
            if j == 3 {
                panic!("job 3 exploded");
            }
            j
        });
    }
}
