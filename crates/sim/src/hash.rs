//! Fast, deterministic hashing for simulation-internal maps.
//!
//! `std::collections::HashMap`'s default SipHash costs tens of
//! nanoseconds per lookup — material when a discrete-event loop does five
//! to ten map probes per event. Simulation keys are small trusted
//! integers (node ids, cell ids, addresses, sequence numbers), so a
//! multiply–rotate hash in the FxHash family is collision-adequate and an
//! order of magnitude cheaper. It is also *deterministic across
//! processes* (no per-process `RandomState`), which suits the replication
//! engine's reproducibility contract: nothing observable may depend on
//! map iteration order, and a fixed hasher makes any accidental
//! dependence show up as a stable, testable wrong answer instead of a
//! heisenbug.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// An FxHash-style multiply–rotate hasher for small trusted keys.
///
/// Not DoS-resistant — never expose it to attacker-controlled keys. Every
/// write folds the input word into the state with a rotate + xor +
/// multiply by a 64-bit odd constant (the golden-ratio-derived constant
/// used by the rustc hasher family).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.fold(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.fold(i as u64);
    }
}

/// `HashMap` with the deterministic [`FxHasher`] — the default map type
/// for simulation hot paths.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the deterministic [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of((3u32, 4u32)), hash_of((3u32, 4u32)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((0i32, 1i32)), hash_of((1i32, 0i32)));
        assert_ne!(
            hash_of([1u8, 2, 3].as_slice()),
            hash_of([3u8, 2, 1].as_slice())
        );
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }

    #[test]
    fn nearby_small_keys_spread() {
        // Dense integer ids must not collide in bulk.
        let hashes: FxHashSet<u64> = (0u32..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }
}
