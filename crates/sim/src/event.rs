//! Internal event-queue entries and cancellation tokens.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Opaque handle identifying a scheduled event, usable to cancel it before
/// it fires.
///
/// Tokens are unique for the lifetime of a [`crate::Scheduler`]; cancelling a
/// token that already fired (or was already cancelled) is a harmless no-op.
/// The token carries the event's identity in the scheduler's
/// `(time, seq)` total order: the sequence number names the event, and
/// the (clamp-adjusted) firing time lets the calendar backend jump
/// straight to the event's bucket on cancellation instead of walking
/// every bucket (see [`crate::Scheduler::cancel`]) — the schedule/pop
/// fast path still carries no per-event cancellation bookkeeping.
///
/// The token additionally carries an opaque backend placement hint
/// (the heap backend's slab slot), letting that backend cancel with one
/// slot probe instead of a slab walk. The hint is *not* part of the
/// token's identity: equality, ordering and hashing cover `(seq, time)`
/// only, so tokens for the same event compare equal across backends.
#[derive(Debug, Clone, Copy)]
pub struct EventToken {
    pub(crate) seq: u64,
    pub(crate) time: SimTime,
    pub(crate) slot: u32,
}

impl PartialEq for EventToken {
    fn eq(&self, other: &Self) -> bool {
        (self.seq, self.time) == (other.seq, other.time)
    }
}

impl Eq for EventToken {}

impl std::hash::Hash for EventToken {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.seq, self.time).hash(state);
    }
}

impl PartialOrd for EventToken {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventToken {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.seq, self.time).cmp(&(other.seq, other.time))
    }
}

/// A scheduled event: payload plus its firing time and tie-break sequence.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> ScheduledEvent<E> {
    /// The simulated instant at which the event fires.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Consumes the entry and returns the payload.
    pub fn into_event(self) -> E {
        self.event
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Orders by `(time, seq)`. Used inside a max-heap via `Reverse`, so the
    /// earliest-scheduled event at the earliest time pops first —
    /// deterministic FIFO among simultaneous events.
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, seq: u64) -> ScheduledEvent<()> {
        ScheduledEvent {
            time: SimTime::from_nanos(t),
            seq,
            event: (),
        }
    }

    #[test]
    fn orders_by_time_then_seq() {
        assert!(ev(1, 5) < ev(2, 0));
        assert!(ev(1, 0) < ev(1, 1));
        assert_eq!(ev(1, 1).cmp(&ev(1, 1)), Ordering::Equal);
    }

    #[test]
    fn accessors() {
        let e = ScheduledEvent {
            time: SimTime::from_secs(1),
            seq: 3,
            event: 42u32,
        };
        assert_eq!(e.time(), SimTime::from_secs(1));
        assert_eq!(e.into_event(), 42);
    }
}
