//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation (mobility, traffic, shadowing,
//! …) draws from its own [`RngStream`], derived from a single master seed and
//! a stable stream label. Two benefits:
//!
//! * Changing how often one component draws does not perturb the numbers any
//!   other component sees (variance reduction across experiment arms).
//! * A run is reproducible from `(master_seed, labels)` alone.
//!
//! The generator is SplitMix64-seeded xoshiro256++, implemented locally so
//! the statistical stream is stable regardless of `rand` version. The crate
//! still implements [`rand::RngCore`] so the distribution adaptors from
//! `rand` can be used on top.

use rand::RngCore;

/// SplitMix64 step; used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A named, independently seeded random stream.
///
/// ```
/// use mtnet_sim::RngStream;
/// use rand::RngCore;
/// let mut a = RngStream::derive(42, "mobility/mn0");
/// let mut b = RngStream::derive(42, "mobility/mn0");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed+label => same stream
/// let mut c = RngStream::derive(42, "traffic/mn0");
/// assert_ne!(a.next_u64(), c.next_u64()); // different label => independent
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngStream {
    s: [u64; 4],
}

impl RngStream {
    /// Creates a stream directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not be seeded with all zeros; splitmix output of any
        // seed is never all-zero across four draws, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        RngStream { s }
    }

    /// Derives an independent stream from a master seed and a stable label.
    ///
    /// The label is hashed with an FNV-1a/SplitMix combination; any two
    /// distinct labels yield (with overwhelming probability) uncorrelated
    /// streams.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut mix = master_seed ^ h;
        let folded = splitmix64(&mut mix) ^ splitmix64(&mut mix);
        Self::from_seed(folded)
    }

    /// Derives a child stream from this stream and a sub-label, without
    /// advancing `self`.
    pub fn child(&self, label: &str) -> Self {
        let base = self.s[0] ^ self.s[1].rotate_left(17) ^ self.s[2].rotate_left(31) ^ self.s[3];
        Self::derive(base, label)
    }

    /// Core xoshiro256++ step.
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_u64 range must be non-empty");
        loop {
            let x = self.next();
            let (hi, lo) = {
                let m = u128::from(x) * u128::from(n);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform index in `[0, len)` for slice access.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.uniform_u64(len as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Avoid ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (single draw; the pair's partner is
    /// discarded to keep the stream consumption per call fixed).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "bad std_dev");
        mean + std_dev * self.std_normal()
    }

    /// Pareto-distributed value with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive and finite.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min.is_finite() && x_min > 0.0, "bad x_min");
        assert!(alpha.is_finite() && alpha > 0.0, "bad alpha");
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }
}

/// Hierarchical, order-independent seed derivation for parallel batches.
///
/// A `SeedTree` names a node in an (unbounded) tree of seed namespaces
/// rooted at a master seed. Children are addressed by string label or by
/// numeric index, and the 64-bit sub-seed of a node is a pure function of
/// the path from the root — **not** of how many other nodes were derived,
/// in which order, or on which thread. That is the determinism contract
/// the parallel replication runner builds on: the `(experiment,
/// architecture, replication)` tuple alone fixes every random number a
/// run consumes.
///
/// ```
/// use mtnet_sim::rng::SeedTree;
/// let a = SeedTree::new(42).label("E10").label("multi-tier").index(3);
/// let b = SeedTree::new(42).label("E10").label("multi-tier").index(3);
/// assert_eq!(a.seed(), b.seed()); // same path => same seed
/// let c = SeedTree::new(42).label("E10").label("pure-mip").index(3);
/// assert_ne!(a.seed(), c.seed()); // any path difference => independent
/// ```
///
/// Label and index children live in separate namespaces (`label("3")` and
/// `index(3)` differ), and every absorption step mixes in the byte length,
/// so concatenation tricks (`"ab"+"c"` vs `"a"+"bc"`) cannot collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

/// Domain-separation tag for label-addressed children.
const SEED_TAG_LABEL: u64 = 0x6c61_6265_6c00_0001;
/// Domain-separation tag for index-addressed children.
const SEED_TAG_INDEX: u64 = 0x696e_6465_7800_0002;

impl SeedTree {
    /// The root namespace of a master seed.
    pub fn new(master_seed: u64) -> Self {
        let mut mix = master_seed ^ 0x5eed_c0de_5eed_c0de;
        SeedTree {
            state: splitmix64(&mut mix),
        }
    }

    /// The child namespace addressed by a string label.
    pub fn label(self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut mix = self.state ^ h ^ SEED_TAG_LABEL;
        let _ = splitmix64(&mut mix);
        let mut mix2 = mix ^ (label.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeedTree {
            state: splitmix64(&mut mix2),
        }
    }

    /// The child namespace addressed by a numeric index (replication
    /// number, shard id, …).
    pub fn index(self, index: u64) -> Self {
        let mut mix = self.state ^ index ^ SEED_TAG_INDEX;
        let _ = splitmix64(&mut mix);
        let mut mix2 = mix ^ index.rotate_left(32);
        SeedTree {
            state: splitmix64(&mut mix2),
        }
    }

    /// The 64-bit sub-seed of this node, e.g. for `WorldConfig::seed`.
    pub fn seed(self) -> u64 {
        let mut mix = self.state;
        splitmix64(&mut mix)
    }

    /// An [`RngStream`] seeded by this node.
    pub fn stream(self) -> RngStream {
        RngStream::from_seed(self.seed())
    }
}

/// The sub-seed for one `(experiment, architecture, replication)` run —
/// the standard derivation the batch runner and the experiment harness
/// share. Pure in its arguments: scheduling order cannot perturb it.
pub fn replication_seed(master_seed: u64, experiment: &str, architecture: &str, rep: u64) -> u64 {
    seed_for_path(master_seed, &[experiment, architecture], rep)
}

/// The sub-seed for an arbitrary-depth label path plus a replication
/// index — the generalization of [`replication_seed`] that scenario specs
/// and sweep cells use (`["E10", "multi-tier+rsmc"]` for an experiment
/// arm, `["sweep", family, cell-label]` for a sweep cell). Equal paths
/// give equal seeds; any segment difference decorrelates the streams, and
/// `seed_for_path(m, &[e, a], r) == replication_seed(m, e, a, r)` by
/// construction.
pub fn seed_for_path<S: AsRef<str>>(master_seed: u64, path: &[S], rep: u64) -> u64 {
    let mut tree = SeedTree::new(master_seed);
    for segment in path {
        tree = tree.label(segment.as_ref());
    }
    tree.index(rep).seed()
}

impl RngCore for RngStream {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = RngStream::derive(7, "x");
        let mut b = RngStream::derive(7, "x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_decorrelate() {
        let mut a = RngStream::derive(7, "x");
        let mut b = RngStream::derive(7, "y");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = RngStream::derive(1, "x");
        let mut b = RngStream::derive(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn child_streams_are_stable_and_independent() {
        let parent = RngStream::derive(9, "p");
        let mut c1 = parent.child("a");
        let mut c2 = parent.child("a");
        let mut c3 = parent.child("b");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = RngStream::derive(3, "u");
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = RngStream::derive(3, "u2");
        for _ in 0..10_000 {
            let x = r.uniform(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_unbiased_small_range() {
        let mut r = RngStream::derive(11, "lemire");
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.uniform_u64(3) as usize] += 1;
        }
        for c in counts {
            // each bucket expects 10k; allow 5% deviation
            assert!((9_500..10_500).contains(&c), "biased: {counts:?}");
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = RngStream::derive(5, "exp");
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = RngStream::derive(5, "norm");
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pareto_lower_bound_holds() {
        let mut r = RngStream::derive(5, "par");
        for _ in 0..10_000 {
            assert!(r.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::derive(6, "chance");
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = RngStream::derive(6, "bytes");
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_u64_zero_panics() {
        RngStream::derive(1, "z").uniform_u64(0);
    }

    #[test]
    fn seed_tree_is_pure_in_its_path() {
        let a = SeedTree::new(7).label("exp").label("arch").index(4);
        let b = SeedTree::new(7).label("exp").label("arch").index(4);
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.stream().next_u64(), b.stream().next_u64());
    }

    #[test]
    fn seed_tree_separates_label_and_index_namespaces() {
        let root = SeedTree::new(11);
        assert_ne!(root.label("3").seed(), root.index(3).seed());
        assert_ne!(root.label("").seed(), root.seed());
        assert_ne!(root.index(0).seed(), root.seed());
    }

    #[test]
    fn seed_tree_resists_concatenation_collisions() {
        let root = SeedTree::new(11);
        assert_ne!(
            root.label("ab").label("c").seed(),
            root.label("a").label("bc").seed()
        );
        assert_ne!(root.label("abc").seed(), root.label("ab").label("c").seed());
    }

    #[test]
    fn seed_tree_masters_decorrelate() {
        let a = SeedTree::new(1).label("x").index(0).seed();
        let b = SeedTree::new(2).label("x").index(0).seed();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_for_path_generalizes_replication_seed() {
        assert_eq!(
            seed_for_path(42, &["E10", "multi-tier+rsmc"], 3),
            replication_seed(42, "E10", "multi-tier+rsmc", 3)
        );
        // Deeper paths are their own namespaces.
        let sweep = seed_for_path(42, &["sweep", "dense-urban", "arch=pico"], 0);
        assert_eq!(
            sweep,
            seed_for_path(42, &["sweep", "dense-urban", "arch=pico"], 0)
        );
        assert_ne!(
            sweep,
            seed_for_path(42, &["sweep", "dense-urban", "arch=pico"], 1)
        );
        assert_ne!(sweep, seed_for_path(42, &["sweep", "dense-urban"], 0));
        assert_ne!(
            sweep,
            seed_for_path(43, &["sweep", "dense-urban", "arch=pico"], 0)
        );
    }

    #[test]
    fn replication_seeds_unique_over_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for exp in ["E1", "E2", "E10", "E11", "E12"] {
            for arch in ["multi-tier+rsmc", "pure-mobile-ip", "flat-cellular-ip"] {
                for rep in 0..50u64 {
                    assert!(
                        seen.insert(replication_seed(42, exp, arch, rep)),
                        "collision at ({exp}, {arch}, {rep})"
                    );
                }
            }
        }
    }
}
