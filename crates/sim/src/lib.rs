//! # mtnet-sim — deterministic discrete-event simulation engine
//!
//! A small, sequential, fully deterministic discrete-event simulator (DES)
//! used as the execution substrate for the multi-tier Mobile IP / Cellular IP
//! reproduction. Design goals:
//!
//! * **Determinism.** Events that fire at the same [`SimTime`] are executed
//!   in the order they were scheduled (a monotone sequence number breaks
//!   ties). All randomness flows through seeded [`rng::RngStream`]s derived
//!   from a single master seed, so a run is a pure function of
//!   `(model, seed)`.
//! * **No wall clock, no threads inside a run.** Simulated time is an
//!   integer nanosecond counter; the engine is a single loop over a binary
//!   heap. Parallelism lives *between* runs: [`runner::BatchRunner`] fans
//!   independent simulations across cores, and [`rng::SeedTree`] splits a
//!   master seed into per-run streams that are pure functions of the
//!   `(experiment, architecture, replication)` path, so results are
//!   byte-identical at any thread count.
//! * **Model-agnostic.** The engine knows nothing about networks: users
//!   implement [`Model`] with their own event type and mutate their own
//!   world state.
//!
//! ## Example
//!
//! ```
//! use mtnet_sim::{Model, Context, SimTime, SimDuration, Simulator};
//!
//! struct Counter { fired: u32 }
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle_event(&mut self, ctx: &mut Context<'_, Ev>, _ev: Ev) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             ctx.schedule_in(SimDuration::from_secs(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Counter { fired: 0 });
//! sim.schedule_at(SimTime::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.model().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod hash;
mod model;
pub mod rng;
pub mod runner;
mod scheduler;
mod simulator;
mod time;

pub use event::{EventToken, ScheduledEvent};
pub use hash::{FxHashMap, FxHashSet};
pub use model::{Context, Model};
pub use rng::{RngStream, SeedTree};
pub use runner::BatchRunner;
pub use scheduler::{Scheduler, SchedulerKind};
pub use simulator::{RunOutcome, Simulator};
pub use time::{SimDuration, SimTime};
