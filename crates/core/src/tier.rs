//! The two managed tiers of the proposed architecture.
//!
//! The paper's cellular hierarchy has three levels (pico, micro, macro) but
//! "the focused facilities of mobility management and handoff strategy are
//! separated into micro-cell and macro-cell" (§4): Cellular IP runs in the
//! micro-tier, Mobile IP in the macro-tier. Pico cells, where deployed,
//! are managed exactly like micro cells (they join the same Cellular IP
//! tree), so the mobility machinery only distinguishes these two tiers.

use mtnet_radio::CellKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mobility-management tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Micro-tier: micro (and pico) cells under Cellular IP.
    Micro,
    /// Macro-tier: macro cells under Mobile IP.
    Macro,
}

impl Tier {
    /// Both tiers.
    pub const ALL: [Tier; 2] = [Tier::Micro, Tier::Macro];

    /// The tier managing a given radio cell kind.
    ///
    /// Satellite cells are treated as macro-tier (they are the outermost
    /// umbrella of Fig 2.1 and, like macro cells, are Mobile IP-managed).
    pub fn of_cell(kind: CellKind) -> Tier {
        match kind {
            CellKind::Pico | CellKind::Micro => Tier::Micro,
            CellKind::Macro | CellKind::Satellite => Tier::Macro,
        }
    }

    /// The other tier.
    pub fn other(self) -> Tier {
        match self {
            Tier::Micro => Tier::Macro,
            Tier::Macro => Tier::Micro,
        }
    }

    /// Speed threshold above which the handoff strategy prefers this tier's
    /// complement: nodes faster than this belong in the macro tier (they
    /// would otherwise hand off between micro cells too often), slower
    /// nodes in the micro tier (where bandwidth is plentiful). The value —
    /// about a brisk cycling speed — follows the multi-tier speed-sensitive
    /// assignment literature the paper builds on (refs \[6]\[7]).
    pub const SPEED_THRESHOLD_MPS: f64 = 8.0;

    /// The tier a node moving at `speed_mps` should prefer, considering
    /// only the speed factor of §3.2.
    pub fn preferred_for_speed(speed_mps: f64) -> Tier {
        if speed_mps > Self::SPEED_THRESHOLD_MPS {
            Tier::Macro
        } else {
            Tier::Micro
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Micro => f.write_str("micro"),
            Tier::Macro => f.write_str("macro"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_kind_mapping() {
        assert_eq!(Tier::of_cell(CellKind::Pico), Tier::Micro);
        assert_eq!(Tier::of_cell(CellKind::Micro), Tier::Micro);
        assert_eq!(Tier::of_cell(CellKind::Macro), Tier::Macro);
        assert_eq!(Tier::of_cell(CellKind::Satellite), Tier::Macro);
    }

    #[test]
    fn other_is_involution() {
        for t in Tier::ALL {
            assert_eq!(t.other().other(), t);
            assert_ne!(t.other(), t);
        }
    }

    #[test]
    fn speed_preference() {
        assert_eq!(Tier::preferred_for_speed(1.0), Tier::Micro, "pedestrian");
        assert_eq!(Tier::preferred_for_speed(30.0), Tier::Macro, "highway");
        // Threshold itself stays micro (strictly-greater comparison).
        assert_eq!(
            Tier::preferred_for_speed(Tier::SPEED_THRESHOLD_MPS),
            Tier::Micro
        );
    }

    #[test]
    fn display() {
        assert_eq!(Tier::Micro.to_string(), "micro");
        assert_eq!(Tier::Macro.to_string(), "macro");
    }
}
