//! Scenario presets: the proposed architecture and its baselines over
//! shared geographies and populations.

use crate::handoff::HandoffFactors;
use crate::report::SimReport;
use crate::spec::ScenarioSpec;
use crate::world::{World, WorldConfig};
use mtnet_cellularip::HandoffKind;
use mtnet_sim::SimDuration;

/// Width of one domain strip, meters (mirrors the spec-layer default).
const DOMAIN_WIDTH: f64 = 3_000.0;

/// Which architecture an experiment arm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// The paper's proposal: Mobile IP macro-tier + Cellular IP micro-tier
    /// with per-domain RSMCs (§4).
    MultiTier {
        /// RSMC active (location cache + HA/CN notification). `false`
        /// gives the "hierarchy without RSMC" ablation.
        rsmc: bool,
        /// Semisoft micro-tier handoff; `false` = hard handoff.
        semisoft: bool,
    },
    /// Baseline: Mobile IP only, macro cells, every BS an FA, full
    /// registration on every handoff (§2.2.1).
    PureMobileIp,
    /// Baseline: flat Cellular IP micro-tier only, one gateway per domain,
    /// no macro umbrella (§2.2.2).
    FlatCellularIp,
}

impl ArchKind {
    /// The paper's full architecture.
    pub fn multi_tier() -> ArchKind {
        ArchKind::MultiTier {
            rsmc: true,
            semisoft: true,
        }
    }

    /// The paper's architecture with hard handoff (Fig 2.4 comparison).
    pub fn multi_tier_hard() -> ArchKind {
        ArchKind::MultiTier {
            rsmc: true,
            semisoft: false,
        }
    }

    /// Hierarchy without the RSMC (E9 ablation).
    pub fn multi_tier_no_rsmc() -> ArchKind {
        ArchKind::MultiTier {
            rsmc: false,
            semisoft: true,
        }
    }

    /// Canonical, bijective textual form for scenario-spec files. Unlike
    /// [`ArchKind::label`] (a display label that collapses the two
    /// no-RSMC variants), every architecture renders distinctly, so
    /// `parse_label(canonical(a)) == a` for all values.
    pub fn canonical(&self) -> &'static str {
        match self {
            ArchKind::MultiTier {
                rsmc: false,
                semisoft: false,
            } => "multi-tier-no-rsmc(hard)",
            other => other.label(),
        }
    }

    /// Parses either canonical form or display label.
    pub fn parse_label(s: &str) -> Option<ArchKind> {
        match s {
            "multi-tier+rsmc" => Some(ArchKind::multi_tier()),
            "multi-tier(hard)" => Some(ArchKind::multi_tier_hard()),
            "multi-tier-no-rsmc" => Some(ArchKind::multi_tier_no_rsmc()),
            "multi-tier-no-rsmc(hard)" => Some(ArchKind::MultiTier {
                rsmc: false,
                semisoft: false,
            }),
            "pure-mobile-ip" => Some(ArchKind::PureMobileIp),
            "flat-cellular-ip" => Some(ArchKind::FlatCellularIp),
            _ => None,
        }
    }

    /// Short display label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArchKind::MultiTier {
                rsmc: true,
                semisoft: true,
            } => "multi-tier+rsmc",
            ArchKind::MultiTier {
                rsmc: true,
                semisoft: false,
            } => "multi-tier(hard)",
            ArchKind::MultiTier { rsmc: false, .. } => "multi-tier-no-rsmc",
            ArchKind::PureMobileIp => "pure-mobile-ip",
            ArchKind::FlatCellularIp => "flat-cellular-ip",
        }
    }

    pub(crate) fn apply(self, cfg: &mut WorldConfig) {
        match self {
            ArchKind::MultiTier { rsmc, semisoft } => {
                cfg.has_macro = true;
                cfg.has_micro = true;
                cfg.mip_only = false;
                cfg.rsmc_enabled = rsmc;
                cfg.notify_cn = rsmc;
                cfg.handoff_kind = if semisoft {
                    HandoffKind::default_semisoft()
                } else {
                    HandoffKind::Hard
                };
            }
            ArchKind::PureMobileIp => {
                cfg.has_macro = true;
                cfg.has_micro = false;
                cfg.mip_only = true;
                cfg.rsmc_enabled = false;
                cfg.notify_cn = false;
                cfg.handoff_kind = HandoffKind::Hard;
            }
            ArchKind::FlatCellularIp => {
                cfg.has_macro = false;
                cfg.has_micro = true;
                cfg.mip_only = false;
                cfg.rsmc_enabled = false;
                cfg.notify_cn = false;
                cfg.handoff_kind = HandoffKind::Hard;
            }
        }
    }
}

/// The population mix of a scenario.
#[derive(Debug, Clone, Copy)]
pub struct Population {
    /// Walking users on the street row (micro-tier customers).
    pub pedestrians: usize,
    /// Highway vehicles shuttling across all domains (macro-tier
    /// customers, the inter-domain handoff drivers).
    pub vehicles: usize,
    /// Cyclists commuting along one domain's street row at ~6 m/s —
    /// below the tier speed threshold, so they stay in the micro tier and
    /// generate frequent micro→micro handoffs (the Fig 2.4 / Fig 3.4c
    /// workload).
    pub cyclists: usize,
}

impl Population {
    /// Total node count.
    pub fn total(&self) -> usize {
        self.pedestrians + self.vehicles + self.cyclists
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Master seed.
    pub seed: u64,
    /// Architecture under test.
    pub arch: ArchKind,
    /// Domains laid out left to right; consecutive pairs share an upper
    /// BS (Fig 3.2's region), odd tail domains stand alone (Fig 3.3).
    pub n_domains: usize,
    /// Micro cells per domain.
    pub micro_per_domain: usize,
    /// Population mix.
    pub population: Population,
    /// Give every node a voice flow.
    pub voice: bool,
    /// Give every third node a video flow.
    pub video: bool,
    /// Give every fourth node a web flow.
    pub web: bool,
    /// §3.2 decision factors (ablations).
    pub factors: HandoffFactors,
    /// Consecutive domain pairs share an upper-layer BS (Fig 3.2). With
    /// `false` every domain gets its own upper BS, so all inter-domain
    /// handoffs are the Fig 3.3 different-upper case.
    pub share_upper: bool,
    /// Overrides the Cellular IP route-update period (E3 sweeps).
    pub route_update_override: Option<SimDuration>,
    /// Overrides the semisoft bicast delay (E4 sweeps).
    pub semisoft_delay_override: Option<SimDuration>,
    /// Overrides the cell-table record time-limitation (E5 sweeps).
    pub table_lifetime_override: Option<SimDuration>,
    /// Remove the middle domain's macro radio (rural coverage hole).
    pub macro_hole: bool,
    /// Add a satellite overlay domain covering the whole corridor
    /// (Fig 2.1's outermost tier).
    pub satellite: bool,
}

impl Scenario {
    /// The standard three-domain city: domains 0 and 1 share an upper BS
    /// (exercising Fig 3.2), domain 2 stands alone (Fig 3.3), mixed
    /// pedestrian/vehicle population, voice + video traffic.
    pub fn small_city(seed: u64) -> Scenario {
        Scenario {
            seed,
            arch: ArchKind::multi_tier(),
            n_domains: 3,
            micro_per_domain: 4,
            population: Population {
                pedestrians: 6,
                vehicles: 3,
                cyclists: 0,
            },
            voice: true,
            video: true,
            web: false,
            factors: HandoffFactors::all(),
            share_upper: true,
            route_update_override: None,
            semisoft_delay_override: None,
            table_lifetime_override: None,
            macro_hole: false,
            satellite: false,
        }
    }

    /// A two-domain corridor with a single commuting vehicle — the
    /// controlled inter-domain handoff scenario of Figs 3.2/3.3.
    pub fn commute_corridor(seed: u64) -> Scenario {
        Scenario {
            seed,
            arch: ArchKind::multi_tier(),
            n_domains: 2,
            micro_per_domain: 4,
            population: Population {
                pedestrians: 2,
                vehicles: 1,
                cyclists: 0,
            },
            voice: true,
            video: false,
            web: false,
            factors: HandoffFactors::all(),
            share_upper: true,
            route_update_override: None,
            semisoft_delay_override: None,
            table_lifetime_override: None,
            macro_hole: false,
            satellite: false,
        }
    }

    /// A single dense domain: intra-domain (Fig 3.4) handoffs only.
    pub fn single_domain(seed: u64) -> Scenario {
        Scenario {
            seed,
            arch: ArchKind::multi_tier(),
            n_domains: 1,
            micro_per_domain: 6,
            population: Population {
                pedestrians: 4,
                vehicles: 0,
                cyclists: 4,
            },
            voice: true,
            video: true,
            web: true,
            factors: HandoffFactors::all(),
            share_upper: true,
            route_update_override: None,
            semisoft_delay_override: None,
            table_lifetime_override: None,
            macro_hole: false,
            satellite: false,
        }
    }

    /// Replaces the architecture.
    pub fn with_arch(mut self, arch: ArchKind) -> Scenario {
        self.arch = arch;
        self
    }

    /// Replaces the master seed (replication sweeps: derive per-run seeds
    /// with `mtnet_sim::rng::SeedTree` and stamp them in here).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Replaces the decision factors (E12 ablations).
    pub fn with_factors(mut self, factors: HandoffFactors) -> Scenario {
        self.factors = factors;
        self
    }

    /// Replaces the population.
    pub fn with_population(mut self, population: Population) -> Scenario {
        self.population = population;
        self
    }

    /// A rural corridor: three domains whose middle domain has **no macro
    /// radio** — a coverage hole that fast nodes fall into — exercised
    /// with and without the satellite overlay (Fig 2.1's outermost tier).
    pub fn rural_corridor(seed: u64) -> Scenario {
        Scenario {
            macro_hole: true,
            ..Scenario::small_city(seed)
        }
        .with_population(Population {
            pedestrians: 0,
            vehicles: 2,
            cyclists: 0,
        })
    }

    /// Adds the satellite overlay.
    pub fn with_satellite(mut self) -> Scenario {
        self.satellite = true;
        self
    }

    /// Gives every domain its own upper BS (all inter-domain handoffs
    /// become the Fig 3.3 different-upper case).
    pub fn without_shared_upper(mut self) -> Scenario {
        self.share_upper = false;
        self
    }

    /// Overrides the route-update period (E3).
    pub fn with_route_update(mut self, period: SimDuration) -> Scenario {
        self.route_update_override = Some(period);
        self
    }

    /// Overrides the semisoft bicast delay (E4).
    pub fn with_semisoft_delay(mut self, delay: SimDuration) -> Scenario {
        self.semisoft_delay_override = Some(delay);
        self
    }

    /// Overrides the cell-table record time-limitation (E5).
    pub fn with_table_lifetime(mut self, lifetime: SimDuration) -> Scenario {
        self.table_lifetime_override = Some(lifetime);
        self
    }

    /// Total width of the deployed corridor, meters.
    pub fn corridor_width(&self) -> f64 {
        self.n_domains as f64 * DOMAIN_WIDTH
    }

    /// The equivalent declarative [`ScenarioSpec`] (raw seed, so the
    /// master seed is irrelevant). Durations default to the spec base;
    /// callers that run the scenario set them explicitly.
    ///
    /// Millisecond-resolution overrides survive the conversion exactly;
    /// sub-millisecond override precision (never used by the presets or
    /// runners) is rounded **up** to the next millisecond — never down,
    /// so a tiny override cannot degenerate to a 0 ms period that would
    /// reschedule at the same simulated instant forever.
    pub fn to_spec(&self) -> ScenarioSpec {
        let ms = |d: SimDuration| d.as_nanos().div_ceil(1_000_000) as u64;
        ScenarioSpec {
            name: "scenario".into(),
            seed: crate::spec::SeedSpec::Raw(self.seed),
            arch: self.arch,
            n_domains: self.n_domains as u32,
            micro_per_domain: self.micro_per_domain as u32,
            share_upper: self.share_upper,
            macro_hole: self.macro_hole,
            satellite: self.satellite,
            pedestrians: self.population.pedestrians as u32,
            cyclists: self.population.cyclists as u32,
            vehicles: self.population.vehicles as u32,
            voice_every: u32::from(self.voice),
            video_every: if self.video { 3 } else { 0 },
            web_every: if self.web { 4 } else { 0 },
            factors: self.factors,
            route_update_ms: self.route_update_override.map(ms),
            semisoft_delay_ms: self.semisoft_delay_override.map(ms),
            table_lifetime_ms: self.table_lifetime_override.map(ms),
            ..ScenarioSpec::base()
        }
    }

    /// Builds the world (via the declarative spec layer — see
    /// [`World::from_spec`]).
    pub fn build(&self) -> World {
        World::from_spec(&self.to_spec(), 0)
    }

    /// Builds and runs for `secs` simulated seconds.
    pub fn run_secs(&self, secs: f64) -> SimReport {
        self.build().run(SimDuration::from_secs_f64(secs))
    }

    /// Builds and runs for `secs` simulated seconds, wrapping the result
    /// with the run's identity (architecture label, seed, replication).
    pub fn run_report(&self, secs: f64, replication: u64) -> crate::report::RunReport {
        self.build().run_report(
            SimDuration::from_secs_f64(secs),
            self.arch.label(),
            replication,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        for s in [
            Scenario::small_city(1),
            Scenario::commute_corridor(2),
            Scenario::single_domain(3),
        ] {
            let w = s.build();
            let dbg = format!("{w:?}");
            assert!(dbg.contains("World"), "{dbg}");
        }
    }

    #[test]
    fn arch_labels_distinct() {
        let labels: std::collections::HashSet<&str> = [
            ArchKind::multi_tier(),
            ArchKind::multi_tier_hard(),
            ArchKind::multi_tier_no_rsmc(),
            ArchKind::PureMobileIp,
            ArchKind::FlatCellularIp,
        ]
        .iter()
        .map(|a| a.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn corridor_width_scales() {
        assert_eq!(Scenario::small_city(1).corridor_width(), 9_000.0);
        assert_eq!(Scenario::commute_corridor(1).corridor_width(), 6_000.0);
    }

    #[test]
    fn smoke_run_multi_tier() {
        let report = Scenario::commute_corridor(7).run_secs(20.0);
        let qos = report.aggregate_qos();
        assert!(qos.sent > 100, "traffic flowed: {} sent", qos.sent);
        assert!(
            qos.received > 0,
            "packets delivered; drops: {:?}",
            report.drops
        );
        assert!(
            qos.loss_rate < 0.9,
            "loss {:.3} suspiciously total",
            qos.loss_rate
        );
    }

    #[test]
    fn smoke_run_baselines() {
        for arch in [ArchKind::PureMobileIp, ArchKind::FlatCellularIp] {
            let report = Scenario::commute_corridor(7).with_arch(arch).run_secs(15.0);
            let qos = report.aggregate_qos();
            assert!(qos.sent > 50, "{}: no traffic", arch.label());
            assert!(
                qos.received > 0,
                "{}: nothing delivered, drops {:?}",
                arch.label(),
                report.drops
            );
        }
    }

    #[test]
    fn vehicles_cause_handoffs() {
        // The corridor is 6 km; at 25 m/s the shuttle crosses the domain
        // boundary around t = 104 s and returns around t = 344 s.
        let report = Scenario::commute_corridor(11).run_secs(250.0);
        assert!(
            report.handoffs.total() >= 2,
            "a 25 m/s shuttle must hand off: {:?}",
            report.handoffs.completed
        );
        assert!(
            report
                .handoffs
                .completed
                .keys()
                .any(|t| t.is_inter_domain()),
            "domain boundary crossing must register: {:?}",
            report.handoffs.completed
        );
    }

    #[test]
    fn cyclists_generate_micro_micro_handoffs() {
        let s = Scenario::single_domain(5);
        let report = s.run_secs(200.0);
        let micro_micro = report
            .handoffs
            .completed
            .get(&crate::handoff::HandoffType::IntraMicroToMicro)
            .copied()
            .unwrap_or(0);
        assert!(
            micro_micro >= 4,
            "cyclists crossing the street row must hand off micro-to-micro: {:?}",
            report.handoffs.completed
        );
    }
}
