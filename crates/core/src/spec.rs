//! Declarative scenario specifications and their canonical text format.
//!
//! A [`ScenarioSpec`] **fully** describes one simulation run — tier
//! layout and cell geometry, mobility mix with speed profiles, traffic
//! mix, protocol knobs, duration and seed derivation — as plain data.
//! [`ScenarioSpec::build`] (also reachable as `World::from_spec`) is the
//! single world-assembly path: the [`crate::scenario::Scenario`] presets
//! and every experiment runner go through it, so a run is reproducible
//! from `(canonical spec text, master seed)` alone. That pair is exactly
//! what the sweep engine's content-addressed result store keys on.
//!
//! The text format is a deliberately small hand-rolled `key = value`
//! line format (the vendored `serde` is marker-only, so there is no
//! derive-based serializer to lean on): [`ScenarioSpec::render`] emits
//! the canonical form — every field, fixed order, round-trip-exact
//! floats — and [`ScenarioSpec::parse`] reads it back such that
//! `parse(render(s)) == s` for every valid spec. [`ScenarioSpec::set`]
//! applies one `key = value` assignment and is shared by the parser and
//! the sweep engine's axis expansion, so an axis can sweep any field the
//! format names.
//!
//! ```
//! use mtnet_core::spec::ScenarioSpec;
//!
//! let spec = ScenarioSpec::commute_corridor().with_seed_path("demo", "arm", 0);
//! let text = spec.render();
//! assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
//! let report = spec.with_duration_s(20.0).run(42);
//! assert!(report.aggregate_qos().sent > 0);
//! ```

use crate::handoff::{DecisionConfig, HandoffFactors};
use crate::report::{RunReport, SimReport};
use crate::scenario::ArchKind;
use crate::world::{DomainSpec, FlowKind, LoadCurve, World, WorldBuilder, WorldConfig};
use mtnet_cellularip::HandoffKind;
use mtnet_mobility::{LinearCommute, Point, RandomWaypoint, Rect, SpeedClass};
use mtnet_radio::CellKind;
use mtnet_sim::rng::seed_for_path;
use mtnet_sim::SimDuration;

/// How a spec's world seed is derived at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedSpec {
    /// A literal 64-bit seed; the master seed is ignored.
    Raw(u64),
    /// A label path plus replication index resolved against the master
    /// seed via [`mtnet_sim::rng::seed_for_path`] — the derivation
    /// experiment arms (`["E10", arm]`) and sweep cells
    /// (`["sweep", family, cell]`) share.
    Path {
        /// Label segments, outermost first.
        path: Vec<String>,
        /// Replication index within the path's namespace.
        replication: u64,
    },
}

impl SeedSpec {
    /// The world seed this spec resolves to under `master_seed`.
    pub fn resolve(&self, master_seed: u64) -> u64 {
        match self {
            SeedSpec::Raw(seed) => *seed,
            SeedSpec::Path { path, replication } => seed_for_path(master_seed, path, *replication),
        }
    }

    /// The replication index (0 for raw seeds).
    pub fn replication(&self) -> u64 {
        match self {
            SeedSpec::Raw(_) => 0,
            SeedSpec::Path { replication, .. } => *replication,
        }
    }
}

/// One administrative cell-outage window: the BS stops answering every
/// measurement path from `start_s` to `end_s`, then comes back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutage {
    /// Cell id, in build order: each domain allocates its macro (or
    /// satellite) cell first, then its micro row left to right; a shared
    /// upper BS claims one id when its region first appears.
    pub cell: u32,
    /// Outage start, seconds of simulated time.
    pub start_s: f64,
    /// Restore time, seconds (must exceed `start_s`).
    pub end_s: f64,
}

/// A periodic up/down flap schedule for one domain's wide-area uplink
/// (the Internet ↔ RSMC duplex link pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFlap {
    /// Domain index whose uplink flaps (the satellite overlay, when
    /// deployed, is the last domain).
    pub domain: u32,
    /// Nominal time of the first down transition, seconds.
    pub start_s: f64,
    /// Flap period, seconds.
    pub period_s: f64,
    /// Fraction of each period spent down, strictly inside (0, 1).
    pub duty: f64,
    /// Per-transition jitter bound, seconds: every down/up edge shifts
    /// late by a seeded uniform draw in `[0, jitter_s)`. Must stay below
    /// `period_s * min(duty, 1 - duty)` so the edge stream remains
    /// strictly ordered and paired.
    pub jitter_s: f64,
    /// Number of down/up cycles.
    pub count: u32,
}

/// An RSMC crash, optionally followed by a standby takeover.
///
/// While dead the RSMC answers nothing — registrations, replies and
/// inter-domain updates addressed to it die at the gateway, and its
/// location/authentication soft state is flushed (the standby starts
/// cold). Plain packet routing through the gateway router survives: the
/// fault is control-plane death, not a line cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsmcFailover {
    /// Domain index whose RSMC dies.
    pub domain: u32,
    /// Crash time, seconds.
    pub at_s: f64,
    /// Standby takeover delay, seconds after the crash; `None` keeps the
    /// RSMC dead for the rest of the run.
    pub takeover_s: Option<f64>,
}

/// A satellite eclipse window: every satellite-tier cell stops answering
/// RSSI probes from `start_s` to `end_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EclipseWindow {
    /// Eclipse start, seconds.
    pub start_s: f64,
    /// Eclipse end, seconds (must exceed `start_s`).
    pub end_s: f64,
}

/// The spec's fault-injection section: deterministic infrastructure
/// failure schedules compiled into the world's fault plan at build time.
///
/// Empty by default, rendered only when non-empty — a spec with an empty
/// `faults` section is byte-identical (text and fingerprint) to one that
/// predates the subsystem.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// BS outage windows.
    pub cell_outages: Vec<CellOutage>,
    /// Wired-uplink flap schedules.
    pub link_flaps: Vec<LinkFlap>,
    /// RSMC crash / takeover events.
    pub rsmc_failovers: Vec<RsmcFailover>,
    /// Satellite eclipse windows.
    pub eclipses: Vec<EclipseWindow>,
}

impl FaultSpec {
    /// True when no fault of any category is scheduled.
    pub fn is_empty(&self) -> bool {
        self.cell_outages.is_empty()
            && self.link_flaps.is_empty()
            && self.rsmc_failovers.is_empty()
            && self.eclipses.is_empty()
    }

    /// Consistency checks against the spec's domain count (the satellite
    /// overlay counts as one extra domain).
    fn validate(&self, total_domains: u32) -> Result<(), SpecError> {
        for o in &self.cell_outages {
            let ok = o.start_s.is_finite()
                && o.end_s.is_finite()
                && o.start_s >= 0.0
                && o.start_s < o.end_s;
            if !ok {
                return Err(err(format!(
                    "cell outage for cell {} needs finite 0 <= start < end",
                    o.cell
                )));
            }
        }
        for f in &self.link_flaps {
            if f.domain >= total_domains {
                return Err(err(format!(
                    "link flap domain {} out of range ({total_domains} domains)",
                    f.domain
                )));
            }
            if f.count == 0 {
                return Err(err("link flap count must be >= 1"));
            }
            let finite = f.start_s.is_finite()
                && f.period_s.is_finite()
                && f.duty.is_finite()
                && f.jitter_s.is_finite();
            if !finite
                || f.start_s < 0.0
                || f.period_s <= 0.0
                || !(f.duty > 0.0 && f.duty < 1.0)
                || f.jitter_s < 0.0
            {
                return Err(err(
                    "link flap needs start >= 0, period > 0, duty in (0,1), jitter >= 0, all finite",
                ));
            }
            // Jittered edges must stay inside their half-period, so the
            // expanded down/up stream is strictly monotone and paired.
            if f.jitter_s >= f.period_s * f.duty.min(1.0 - f.duty) {
                return Err(err(
                    "link flap jitter must be < period * min(duty, 1-duty) to keep edges ordered",
                ));
            }
        }
        for r in &self.rsmc_failovers {
            if r.domain >= total_domains {
                return Err(err(format!(
                    "rsmc failover domain {} out of range ({total_domains} domains)",
                    r.domain
                )));
            }
            if !(r.at_s.is_finite() && r.at_s >= 0.0) {
                return Err(err("rsmc failover time must be non-negative and finite"));
            }
            if let Some(t) = r.takeover_s {
                if !(t.is_finite() && t > 0.0) {
                    return Err(err("rsmc takeover delay must be positive and finite"));
                }
            }
        }
        for e in &self.eclipses {
            let ok = e.start_s.is_finite()
                && e.end_s.is_finite()
                && e.start_s >= 0.0
                && e.start_s < e.end_s;
            if !ok {
                return Err(err("eclipse window needs finite 0 <= start < end"));
            }
        }
        Ok(())
    }
}

/// A complete, declarative description of one simulation run.
///
/// Defaults (via the presets and [`ScenarioSpec::base`]) reproduce the
/// paper's geometry: 3 km domain strips, a street row at y = 1500 m,
/// 400 m micro spacing, pedestrians pausing 10 s, cyclists at 6 m/s,
/// highway vehicles at 25 m/s.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario family name (store keys, sweep labels, tables).
    pub name: String,
    /// Seed derivation.
    pub seed: SeedSpec,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Architecture under test.
    pub arch: ArchKind,
    /// Domains laid out left to right.
    pub n_domains: u32,
    /// Street-row cells per domain.
    pub micro_per_domain: u32,
    /// Tier of the street-row cells (micro, or pico for dense-urban).
    pub micro_kind: CellKind,
    /// Spacing between adjacent street-row BSs, meters.
    pub micro_spacing_m: f64,
    /// Width of one domain strip, meters.
    pub domain_width_m: f64,
    /// The street row's y coordinate, meters.
    pub street_y_m: f64,
    /// Consecutive domain pairs share an upper BS (Fig 3.2); `false`
    /// makes every inter-domain handoff the Fig 3.3 different-upper case.
    pub share_upper: bool,
    /// Remove the middle domain's macro radio (rural coverage hole).
    pub macro_hole: bool,
    /// Add a satellite overlay domain covering the whole corridor.
    pub satellite: bool,
    /// Walking users wandering one domain's street row.
    pub pedestrians: u32,
    /// Cyclists shuttling along one domain's street row.
    pub cyclists: u32,
    /// Highway vehicles shuttling across the whole corridor.
    pub vehicles: u32,
    /// Speed class of the pedestrian random-waypoint population.
    pub pedestrian_class: SpeedClass,
    /// Pedestrian pause at each waypoint, seconds.
    pub pedestrian_pause_s: f64,
    /// Cyclist shuttle speed, m/s (below the tier threshold keeps them
    /// micro-tier customers).
    pub cyclist_speed_mps: f64,
    /// Vehicle shuttle speed, m/s.
    pub vehicle_speed_mps: f64,
    /// Every n-th node gets a voice flow (1 = all, 0 = none).
    pub voice_every: u32,
    /// Every n-th node gets a video flow (1 = all, 0 = none).
    pub video_every: u32,
    /// Every n-th node gets a web flow (1 = all, 0 = none).
    pub web_every: u32,
    /// §3.2 decision factors.
    pub factors: HandoffFactors,
    /// Overrides the Cellular IP route-update period, ms.
    pub route_update_ms: Option<u64>,
    /// Overrides the semisoft bicast delay, ms (no effect on hard
    /// handoff architectures).
    pub semisoft_delay_ms: Option<u64>,
    /// Overrides the cell-table record time-limitation, ms.
    pub table_lifetime_ms: Option<u64>,
    /// Overrides the idle-node paging-update period, ms.
    pub paging_update_ms: Option<u64>,
    /// Overrides the mobility measurement period, ms. Metro-scale worlds
    /// stretch this (5 s and up) so a million slow pedestrians don't
    /// burn the event budget re-measuring RSSI five times a second.
    pub move_sample_ms: Option<u64>,
    /// Overrides the §3.1 Location Message period, ms.
    pub location_update_ms: Option<u64>,
    /// World-level aggregate QoS: per-flow delay distributions collapse
    /// into one constant-memory accumulator (see
    /// `mtnet_core::report::AggregateQos`). Off by default; rendered
    /// only when on, so pre-metro canonical texts are unchanged.
    pub aggregate_qos: bool,
    /// Commute-hour load curve `(period_s, off_peak_factor)`: flow
    /// inter-arrival gaps stretch by up to `off_peak_factor` at the
    /// period edges and run at full rate at the mid-period peak. A pure
    /// function of simulated time, so determinism is untouched. `None`
    /// (the default) leaves traffic flat.
    pub load_curve: Option<(f64, f64)>,
    /// Metro admission semantics: nodes without flows camp at paging
    /// level instead of holding a traffic channel, so channel pools are
    /// sized by the *active* population (Cellular IP's idle state). Off
    /// by default — every node competes for a channel, the behaviour
    /// E1–E13 are pinned to — and rendered only when on.
    pub idle_camping: bool,
    /// Intra-world parallel shards (1 = sequential engine). Any value
    /// produces byte-identical results; see [`crate::world::shard`].
    pub shards: u32,
    /// Fault-injection schedules (empty by default; see [`FaultSpec`]).
    pub faults: FaultSpec,
}

/// A parse/assignment error: which line (1-based, 0 for non-line errors)
/// and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number within the parsed text, 0 when not line-bound.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for SpecError {}

fn err(message: impl Into<String>) -> SpecError {
    SpecError {
        line: 0,
        message: message.into(),
    }
}

/// Quotes a string for the spec format (`"` and `\` escaped).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// [`tokens`] with `none` meaning "no entries" — every `fault.*` key
/// accepts it so a sweep axis can carry an off arm.
fn fault_tokens(value: &str) -> Result<Vec<String>, SpecError> {
    if value.trim() == "none" {
        return Ok(Vec::new());
    }
    tokens(value)
}

/// Splits a value into whitespace-separated tokens, honoring quoting.
fn tokens(value: &str) -> Result<Vec<String>, SpecError> {
    let mut out = Vec::new();
    let mut chars = value.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut tok = String::new();
            loop {
                match chars.next() {
                    Some('\\') => match chars.next() {
                        Some(e @ ('"' | '\\')) => tok.push(e),
                        _ => return Err(err("bad escape in quoted string")),
                    },
                    Some('"') => break,
                    Some(c) => tok.push(c),
                    None => return Err(err("unterminated quoted string")),
                }
            }
            out.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                tok.push(c);
                chars.next();
            }
            out.push(tok);
        }
    }
    Ok(out)
}

/// The single string a quoted value must contain.
fn one_string(value: &str) -> Result<String, SpecError> {
    let toks = tokens(value)?;
    match <[String; 1]>::try_from(toks) {
        Ok([s]) => Ok(s),
        Err(toks) => Err(err(format!(
            "expected one string, got {} tokens",
            toks.len()
        ))),
    }
}

fn parse_bool(value: &str) -> Result<bool, SpecError> {
    match value {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(err(format!("expected on/off, got {other:?}"))),
    }
}

fn parse_f64(value: &str) -> Result<f64, SpecError> {
    value
        .parse::<f64>()
        .map_err(|_| err(format!("expected a number, got {value:?}")))
}

fn parse_u32(value: &str) -> Result<u32, SpecError> {
    value
        .parse::<u32>()
        .map_err(|_| err(format!("expected a non-negative integer, got {value:?}")))
}

fn parse_opt_ms(value: &str) -> Result<Option<u64>, SpecError> {
    if value == "none" {
        return Ok(None);
    }
    value
        .parse::<u64>()
        .map(Some)
        .map_err(|_| err(format!("expected milliseconds or none, got {value:?}")))
}

fn render_opt_ms(v: Option<u64>) -> String {
    v.map_or_else(|| "none".into(), |ms| ms.to_string())
}

/// Header line of the canonical format.
const HEADER: &str = "mtnet-spec v1";

impl ScenarioSpec {
    /// The neutral base every preset starts from: one empty domain of the
    /// paper's geometry, multi-tier architecture, no population, voice on
    /// every node, all three decision factors, no overrides.
    pub fn base() -> ScenarioSpec {
        ScenarioSpec {
            name: "custom".into(),
            seed: SeedSpec::Raw(0),
            duration_s: 300.0,
            arch: ArchKind::multi_tier(),
            n_domains: 1,
            micro_per_domain: 4,
            micro_kind: CellKind::Micro,
            micro_spacing_m: 400.0,
            domain_width_m: 3_000.0,
            street_y_m: 1_500.0,
            share_upper: true,
            macro_hole: false,
            satellite: false,
            pedestrians: 0,
            cyclists: 0,
            vehicles: 0,
            pedestrian_class: SpeedClass::Pedestrian,
            pedestrian_pause_s: 10.0,
            cyclist_speed_mps: 6.0,
            vehicle_speed_mps: 25.0,
            voice_every: 1,
            video_every: 0,
            web_every: 0,
            factors: HandoffFactors::all(),
            route_update_ms: None,
            semisoft_delay_ms: None,
            table_lifetime_ms: None,
            paging_update_ms: None,
            move_sample_ms: None,
            location_update_ms: None,
            aggregate_qos: false,
            load_curve: None,
            idle_camping: false,
            shards: 1,
            faults: FaultSpec::default(),
        }
    }

    // ------------------------------------------------------------------
    // Presets: the paper's scenario families…
    // ------------------------------------------------------------------

    /// The standard three-domain city (see
    /// [`crate::scenario::Scenario::small_city`]).
    pub fn small_city() -> ScenarioSpec {
        ScenarioSpec {
            name: "small-city".into(),
            n_domains: 3,
            pedestrians: 6,
            vehicles: 3,
            video_every: 3,
            ..ScenarioSpec::base()
        }
    }

    /// The two-domain corridor with a single commuting vehicle
    /// (Figs 3.2/3.3).
    pub fn commute_corridor() -> ScenarioSpec {
        ScenarioSpec {
            name: "commute-corridor".into(),
            n_domains: 2,
            pedestrians: 2,
            vehicles: 1,
            ..ScenarioSpec::base()
        }
    }

    /// A single dense domain: intra-domain handoffs only (Fig 3.4).
    pub fn single_domain() -> ScenarioSpec {
        ScenarioSpec {
            name: "single-domain".into(),
            n_domains: 1,
            micro_per_domain: 6,
            pedestrians: 4,
            cyclists: 4,
            video_every: 3,
            web_every: 4,
            ..ScenarioSpec::base()
        }
    }

    /// The rural corridor whose middle domain has no macro radio.
    pub fn rural_corridor() -> ScenarioSpec {
        ScenarioSpec {
            name: "rural-corridor".into(),
            macro_hole: true,
            pedestrians: 0,
            vehicles: 2,
            ..ScenarioSpec::small_city()
        }
    }

    // ------------------------------------------------------------------
    // …and the families the paper never measured.
    // ------------------------------------------------------------------

    /// Dense-urban pico saturation: one domain whose street row is ten
    /// pico cells at 80 m spacing, packed with 116 slow users. Pico
    /// footprints are ~50 m, so only the street core is pico-served; the
    /// overflow lands on the single 64-channel macro umbrella, which
    /// cannot carry a hundred calls — admission control, the resources
    /// factor and the other-tier fallback all engage, a regime the
    /// paper's suburban geometry never stresses.
    pub fn dense_urban() -> ScenarioSpec {
        ScenarioSpec {
            name: "dense-urban".into(),
            n_domains: 1,
            micro_per_domain: 10,
            micro_kind: CellKind::Pico,
            micro_spacing_m: 80.0,
            pedestrians: 110,
            cyclists: 6,
            video_every: 3,
            web_every: 4,
            ..ScenarioSpec::base()
        }
    }

    /// Highway commute at the macro/satellite boundary: a four-domain
    /// corridor whose middle macro is dark, crossed by six 30 m/s
    /// vehicles under a satellite overlay — every handoff is at the
    /// macro↔satellite tier boundary the paper's Fig 2.1 sketches but
    /// never measures.
    pub fn highway_satellite() -> ScenarioSpec {
        ScenarioSpec {
            name: "highway-satellite".into(),
            n_domains: 4,
            macro_hole: true,
            satellite: true,
            vehicles: 6,
            vehicle_speed_mps: 30.0,
            video_every: 3,
            duration_s: 400.0,
            ..ScenarioSpec::base()
        }
    }

    /// Mixed voice/video/data overload: the small-city geometry with a
    /// triple-role population where **every** node runs voice + video +
    /// web simultaneously — link queues and channel pools both saturate.
    pub fn overload_mix() -> ScenarioSpec {
        ScenarioSpec {
            name: "overload-mix".into(),
            n_domains: 3,
            pedestrians: 8,
            cyclists: 4,
            vehicles: 4,
            voice_every: 1,
            video_every: 1,
            web_every: 1,
            ..ScenarioSpec::base()
        }
    }

    /// The metro tier (E14): 248 pico-dense domains under one satellite
    /// overlay — ~2,500 cells — carrying a million pedestrian
    /// subscribers of whom only the 1-in-100 with a voice flow are ever
    /// traffic-active. Maintenance periods stretch to metro scale (5 s
    /// move samples, 60 s location/paging), world-level aggregate QoS
    /// replaces per-flow delay histograms, and a diurnal load curve
    /// stretches arrival gaps 4x off-peak. This is the O(active) stress
    /// case: state and throughput must be governed by the active set,
    /// not the subscriber count.
    ///
    /// At full scale this builds a ~10^6-node world; use
    /// [`ScenarioSpec::metro_smoke`] (or the E14 Quick arm) for CI-sized
    /// runs.
    pub fn metro() -> ScenarioSpec {
        ScenarioSpec {
            name: "metro".into(),
            duration_s: 120.0,
            n_domains: 248,
            micro_per_domain: 8,
            micro_kind: CellKind::Pico,
            micro_spacing_m: 200.0,
            satellite: true,
            pedestrians: 1_000_000,
            voice_every: 100,
            route_update_ms: Some(5_000),
            paging_update_ms: Some(60_000),
            move_sample_ms: Some(5_000),
            location_update_ms: Some(60_000),
            aggregate_qos: true,
            load_curve: Some((120.0, 4.0)),
            idle_camping: true,
            ..ScenarioSpec::base()
        }
    }

    /// The metro family at CI scale: identical knobs, two orders of
    /// magnitude fewer nodes (10k over 8 domains). Same code paths —
    /// SoA tables, aggregate QoS, load curve, modular stagger — small
    /// enough for a smoke test.
    pub fn metro_smoke() -> ScenarioSpec {
        ScenarioSpec {
            n_domains: 8,
            pedestrians: 10_000,
            load_curve: Some((12.0, 4.0)),
            ..ScenarioSpec::metro()
        }
    }

    /// Every named scenario family, for CLI listings.
    pub fn families() -> [(&'static str, fn() -> ScenarioSpec); 8] {
        [
            ("small-city", ScenarioSpec::small_city),
            ("commute-corridor", ScenarioSpec::commute_corridor),
            ("single-domain", ScenarioSpec::single_domain),
            ("rural-corridor", ScenarioSpec::rural_corridor),
            ("dense-urban", ScenarioSpec::dense_urban),
            ("highway-satellite", ScenarioSpec::highway_satellite),
            ("overload-mix", ScenarioSpec::overload_mix),
            ("metro", ScenarioSpec::metro),
        ]
    }

    /// Looks up a named family preset.
    pub fn family(name: &str) -> Option<ScenarioSpec> {
        ScenarioSpec::families()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f())
    }

    // ------------------------------------------------------------------
    // Builder-style adjustments.
    // ------------------------------------------------------------------

    /// Replaces the architecture.
    pub fn with_arch(mut self, arch: ArchKind) -> ScenarioSpec {
        self.arch = arch;
        self
    }

    /// Replaces the seed with a literal value.
    pub fn with_raw_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = SeedSpec::Raw(seed);
        self
    }

    /// Replaces the seed with the standard two-segment experiment path
    /// (`(experiment, arm, replication)` — resolves to the same seed as
    /// [`mtnet_sim::rng::replication_seed`]).
    pub fn with_seed_path(mut self, experiment: &str, arm: &str, replication: u64) -> ScenarioSpec {
        self.seed = SeedSpec::Path {
            path: vec![experiment.into(), arm.into()],
            replication,
        };
        self
    }

    /// Replaces the simulated duration.
    pub fn with_duration_s(mut self, secs: f64) -> ScenarioSpec {
        self.duration_s = secs;
        self
    }

    /// Replaces the population counts.
    pub fn with_population(
        mut self,
        pedestrians: u32,
        cyclists: u32,
        vehicles: u32,
    ) -> ScenarioSpec {
        self.pedestrians = pedestrians;
        self.cyclists = cyclists;
        self.vehicles = vehicles;
        self
    }

    /// Replaces the decision factors.
    pub fn with_factors(mut self, factors: HandoffFactors) -> ScenarioSpec {
        self.factors = factors;
        self
    }

    /// Overrides the route-update period.
    pub fn with_route_update_ms(mut self, ms: u64) -> ScenarioSpec {
        self.route_update_ms = Some(ms);
        self
    }

    /// Overrides the semisoft bicast delay.
    pub fn with_semisoft_delay_ms(mut self, ms: u64) -> ScenarioSpec {
        self.semisoft_delay_ms = Some(ms);
        self
    }

    /// Gives every domain its own upper BS.
    pub fn without_shared_upper(mut self) -> ScenarioSpec {
        self.share_upper = false;
        self
    }

    /// Adds the satellite overlay.
    pub fn with_satellite(mut self) -> ScenarioSpec {
        self.satellite = true;
        self
    }

    /// Replaces the fault-injection schedules.
    pub fn with_faults(mut self, faults: FaultSpec) -> ScenarioSpec {
        self.faults = faults;
        self
    }

    /// Sets the intra-world shard count (1 = sequential engine). Results
    /// are byte-identical at any value; see [`crate::world::shard`].
    pub fn with_shards(mut self, shards: u32) -> ScenarioSpec {
        self.shards = shards;
        self
    }

    // ------------------------------------------------------------------
    // Canonical text format.
    // ------------------------------------------------------------------

    /// Renders the canonical text: every field, fixed order, exact
    /// round-trip floats. The content-addressed result store keys on this
    /// text (plus the master seed), so two specs share a store slot iff
    /// they are field-for-field equal.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "name = {}", quote(&self.name));
        match &self.seed {
            SeedSpec::Raw(seed) => {
                let _ = writeln!(out, "seed = raw {seed}");
            }
            SeedSpec::Path { path, replication } => {
                let segs: Vec<String> = path.iter().map(|s| quote(s)).collect();
                let _ = writeln!(out, "seed = path {} rep {replication}", segs.join(" "));
            }
        }
        let _ = writeln!(out, "duration_s = {:?}", self.duration_s);
        let _ = writeln!(out, "arch = {}", self.arch.canonical());
        let _ = writeln!(out, "domains = {}", self.n_domains);
        let _ = writeln!(out, "micro_per_domain = {}", self.micro_per_domain);
        let _ = writeln!(out, "micro_kind = {}", self.micro_kind);
        let _ = writeln!(out, "micro_spacing_m = {:?}", self.micro_spacing_m);
        let _ = writeln!(out, "domain_width_m = {:?}", self.domain_width_m);
        let _ = writeln!(out, "street_y_m = {:?}", self.street_y_m);
        let _ = writeln!(
            out,
            "share_upper = {}",
            if self.share_upper { "on" } else { "off" }
        );
        let _ = writeln!(
            out,
            "macro_hole = {}",
            if self.macro_hole { "on" } else { "off" }
        );
        let _ = writeln!(
            out,
            "satellite = {}",
            if self.satellite { "on" } else { "off" }
        );
        let _ = writeln!(out, "pedestrians = {}", self.pedestrians);
        let _ = writeln!(out, "cyclists = {}", self.cyclists);
        let _ = writeln!(out, "vehicles = {}", self.vehicles);
        let _ = writeln!(out, "pedestrian_class = {}", self.pedestrian_class);
        let _ = writeln!(out, "pedestrian_pause_s = {:?}", self.pedestrian_pause_s);
        let _ = writeln!(out, "cyclist_speed_mps = {:?}", self.cyclist_speed_mps);
        let _ = writeln!(out, "vehicle_speed_mps = {:?}", self.vehicle_speed_mps);
        let _ = writeln!(out, "voice_every = {}", self.voice_every);
        let _ = writeln!(out, "video_every = {}", self.video_every);
        let _ = writeln!(out, "web_every = {}", self.web_every);
        let _ = writeln!(out, "factors = {}", self.factors.canonical());
        let _ = writeln!(
            out,
            "route_update_ms = {}",
            render_opt_ms(self.route_update_ms)
        );
        let _ = writeln!(
            out,
            "semisoft_delay_ms = {}",
            render_opt_ms(self.semisoft_delay_ms)
        );
        let _ = writeln!(
            out,
            "table_lifetime_ms = {}",
            render_opt_ms(self.table_lifetime_ms)
        );
        let _ = writeln!(
            out,
            "paging_update_ms = {}",
            render_opt_ms(self.paging_update_ms)
        );
        // The metro-tier knobs render only when set, so pre-metro
        // canonical texts (and their store keys) are byte-identical to
        // those produced before the E14 family existed.
        if let Some(ms) = self.move_sample_ms {
            let _ = writeln!(out, "move_sample_ms = {ms}");
        }
        if let Some(ms) = self.location_update_ms {
            let _ = writeln!(out, "location_update_ms = {ms}");
        }
        if self.aggregate_qos {
            let _ = writeln!(out, "aggregate_qos = on");
        }
        if self.idle_camping {
            let _ = writeln!(out, "idle_camping = on");
        }
        if let Some((period_s, factor)) = self.load_curve {
            let _ = writeln!(out, "load_curve = {period_s:?}:{factor:?}");
        }
        // The shard count renders only when sharding is requested, so
        // single-shard canonical texts (and their store keys) are
        // byte-identical to those produced before the parallel engine
        // existed.
        if self.shards != 1 {
            let _ = writeln!(out, "shards = {}", self.shards);
        }
        // Fault lines render only when non-empty, so fault-free canonical
        // texts (and their store keys) are byte-identical to those
        // produced before the fault subsystem existed.
        if !self.faults.cell_outages.is_empty() {
            let toks: Vec<String> = self
                .faults
                .cell_outages
                .iter()
                .map(|o| format!("{}:{:?}:{:?}", o.cell, o.start_s, o.end_s))
                .collect();
            let _ = writeln!(out, "fault.cell_outages = {}", toks.join(" "));
        }
        if !self.faults.link_flaps.is_empty() {
            let toks: Vec<String> = self
                .faults
                .link_flaps
                .iter()
                .map(|f| {
                    format!(
                        "{}:{:?}:{:?}:{:?}:{:?}:{}",
                        f.domain, f.start_s, f.period_s, f.duty, f.jitter_s, f.count
                    )
                })
                .collect();
            let _ = writeln!(out, "fault.link_flaps = {}", toks.join(" "));
        }
        if !self.faults.rsmc_failovers.is_empty() {
            let toks: Vec<String> = self
                .faults
                .rsmc_failovers
                .iter()
                .map(|r| {
                    let takeover = r
                        .takeover_s
                        .map_or_else(|| "none".to_string(), |t| format!("{t:?}"));
                    format!("{}:{:?}:{takeover}", r.domain, r.at_s)
                })
                .collect();
            let _ = writeln!(out, "fault.rsmc_failover = {}", toks.join(" "));
        }
        if !self.faults.eclipses.is_empty() {
            let toks: Vec<String> = self
                .faults
                .eclipses
                .iter()
                .map(|e| format!("{:?}:{:?}", e.start_s, e.end_s))
                .collect();
            let _ = writeln!(out, "fault.eclipses = {}", toks.join(" "));
        }
        out
    }

    /// Parses a spec text (canonical or hand-written: blank lines and
    /// `#` comments are allowed, keys may repeat — last wins).
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let mut lines = text.lines().enumerate();
        let header = loop {
            match lines.next() {
                Some((_, l)) if l.trim().is_empty() || l.trim_start().starts_with('#') => continue,
                Some((_, l)) => break l.trim(),
                None => return Err(err("empty spec text")),
            }
        };
        if header != HEADER {
            return Err(err(format!("expected header {HEADER:?}, got {header:?}")));
        }
        let mut spec = ScenarioSpec::base();
        for (idx, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| SpecError {
                line: idx + 1,
                message: format!("expected key = value, got {line:?}"),
            })?;
            spec.set(key.trim(), value.trim()).map_err(|mut e| {
                e.line = idx + 1;
                e
            })?;
        }
        spec.validate().map_err(|mut e| {
            e.line = 0;
            e
        })?;
        Ok(spec)
    }

    /// Applies one `key = value` assignment — the operation the parser
    /// and sweep-axis expansion share. Keys are exactly the canonical
    /// render keys.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "name" => self.name = one_string(value)?,
            "seed" => {
                let toks = tokens(value)?;
                match toks.split_first() {
                    Some((kind, rest)) if kind == "raw" => {
                        let [seed] = rest else {
                            return Err(err("seed = raw <u64>"));
                        };
                        self.seed =
                            SeedSpec::Raw(seed.parse().map_err(|_| err("seed = raw <u64>"))?);
                    }
                    Some((kind, rest)) if kind == "path" => {
                        let Some(rep_pos) = rest.iter().rposition(|t| t == "rep") else {
                            return Err(err("seed = path <segments…> rep <u64>"));
                        };
                        let (segs, rep) = rest.split_at(rep_pos);
                        let [_, rep_val] = rep else {
                            return Err(err("seed = path <segments…> rep <u64>"));
                        };
                        if segs.is_empty() {
                            return Err(err("seed path needs at least one segment"));
                        }
                        self.seed = SeedSpec::Path {
                            path: segs.to_vec(),
                            replication: rep_val
                                .parse()
                                .map_err(|_| err("seed = path <segments…> rep <u64>"))?,
                        };
                    }
                    _ => return Err(err("seed = raw <u64> | path <segments…> rep <u64>")),
                }
            }
            "duration_s" => self.duration_s = parse_f64(value)?,
            "arch" => {
                self.arch = ArchKind::parse_label(value)
                    .ok_or_else(|| err(format!("unknown architecture {value:?}")))?;
            }
            "domains" => self.n_domains = parse_u32(value)?,
            "micro_per_domain" => self.micro_per_domain = parse_u32(value)?,
            "micro_kind" => {
                self.micro_kind = CellKind::parse_label(value)
                    .ok_or_else(|| err(format!("unknown cell kind {value:?}")))?;
            }
            "micro_spacing_m" => self.micro_spacing_m = parse_f64(value)?,
            "domain_width_m" => self.domain_width_m = parse_f64(value)?,
            "street_y_m" => self.street_y_m = parse_f64(value)?,
            "share_upper" => self.share_upper = parse_bool(value)?,
            "macro_hole" => self.macro_hole = parse_bool(value)?,
            "satellite" => self.satellite = parse_bool(value)?,
            "pedestrians" => self.pedestrians = parse_u32(value)?,
            "cyclists" => self.cyclists = parse_u32(value)?,
            "vehicles" => self.vehicles = parse_u32(value)?,
            "pedestrian_class" => {
                self.pedestrian_class = SpeedClass::parse_label(value)
                    .ok_or_else(|| err(format!("unknown speed class {value:?}")))?;
            }
            "pedestrian_pause_s" => self.pedestrian_pause_s = parse_f64(value)?,
            "cyclist_speed_mps" => self.cyclist_speed_mps = parse_f64(value)?,
            "vehicle_speed_mps" => self.vehicle_speed_mps = parse_f64(value)?,
            "voice_every" => self.voice_every = parse_u32(value)?,
            "video_every" => self.video_every = parse_u32(value)?,
            "web_every" => self.web_every = parse_u32(value)?,
            "factors" => {
                self.factors = HandoffFactors::parse_label(value)
                    .ok_or_else(|| err(format!("unknown factor set {value:?}")))?;
            }
            "route_update_ms" => self.route_update_ms = parse_opt_ms(value)?,
            "semisoft_delay_ms" => self.semisoft_delay_ms = parse_opt_ms(value)?,
            "table_lifetime_ms" => self.table_lifetime_ms = parse_opt_ms(value)?,
            "paging_update_ms" => self.paging_update_ms = parse_opt_ms(value)?,
            "move_sample_ms" => self.move_sample_ms = parse_opt_ms(value)?,
            "location_update_ms" => self.location_update_ms = parse_opt_ms(value)?,
            "aggregate_qos" => self.aggregate_qos = parse_bool(value)?,
            "idle_camping" => self.idle_camping = parse_bool(value)?,
            "load_curve" => {
                if value == "none" {
                    self.load_curve = None;
                } else {
                    let Some((period, factor)) = value.split_once(':') else {
                        return Err(err("load_curve = <period_s>:<off_peak_factor> | none"));
                    };
                    self.load_curve = Some((parse_f64(period)?, parse_f64(factor)?));
                }
            }
            "shards" => self.shards = parse_u32(value)?,
            "faults" => {
                // Sweep-axis escape hatch: clear every schedule at once.
                if value != "none" {
                    return Err(err(
                        "faults = none clears all schedules; use fault.* keys to add them",
                    ));
                }
                self.faults = FaultSpec::default();
            }
            // Each fault.* key also accepts `none` to clear just that
            // schedule — the natural "off" arm of a sweep axis.
            "fault.cell_outages" => {
                let mut outages = Vec::new();
                for tok in fault_tokens(value)? {
                    let parts: Vec<&str> = tok.split(':').collect();
                    let [cell, start, end] = parts[..] else {
                        return Err(err("fault.cell_outages = <cell>:<start_s>:<end_s> …"));
                    };
                    outages.push(CellOutage {
                        cell: parse_u32(cell)?,
                        start_s: parse_f64(start)?,
                        end_s: parse_f64(end)?,
                    });
                }
                self.faults.cell_outages = outages;
            }
            "fault.link_flaps" => {
                let mut flaps = Vec::new();
                for tok in fault_tokens(value)? {
                    let parts: Vec<&str> = tok.split(':').collect();
                    let [domain, start, period, duty, jitter, count] = parts[..] else {
                        return Err(err("fault.link_flaps = \
                             <domain>:<start_s>:<period_s>:<duty>:<jitter_s>:<count> …"));
                    };
                    flaps.push(LinkFlap {
                        domain: parse_u32(domain)?,
                        start_s: parse_f64(start)?,
                        period_s: parse_f64(period)?,
                        duty: parse_f64(duty)?,
                        jitter_s: parse_f64(jitter)?,
                        count: parse_u32(count)?,
                    });
                }
                self.faults.link_flaps = flaps;
            }
            "fault.rsmc_failover" => {
                let mut failovers = Vec::new();
                for tok in fault_tokens(value)? {
                    let parts: Vec<&str> = tok.split(':').collect();
                    let [domain, at, takeover] = parts[..] else {
                        return Err(err(
                            "fault.rsmc_failover = <domain>:<at_s>:<takeover_s|none> …",
                        ));
                    };
                    failovers.push(RsmcFailover {
                        domain: parse_u32(domain)?,
                        at_s: parse_f64(at)?,
                        takeover_s: if takeover == "none" {
                            None
                        } else {
                            Some(parse_f64(takeover)?)
                        },
                    });
                }
                self.faults.rsmc_failovers = failovers;
            }
            "fault.eclipses" => {
                let mut eclipses = Vec::new();
                for tok in fault_tokens(value)? {
                    let parts: Vec<&str> = tok.split(':').collect();
                    let [start, end] = parts[..] else {
                        return Err(err("fault.eclipses = <start_s>:<end_s> …"));
                    };
                    eclipses.push(EclipseWindow {
                        start_s: parse_f64(start)?,
                        end_s: parse_f64(end)?,
                    });
                }
                self.faults.eclipses = eclipses;
            }
            other => return Err(err(format!("unknown key {other:?}"))),
        }
        Ok(())
    }

    /// Checks internal consistency (positive geometry and duration, the
    /// /24 home-subnet population cap, finite numbers).
    pub fn validate(&self) -> Result<(), SpecError> {
        let finite_pos = [
            ("duration_s", self.duration_s),
            ("micro_spacing_m", self.micro_spacing_m),
            ("domain_width_m", self.domain_width_m),
            ("cyclist_speed_mps", self.cyclist_speed_mps),
            ("vehicle_speed_mps", self.vehicle_speed_mps),
        ];
        for (name, v) in finite_pos {
            if !(v.is_finite() && v > 0.0) {
                return Err(err(format!("{name} must be positive and finite")));
            }
        }
        if !self.street_y_m.is_finite() {
            return Err(err("street_y_m must be finite"));
        }
        if !(self.pedestrian_pause_s.is_finite() && self.pedestrian_pause_s >= 0.0) {
            return Err(err("pedestrian_pause_s must be non-negative and finite"));
        }
        if self.n_domains == 0 {
            return Err(err("domains must be >= 1"));
        }
        if self.shards == 0 {
            return Err(err("shards must be >= 1"));
        }
        // Home addresses are allocated arithmetically, 250 per /24 under
        // the (widened-as-needed) 10/8 home prefix — see
        // `crate::world::mn::home_addr`. 16M is the last population whose
        // subnet octets stay inside that prefix.
        const MAX_POPULATION: u64 = 16_000_000;
        let population =
            u64::from(self.pedestrians) + u64::from(self.cyclists) + u64::from(self.vehicles);
        if population > MAX_POPULATION {
            return Err(err(format!(
                "population {population} exceeds the {MAX_POPULATION}-node home address space"
            )));
        }
        for (name, v) in [
            ("move_sample_ms", self.move_sample_ms),
            ("location_update_ms", self.location_update_ms),
        ] {
            if v == Some(0) {
                return Err(err(format!("{name} must be >= 1 (a zero period hangs)")));
            }
        }
        if let Some((period_s, factor)) = self.load_curve {
            if !(period_s.is_finite() && period_s > 0.0) {
                return Err(err("load_curve period must be positive and finite"));
            }
            if !(factor.is_finite() && factor >= 1.0) {
                return Err(err("load_curve off-peak factor must be >= 1 and finite"));
            }
        }
        self.faults
            .validate(self.n_domains + u32::from(self.satellite))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // World assembly — the single construction path.
    // ------------------------------------------------------------------

    /// Total width of the deployed corridor, meters.
    pub fn corridor_width(&self) -> f64 {
        f64::from(self.n_domains) * self.domain_width_m
    }

    /// The world seed under `master_seed`.
    pub fn resolve_seed(&self, master_seed: u64) -> u64 {
        self.seed.resolve(master_seed)
    }

    /// Builds the world this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`].
    pub fn build(&self, master_seed: u64) -> World {
        if let Err(e) = self.validate() {
            panic!("invalid scenario spec {:?}: {e}", self.name);
        }
        let mut cfg = WorldConfig {
            seed: self.resolve_seed(master_seed),
            factors: self.factors,
            decision: DecisionConfig::default(),
            ..WorldConfig::default()
        };
        self.arch.apply(&mut cfg);
        if let Some(ms) = self.route_update_ms {
            cfg.route_update_period = Some(SimDuration::from_millis(ms));
        }
        if let Some(ms) = self.semisoft_delay_ms {
            if matches!(cfg.handoff_kind, HandoffKind::Semisoft { .. }) {
                cfg.handoff_kind = HandoffKind::Semisoft {
                    delay: SimDuration::from_millis(ms),
                };
            }
        }
        if let Some(ms) = self.table_lifetime_ms {
            cfg.table_lifetime = SimDuration::from_millis(ms);
        }
        if let Some(ms) = self.paging_update_ms {
            cfg.cip_timers.paging_update = SimDuration::from_millis(ms);
        }
        if let Some(ms) = self.move_sample_ms {
            cfg.move_sample = SimDuration::from_millis(ms);
        }
        if let Some(ms) = self.location_update_ms {
            cfg.location_period = SimDuration::from_millis(ms);
        }
        cfg.aggregate_qos = self.aggregate_qos;
        cfg.idle_camping = self.idle_camping;
        if let Some((period_s, factor)) = self.load_curve {
            cfg.load_curve = Some(LoadCurve {
                period: SimDuration::from_secs_f64(period_s),
                off_peak_factor: factor,
            });
        }
        let n_domains = self.n_domains as usize;
        let width = self.domain_width_m;
        let street_y = self.street_y_m;
        let mut b = WorldBuilder::new(cfg);
        for d in 0..n_domains {
            // Consecutive pairs share a region/upper BS: (0,1), (2,3), …
            // unless sharing is disabled (every domain its own upper).
            let region = if self.share_upper {
                (d / 2) as u32
            } else {
                d as u32
            };
            let paired = if self.share_upper {
                d + 1 < n_domains || d % 2 == 1
            } else {
                true
            };
            b.add_domain(DomainSpec {
                center: Point::new(width / 2.0 + d as f64 * width, street_y),
                n_micro: self.micro_per_domain as usize,
                micro_spacing: self.micro_spacing_m,
                micro_kind: self.micro_kind,
                region: paired.then_some(region),
                macro_radio: !(self.macro_hole && d == n_domains / 2),
                satellite: false,
            });
        }
        if self.satellite {
            // One LEO footprint over the whole corridor, its own domain.
            b.add_domain(DomainSpec {
                center: Point::new(self.corridor_width() / 2.0, street_y),
                n_micro: 0,
                micro_spacing: self.micro_spacing_m,
                micro_kind: self.micro_kind,
                region: None,
                macro_radio: true,
                satellite: true,
            });
        }
        let every = |n: u32, i: usize| n > 0 && i.is_multiple_of(n as usize);
        let flow_plan = |i: usize| {
            let mut flows = Vec::new();
            if every(self.voice_every, i) {
                flows.push(FlowKind::Voice);
            }
            if every(self.video_every, i) {
                flows.push(FlowKind::Video);
            }
            if every(self.web_every, i) {
                flows.push(FlowKind::Web);
            }
            flows
        };
        let mut idx = 0usize;
        for p in 0..self.pedestrians as usize {
            // Pedestrians wander the street row of one domain.
            let d = p % n_domains;
            let cx = width / 2.0 + d as f64 * width;
            let area = Rect::new(
                Point::new(cx - 800.0, street_y - 250.0),
                Point::new(cx + 800.0, street_y + 250.0),
            );
            let start = Point::new(cx - 600.0 + (p as f64 * 163.0) % 1200.0, street_y);
            let model = RandomWaypoint::new(area, self.pedestrian_class)
                .with_pause(SimDuration::from_secs_f64(self.pedestrian_pause_s))
                .with_start(start);
            b.add_mn(Box::new(model), &flow_plan(idx));
            idx += 1;
        }
        for c in 0..self.cyclists as usize {
            // Cyclists shuttle along the micro row of one domain.
            let d = c % n_domains;
            let cx = width / 2.0 + d as f64 * width;
            let span = self.micro_spacing_m * (self.micro_per_domain.saturating_sub(1)) as f64;
            let y = street_y + 20.0 * (c as f64);
            let model = LinearCommute::new(
                Point::new(cx - span / 2.0, y),
                Point::new(cx + span / 2.0, y),
                self.cyclist_speed_mps,
            )
            .round_trip();
            b.add_mn(Box::new(model), &flow_plan(idx));
            idx += 1;
        }
        for v in 0..self.vehicles as usize {
            // Vehicles shuttle the whole corridor at highway speed.
            let y = street_y + 50.0 * (v as f64 - 1.0);
            let model = LinearCommute::new(
                Point::new(400.0, y),
                Point::new(self.corridor_width() - 400.0, y),
                self.vehicle_speed_mps,
            )
            .round_trip();
            b.add_mn(Box::new(model), &flow_plan(idx));
            idx += 1;
        }
        let mut world = b.build();
        // Fault schedules compile against the concrete world (cell ids,
        // link ids, domain indices) — and against the resolved world
        // seed, so the jitter draws are part of the determinism contract.
        world.install_fault_plan(&self.faults);
        world
    }

    /// Builds and runs for the spec's duration. The spec's shard count —
    /// overridable via the `MTNET_SHARDS` environment variable (see
    /// [`crate::world::shard::shards_from_env`]) — selects between the
    /// sequential engine and the conservative-window parallel engine;
    /// both produce byte-identical reports.
    pub fn run(&self, master_seed: u64) -> SimReport {
        let duration = SimDuration::from_secs_f64(self.duration_s);
        let shards = crate::world::shard::shards_from_env().unwrap_or(self.shards);
        if shards > 1 {
            crate::world::run_sharded(|| self.build(master_seed), duration, shards)
        } else {
            self.build(master_seed).run(duration)
        }
    }

    /// Builds and runs, wrapping the result with the run's identity
    /// (spec name, resolved seed, replication).
    pub fn run_report(&self, master_seed: u64) -> RunReport {
        RunReport {
            label: self.name.clone(),
            seed: self.resolve_seed(master_seed),
            replication: self.seed.replication(),
            report: self.run(master_seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_render_parse_roundtrip() {
        for (name, preset) in ScenarioSpec::families() {
            let spec = preset().with_seed_path("test", name, 2);
            let text = spec.render();
            let back = ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, spec, "{name} round-trip");
        }
    }

    #[test]
    fn parse_accepts_comments_and_repeats() {
        let text =
            format!("\n# a comment\n{HEADER}\n\ndomains = 2\n# again\ndomains = 4\nname = \"x\"\n");
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec.n_domains, 4, "last assignment wins");
        assert_eq!(spec.name, "x");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScenarioSpec::parse("").is_err(), "empty");
        assert!(ScenarioSpec::parse("not a header\n").is_err(), "header");
        let bad_key = format!("{HEADER}\nnonsense = 3\n");
        let e = ScenarioSpec::parse(&bad_key).unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        let bad_value = format!("{HEADER}\ndomains = many\n");
        assert!(ScenarioSpec::parse(&bad_value).is_err());
        let invalid = format!("{HEADER}\ndomains = 0\n");
        assert!(ScenarioSpec::parse(&invalid).is_err(), "validation runs");
    }

    #[test]
    fn quoting_roundtrips_awkward_names() {
        for name in ["with space", "quo\"te", "back\\slash", "all three (paper)"] {
            let mut spec = ScenarioSpec::base();
            spec.name = name.into();
            spec.seed = SeedSpec::Path {
                path: vec!["E12".into(), name.into()],
                replication: 1,
            };
            let back = ScenarioSpec::parse(&spec.render()).unwrap();
            assert_eq!(back, spec, "{name:?}");
        }
    }

    #[test]
    fn seed_path_resolves_like_replication_seed() {
        let spec = ScenarioSpec::small_city().with_seed_path("E10", "multi-tier+rsmc", 1);
        assert_eq!(
            spec.resolve_seed(42),
            mtnet_sim::rng::replication_seed(42, "E10", "multi-tier+rsmc", 1)
        );
        assert_eq!(spec.seed.replication(), 1);
        assert_eq!(ScenarioSpec::base().with_raw_seed(7).resolve_seed(42), 7);
    }

    #[test]
    fn set_is_the_sweep_axis_surface() {
        let mut spec = ScenarioSpec::small_city();
        spec.set("arch", "flat-cellular-ip").unwrap();
        spec.set("micro_kind", "pico").unwrap();
        spec.set("route_update_ms", "2000").unwrap();
        spec.set("route_update_ms", "none").unwrap();
        assert_eq!(spec.arch, ArchKind::FlatCellularIp);
        assert_eq!(spec.micro_kind, CellKind::Pico);
        assert_eq!(spec.route_update_ms, None);
        assert!(spec.set("warp_factor", "9").is_err());
    }

    fn faulted_spec() -> ScenarioSpec {
        ScenarioSpec::small_city().with_faults(FaultSpec {
            cell_outages: vec![CellOutage {
                cell: 2,
                start_s: 10.0,
                end_s: 30.5,
            }],
            link_flaps: vec![LinkFlap {
                domain: 1,
                start_s: 5.0,
                period_s: 20.0,
                duty: 0.25,
                jitter_s: 1.5,
                count: 3,
            }],
            rsmc_failovers: vec![
                RsmcFailover {
                    domain: 0,
                    at_s: 40.0,
                    takeover_s: Some(12.0),
                },
                RsmcFailover {
                    domain: 2,
                    at_s: 60.0,
                    takeover_s: None,
                },
            ],
            eclipses: vec![EclipseWindow {
                start_s: 100.0,
                end_s: 140.0,
            }],
        })
    }

    #[test]
    fn faults_render_parse_roundtrip() {
        let spec = faulted_spec();
        let text = spec.render();
        assert!(text.contains("fault.cell_outages = 2:10.0:30.5"), "{text}");
        assert!(
            text.contains("fault.link_flaps = 1:5.0:20.0:0.25:1.5:3"),
            "{text}"
        );
        assert!(
            text.contains("fault.rsmc_failover = 0:40.0:12.0 2:60.0:none"),
            "{text}"
        );
        assert!(text.contains("fault.eclipses = 100.0:140.0"), "{text}");
        let back = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn empty_faults_render_nothing() {
        let spec = ScenarioSpec::small_city();
        assert!(spec.faults.is_empty());
        assert!(!spec.render().contains("fault"), "empty section is silent");
        // `faults = none` clears schedules without leaving a trace.
        let mut faulted = faulted_spec();
        faulted.set("faults", "none").unwrap();
        assert_eq!(faulted.render(), spec.render());
    }

    #[test]
    fn fault_validation_rejects_bad_schedules() {
        let mut spec = ScenarioSpec::small_city();
        spec.faults.cell_outages = vec![CellOutage {
            cell: 0,
            start_s: 30.0,
            end_s: 10.0,
        }];
        assert!(spec.validate().is_err(), "inverted window");
        spec.faults.cell_outages.clear();
        spec.faults.link_flaps = vec![LinkFlap {
            domain: 99,
            start_s: 0.0,
            period_s: 10.0,
            duty: 0.5,
            jitter_s: 0.0,
            count: 1,
        }];
        assert!(spec.validate().is_err(), "domain out of range");
        spec.faults.link_flaps[0].domain = 0;
        spec.faults.link_flaps[0].jitter_s = 5.0;
        assert!(spec.validate().is_err(), "jitter >= half-period");
        spec.faults.link_flaps[0].jitter_s = 4.9;
        assert!(spec.validate().is_ok());
        spec.faults.rsmc_failovers = vec![RsmcFailover {
            domain: 0,
            at_s: 10.0,
            takeover_s: Some(0.0),
        }];
        assert!(spec.validate().is_err(), "zero takeover delay");
    }

    #[test]
    fn fault_keys_are_sweep_axes() {
        let mut spec = ScenarioSpec::small_city();
        spec.set("fault.cell_outages", "1:5.0:9.0 3:20.0:25.0")
            .unwrap();
        assert_eq!(spec.faults.cell_outages.len(), 2);
        assert_eq!(spec.faults.cell_outages[1].cell, 3);
        spec.set("fault.rsmc_failover", "0:15.0:none").unwrap();
        assert_eq!(spec.faults.rsmc_failovers[0].takeover_s, None);
        assert!(spec.set("fault.link_flaps", "not-a-flap").is_err());
        assert!(spec.set("faults", "all-of-them").is_err());
        // Per-key `none` clears just that schedule — the off arm of a
        // sweep axis.
        spec.set("fault.cell_outages", "none").unwrap();
        assert!(spec.faults.cell_outages.is_empty());
        assert_eq!(spec.faults.rsmc_failovers.len(), 1, "others untouched");
        spec.set("fault.rsmc_failover", "none").unwrap();
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn validate_catches_population_cap() {
        let mut spec = ScenarioSpec::base();
        // 251 used to overflow the single home /24; dense arithmetic
        // allocation (250 per /24 under 10/8) carries it — and a million
        // more — without a map.
        spec.pedestrians = 251;
        assert!(spec.validate().is_ok());
        spec.pedestrians = 16_000_000;
        assert!(spec.validate().is_ok());
        spec.pedestrians = 16_000_001;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn metro_knobs_render_parse_roundtrip_and_stay_opt_in() {
        // Default specs render none of the metro keys — pre-metro
        // canonical texts (and store keys) are unchanged.
        let plain = ScenarioSpec::small_city().render();
        for key in [
            "move_sample_ms",
            "location_update_ms",
            "aggregate_qos",
            "load_curve",
            "idle_camping",
        ] {
            assert!(!plain.contains(key), "{key} leaked into a default spec");
        }
        let spec = ScenarioSpec::metro().with_seed_path("E14", "metro", 0);
        let text = spec.render();
        assert!(text.contains("move_sample_ms = 5000"), "{text}");
        assert!(text.contains("location_update_ms = 60000"), "{text}");
        assert!(text.contains("aggregate_qos = on"), "{text}");
        assert!(text.contains("idle_camping = on"), "{text}");
        assert!(text.contains("load_curve = 120.0:4.0"), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn metro_knobs_are_sweep_axes_and_validated() {
        let mut spec = ScenarioSpec::small_city();
        spec.set("aggregate_qos", "on").unwrap();
        spec.set("move_sample_ms", "5000").unwrap();
        spec.set("load_curve", "600.0:3.0").unwrap();
        assert!(spec.aggregate_qos);
        assert_eq!(spec.load_curve, Some((600.0, 3.0)));
        assert!(spec.validate().is_ok());
        spec.set("load_curve", "none").unwrap();
        assert_eq!(spec.load_curve, None);
        assert!(spec.set("load_curve", "sinusoid").is_err());

        spec.move_sample_ms = Some(0);
        assert!(spec.validate().is_err(), "zero period");
        spec.move_sample_ms = None;
        spec.load_curve = Some((0.0, 2.0));
        assert!(spec.validate().is_err(), "zero curve period");
        spec.load_curve = Some((60.0, 0.5));
        assert!(spec.validate().is_err(), "sub-1 factor speeds traffic up");
    }

    #[test]
    fn metro_smoke_runs_with_aggregate_qos() {
        // A miniature metro arm (same knobs, tiny population) exercises
        // the modular stagger (> 250 nodes), aggregate QoS and the load
        // curve end to end.
        let spec = ScenarioSpec {
            n_domains: 2,
            pedestrians: 500,
            voice_every: 25,
            load_curve: Some((10.0, 4.0)),
            ..ScenarioSpec::metro()
        }
        .with_duration_s(10.0)
        .with_seed_path("test", "metro-mini", 0);
        let report = spec.run(42);
        let agg = report.aggregate.as_ref().expect("aggregate enabled");
        assert!(agg.count() > 0, "no delivered packets recorded");
        assert!(report.fingerprint().contains("aggregate delay:"));
    }

    #[test]
    fn new_families_build_and_run() {
        for (name, preset) in [
            (
                "dense-urban",
                ScenarioSpec::dense_urban as fn() -> ScenarioSpec,
            ),
            ("highway-satellite", ScenarioSpec::highway_satellite),
            ("overload-mix", ScenarioSpec::overload_mix),
        ] {
            let report = preset()
                .with_seed_path("smoke", name, 0)
                .with_duration_s(15.0)
                .run(42);
            let q = report.aggregate_qos();
            assert!(q.sent > 0, "{name}: no traffic");
        }
    }

    #[test]
    fn arch_canonical_is_bijective() {
        let all = [
            ArchKind::multi_tier(),
            ArchKind::multi_tier_hard(),
            ArchKind::multi_tier_no_rsmc(),
            ArchKind::MultiTier {
                rsmc: false,
                semisoft: false,
            },
            ArchKind::PureMobileIp,
            ArchKind::FlatCellularIp,
        ];
        let forms: std::collections::HashSet<&str> = all.iter().map(|a| a.canonical()).collect();
        assert_eq!(forms.len(), all.len());
        for a in all {
            assert_eq!(ArchKind::parse_label(a.canonical()), Some(a));
        }
    }

    #[test]
    fn factors_canonical_roundtrip() {
        for speed in [false, true] {
            for signal in [false, true] {
                for resources in [false, true] {
                    let f = HandoffFactors {
                        speed,
                        signal,
                        resources,
                    };
                    assert_eq!(HandoffFactors::parse_label(&f.canonical()), Some(f));
                }
            }
        }
        assert_eq!(HandoffFactors::parse_label("speed+speed"), None);
    }
}
