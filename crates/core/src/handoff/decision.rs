//! The tier-selection decision: "three kinds of factor are considered to
//! decide the suitable tier that MN should hop. The first is the speed of
//! MN, the power of signal from BS is considered also, and the last is the
//! resources of BS." (§3.2)
//!
//! The engine is a pure function of its measurements, so it is fully
//! unit-testable and the factors can be ablated independently (experiment
//! E12).

use crate::tier::Tier;
use mtnet_radio::CellId;
use serde::{Deserialize, Serialize};

/// Which of the three §3.2 factors the engine consults. Disabling factors
/// reproduces the ablation arms of experiment E12; the paper's scheme is
/// [`HandoffFactors::all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoffFactors {
    /// Factor 1: the speed of the MN steers tier preference.
    pub speed: bool,
    /// Factor 2: the power of signal from the BS (with hysteresis).
    pub signal: bool,
    /// Factor 3: the resources of the BS (free channels, with fallback to
    /// the other tier when the preferred tier is full).
    pub resources: bool,
}

impl HandoffFactors {
    /// The paper's full scheme: all three factors.
    pub fn all() -> Self {
        HandoffFactors {
            speed: true,
            signal: true,
            resources: true,
        }
    }

    /// Signal-only (classic single-tier strongest-server handoff).
    pub fn signal_only() -> Self {
        HandoffFactors {
            speed: false,
            signal: true,
            resources: false,
        }
    }

    /// Canonical textual form for scenario-spec files: the enabled factors
    /// joined with `+` (`"speed+signal+resources"`), or `"none"`.
    pub fn canonical(&self) -> String {
        let parts: Vec<&str> = [
            ("speed", self.speed),
            ("signal", self.signal),
            ("resources", self.resources),
        ]
        .iter()
        .filter(|(_, on)| *on)
        .map(|(name, _)| *name)
        .collect();
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join("+")
        }
    }

    /// Parses the [`HandoffFactors::canonical`] form.
    pub fn parse_label(s: &str) -> Option<HandoffFactors> {
        let mut f = HandoffFactors {
            speed: false,
            signal: false,
            resources: false,
        };
        if s == "none" {
            return Some(f);
        }
        for part in s.split('+') {
            match part {
                "speed" if !f.speed => f.speed = true,
                "signal" if !f.signal => f.signal = true,
                "resources" if !f.resources => f.resources = true,
                _ => return None,
            }
        }
        Some(f)
    }
}

impl Default for HandoffFactors {
    fn default() -> Self {
        Self::all()
    }
}

/// Decision thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionConfig {
    /// A candidate must beat the current cell by this margin (dB) to
    /// trigger a same-tier handoff (ping-pong suppression).
    pub hysteresis_db: f64,
    /// Below this RSSI (dBm) a cell is unusable.
    pub min_rssi_dbm: f64,
    /// A cell with a lower free-channel ratio than this is considered
    /// resource-exhausted when factor 3 is enabled.
    pub min_free_ratio: f64,
    /// Speed (m/s) above which the macro tier is preferred (factor 1).
    pub speed_threshold_mps: f64,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            hysteresis_db: 4.0,
            min_rssi_dbm: -95.0,
            min_free_ratio: 0.05,
            speed_threshold_mps: Tier::SPEED_THRESHOLD_MPS,
        }
    }
}

/// One measured candidate cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The cell.
    pub cell: CellId,
    /// Its tier.
    pub tier: Tier,
    /// Received power at the MN, dBm.
    pub rssi_dbm: f64,
    /// Free-channel ratio in `[0, 1]`.
    pub free_ratio: f64,
}

/// The MN's current attachment, as seen in the same measurement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentAttachment {
    /// The serving cell.
    pub cell: CellId,
    /// Its tier.
    pub tier: Tier,
    /// Its current RSSI at the MN, dBm (`None` if out of coverage).
    pub rssi_dbm: Option<f64>,
}

/// What the engine decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HandoffDecision {
    /// Keep the current attachment.
    Stay,
    /// Hand off to `target`; if the target rejects (no channel), retry with
    /// `fallback` (the other tier), per §3.2's fallback rules.
    Handoff {
        /// Primary target cell.
        target: CellId,
        /// Tier of the primary target.
        tier: Tier,
        /// Other-tier fallback if the primary rejects.
        fallback: Option<CellId>,
    },
    /// No usable cell at all (coverage hole): the node is in outage.
    Outage,
}

/// The decision engine (one per scenario; stateless between calls).
#[derive(Debug, Clone, Copy, Default)]
pub struct HandoffEngine {
    config: DecisionConfig,
    factors: HandoffFactors,
}

impl HandoffEngine {
    /// Creates an engine with the given thresholds and factor set.
    pub fn new(config: DecisionConfig, factors: HandoffFactors) -> Self {
        HandoffEngine { config, factors }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DecisionConfig {
        &self.config
    }

    /// The enabled factors.
    pub fn factors(&self) -> HandoffFactors {
        self.factors
    }

    /// Best usable candidate within a tier, honoring the signal and
    /// resource factors.
    fn best_in_tier(&self, tier: Tier, candidates: &[Candidate]) -> Option<Candidate> {
        let usable = candidates.iter().filter(|c| {
            c.tier == tier
                && c.rssi_dbm >= self.config.min_rssi_dbm
                && (!self.factors.resources || c.free_ratio >= self.config.min_free_ratio)
        });
        if self.factors.signal {
            usable.max_by(|a, b| {
                a.rssi_dbm
                    .total_cmp(&b.rssi_dbm)
                    .then_with(|| b.cell.cmp(&a.cell))
            })
        } else {
            // Without the signal factor the node just picks the least
            // loaded audible cell (resource factor), or the first.
            usable.max_by(|a, b| {
                a.free_ratio
                    .total_cmp(&b.free_ratio)
                    .then_with(|| b.cell.cmp(&a.cell))
            })
        }
        .copied()
    }

    /// Runs the §3.2 decision for one measurement round.
    ///
    /// `speed_mps` is the node's current speed; `current` its attachment
    /// (if any); `candidates` every audible cell (typically from
    /// `CellMap::measure`).
    pub fn decide(
        &self,
        speed_mps: f64,
        current: Option<CurrentAttachment>,
        candidates: &[Candidate],
    ) -> HandoffDecision {
        // Factor 1 — speed chooses the preferred tier. With the factor
        // disabled the node prefers to stay in its current tier (or micro,
        // the bandwidth-rich default the paper switches toward).
        let preferred = if self.factors.speed {
            if speed_mps > self.config.speed_threshold_mps {
                Tier::Macro
            } else {
                Tier::Micro
            }
        } else {
            current.map_or(Tier::Micro, |c| c.tier)
        };

        let primary = self.best_in_tier(preferred, candidates);
        let alternate = self.best_in_tier(preferred.other(), candidates);
        let (best, fallback) = match (primary, alternate) {
            (Some(p), a) => (p, a),
            (None, Some(a)) => (a, None),
            (None, None) => {
                // Nothing usable under the enabled constraints; as a last
                // resort take the strongest raw candidate (a full cell is
                // better than an outage), else report outage.
                let Some(any) = candidates
                    .iter()
                    .filter(|c| c.rssi_dbm >= self.config.min_rssi_dbm)
                    .max_by(|a, b| a.rssi_dbm.total_cmp(&b.rssi_dbm))
                else {
                    return HandoffDecision::Outage;
                };
                return self.against_current(speed_mps, current, *any, None);
            }
        };
        self.against_current(speed_mps, current, best, fallback.map(|c| c.cell))
    }

    /// Compares the chosen target with the current attachment and applies
    /// hysteresis.
    fn against_current(
        &self,
        _speed_mps: f64,
        current: Option<CurrentAttachment>,
        best: Candidate,
        fallback: Option<CellId>,
    ) -> HandoffDecision {
        let Some(cur) = current else {
            // Unattached: always take the best cell.
            return HandoffDecision::Handoff {
                target: best.cell,
                tier: best.tier,
                fallback,
            };
        };
        if best.cell == cur.cell {
            return HandoffDecision::Stay;
        }
        let cur_rssi_ok = cur.rssi_dbm.is_some_and(|r| r >= self.config.min_rssi_dbm);
        if !cur_rssi_ok {
            // Coverage lost: must move regardless of hysteresis.
            return HandoffDecision::Handoff {
                target: best.cell,
                tier: best.tier,
                fallback,
            };
        }
        if best.tier != cur.tier {
            // Tier change (speed or resource driven): hysteresis does not
            // apply — the tiers' power classes differ by construction.
            return HandoffDecision::Handoff {
                target: best.cell,
                tier: best.tier,
                fallback,
            };
        }
        // Same-tier: factor 2's hysteresis rule.
        let cur_rssi = cur.rssi_dbm.expect("checked above");
        if self.factors.signal && best.rssi_dbm < cur_rssi + self.config.hysteresis_db {
            return HandoffDecision::Stay;
        }
        HandoffDecision::Handoff {
            target: best.cell,
            tier: best.tier,
            fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro(id: u32, rssi: f64, free: f64) -> Candidate {
        Candidate {
            cell: CellId(id),
            tier: Tier::Micro,
            rssi_dbm: rssi,
            free_ratio: free,
        }
    }

    fn mac(id: u32, rssi: f64, free: f64) -> Candidate {
        Candidate {
            cell: CellId(id),
            tier: Tier::Macro,
            rssi_dbm: rssi,
            free_ratio: free,
        }
    }

    fn cur(id: u32, tier: Tier, rssi: f64) -> Option<CurrentAttachment> {
        Some(CurrentAttachment {
            cell: CellId(id),
            tier,
            rssi_dbm: Some(rssi),
        })
    }

    fn engine() -> HandoffEngine {
        HandoffEngine::new(DecisionConfig::default(), HandoffFactors::all())
    }

    #[test]
    fn pedestrian_prefers_micro() {
        let d = engine().decide(1.0, None, &[micro(1, -70.0, 0.9), mac(100, -50.0, 0.9)]);
        assert_eq!(
            d,
            HandoffDecision::Handoff {
                target: CellId(1),
                tier: Tier::Micro,
                fallback: Some(CellId(100))
            }
        );
    }

    #[test]
    fn vehicle_prefers_macro() {
        let d = engine().decide(25.0, None, &[micro(1, -50.0, 0.9), mac(100, -80.0, 0.9)]);
        assert_eq!(
            d,
            HandoffDecision::Handoff {
                target: CellId(100),
                tier: Tier::Macro,
                fallback: Some(CellId(1))
            }
        );
    }

    #[test]
    fn stays_on_current_best() {
        let d = engine().decide(
            1.0,
            cur(1, Tier::Micro, -60.0),
            &[micro(1, -60.0, 0.9), micro(2, -75.0, 0.9)],
        );
        assert_eq!(d, HandoffDecision::Stay);
    }

    #[test]
    fn hysteresis_blocks_marginal_switch() {
        // Cell 2 is 2 dB better — below the 4 dB hysteresis.
        let d = engine().decide(
            1.0,
            cur(1, Tier::Micro, -62.0),
            &[micro(1, -62.0, 0.9), micro(2, -60.0, 0.9)],
        );
        assert_eq!(d, HandoffDecision::Stay);
        // 6 dB better → switch.
        let d2 = engine().decide(
            1.0,
            cur(1, Tier::Micro, -66.0),
            &[micro(1, -66.0, 0.9), micro(2, -60.0, 0.9)],
        );
        assert!(matches!(d2, HandoffDecision::Handoff { target, .. } if target == CellId(2)));
    }

    #[test]
    fn coverage_loss_overrides_hysteresis() {
        let d = engine().decide(
            1.0,
            Some(CurrentAttachment {
                cell: CellId(1),
                tier: Tier::Micro,
                rssi_dbm: None,
            }),
            &[micro(2, -90.0, 0.9)],
        );
        assert!(matches!(d, HandoffDecision::Handoff { target, .. } if target == CellId(2)));
    }

    #[test]
    fn resource_exhaustion_falls_back_to_other_tier() {
        // Preferred micro tier is full (factor 3): macro wins directly.
        let d = engine().decide(
            1.0,
            cur(1, Tier::Micro, -60.0),
            &[
                micro(1, -60.0, 0.0),
                micro(2, -58.0, 0.01),
                mac(100, -70.0, 0.5),
            ],
        );
        assert_eq!(
            d,
            HandoffDecision::Handoff {
                target: CellId(100),
                tier: Tier::Macro,
                fallback: None
            }
        );
    }

    #[test]
    fn resource_factor_disabled_ignores_load() {
        let e = HandoffEngine::new(
            DecisionConfig::default(),
            HandoffFactors {
                speed: true,
                signal: true,
                resources: false,
            },
        );
        let d = e.decide(1.0, None, &[micro(1, -60.0, 0.0), mac(100, -50.0, 0.9)]);
        assert!(matches!(d, HandoffDecision::Handoff { target, .. } if target == CellId(1)));
    }

    #[test]
    fn speed_factor_disabled_keeps_tier() {
        let e = HandoffEngine::new(
            DecisionConfig::default(),
            HandoffFactors {
                speed: false,
                signal: true,
                resources: true,
            },
        );
        // Fast node on micro stays micro-preferring without factor 1.
        let d = e.decide(
            30.0,
            cur(1, Tier::Micro, -60.0),
            &[micro(1, -60.0, 0.9), mac(100, -50.0, 0.9)],
        );
        assert_eq!(d, HandoffDecision::Stay);
    }

    #[test]
    fn signal_factor_disabled_prefers_load() {
        let e = HandoffEngine::new(
            DecisionConfig::default(),
            HandoffFactors {
                speed: true,
                signal: false,
                resources: true,
            },
        );
        let d = e.decide(1.0, None, &[micro(1, -50.0, 0.2), micro(2, -80.0, 0.9)]);
        assert!(
            matches!(d, HandoffDecision::Handoff { target, .. } if target == CellId(2)),
            "without signal factor the least-loaded cell wins: {d:?}"
        );
    }

    #[test]
    fn below_sensitivity_cells_unusable() {
        let d = engine().decide(1.0, None, &[micro(1, -99.0, 0.9)]);
        assert_eq!(d, HandoffDecision::Outage);
    }

    #[test]
    fn full_cells_better_than_outage() {
        // Everything is resource-exhausted, but audible: attach anyway.
        let d = engine().decide(1.0, None, &[micro(1, -70.0, 0.0), mac(2, -80.0, 0.0)]);
        assert!(matches!(d, HandoffDecision::Handoff { target, .. } if target == CellId(1)));
    }

    #[test]
    fn empty_candidates_is_outage() {
        assert_eq!(engine().decide(1.0, None, &[]), HandoffDecision::Outage);
    }

    #[test]
    fn tier_change_skips_hysteresis() {
        // Node slows down: prefers micro even though macro signal is fine.
        let d = engine().decide(
            1.0,
            cur(100, Tier::Macro, -50.0),
            &[micro(1, -75.0, 0.9), mac(100, -50.0, 0.9)],
        );
        assert!(matches!(
            d,
            HandoffDecision::Handoff { target, tier: Tier::Micro, .. } if target == CellId(1)
        ));
    }

    #[test]
    fn deterministic_tie_break_by_cell_id() {
        let d = engine().decide(1.0, None, &[micro(2, -60.0, 0.9), micro(1, -60.0, 0.9)]);
        assert!(matches!(d, HandoffDecision::Handoff { target, .. } if target == CellId(1)));
    }
}
