//! Classification of a handoff into the paper's five procedures
//! (Figs 3.2–3.4), which determine the signaling sequence and cost.

use crate::hierarchy::Hierarchy;
use crate::tier::Tier;
use mtnet_radio::CellId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five handoff procedures of §3.2 (plus the macro→macro move inside
/// one domain, which the paper folds into its domain definition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HandoffType {
    /// Fig 3.4 case (c): micro-cell to micro-cell inside a domain.
    IntraMicroToMicro,
    /// Fig 3.4 case (a): macro-cell to micro-cell (overlap area or
    /// bandwidth demand).
    IntraMacroToMicro,
    /// Fig 3.4 case (b): micro-cell to macro-cell (left micro coverage).
    IntraMicroToMacro,
    /// Macro to macro inside one domain (multi-level macro tiers).
    IntraMacroToMacro,
    /// Fig 3.2: inter-domain, the two domains share the upper-layer BS.
    InterDomainSameUpper,
    /// Fig 3.3: inter-domain, different upper BS — the update must travel
    /// via the home network.
    InterDomainDifferentUpper,
}

impl HandoffType {
    /// All six types, for reporting tables.
    pub const ALL: [HandoffType; 6] = [
        HandoffType::IntraMicroToMicro,
        HandoffType::IntraMacroToMicro,
        HandoffType::IntraMicroToMacro,
        HandoffType::IntraMacroToMacro,
        HandoffType::InterDomainSameUpper,
        HandoffType::InterDomainDifferentUpper,
    ];

    /// True for the two inter-domain procedures.
    pub fn is_inter_domain(&self) -> bool {
        matches!(
            self,
            HandoffType::InterDomainSameUpper | HandoffType::InterDomainDifferentUpper
        )
    }

    /// Whether the procedure requires contacting the home network (only
    /// Fig 3.3: "the most upper layer BS needs to deliver this message to
    /// home network of MN").
    pub fn needs_home_network(&self) -> bool {
        matches!(self, HandoffType::InterDomainDifferentUpper)
    }

    /// Nominal control-message count of the procedure (request + accept +
    /// update/delete messages), used to sanity-check the simulation's
    /// measured signaling. Derived by reading the message sequences off
    /// Figs 3.2–3.4:
    ///
    /// * micro→micro: request, accept, update to new BS chain, delete to
    ///   old BS → 4
    /// * macro→micro: request, accept, update, **and** delete "in the same
    ///   time" → 4
    /// * micro→macro: request, accept, update (forwarded to parent macro)
    ///   → 4
    /// * macro→macro: request, accept, update → 3
    /// * inter same-upper: request, accept, location message via the shared
    ///   upper → 3
    /// * inter different-upper: request, accept, update to new top, to home
    ///   network, reply to the original domain → 5
    pub fn nominal_messages(&self) -> u32 {
        match self {
            HandoffType::IntraMicroToMicro => 4,
            HandoffType::IntraMacroToMicro => 4,
            HandoffType::IntraMicroToMacro => 4,
            HandoffType::IntraMacroToMacro => 3,
            HandoffType::InterDomainSameUpper => 3,
            HandoffType::InterDomainDifferentUpper => 5,
        }
    }
}

impl fmt::Display for HandoffType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HandoffType::IntraMicroToMicro => "intra micro→micro",
            HandoffType::IntraMacroToMicro => "intra macro→micro",
            HandoffType::IntraMicroToMacro => "intra micro→macro",
            HandoffType::IntraMacroToMacro => "intra macro→macro",
            HandoffType::InterDomainSameUpper => "inter-domain (same upper)",
            HandoffType::InterDomainDifferentUpper => "inter-domain (diff upper)",
        };
        f.write_str(s)
    }
}

/// Classifies a handoff `old → new` against the hierarchy.
///
/// # Panics
///
/// Panics if either cell is unknown or is an upper-layer (domainless) BS —
/// nodes never attach to those directly.
pub fn classify(hierarchy: &Hierarchy, old: CellId, new: CellId) -> HandoffType {
    let old_domain = hierarchy
        .domain_of(old)
        .expect("old cell must be in a domain");
    let new_domain = hierarchy
        .domain_of(new)
        .expect("new cell must be in a domain");
    if old_domain != new_domain {
        return if hierarchy.same_upper(old_domain, new_domain) {
            HandoffType::InterDomainSameUpper
        } else {
            HandoffType::InterDomainDifferentUpper
        };
    }
    match (hierarchy.tier_of(old), hierarchy.tier_of(new)) {
        (Tier::Micro, Tier::Micro) => HandoffType::IntraMicroToMicro,
        (Tier::Macro, Tier::Micro) => HandoffType::IntraMacroToMicro,
        (Tier::Micro, Tier::Macro) => HandoffType::IntraMicroToMacro,
        (Tier::Macro, Tier::Macro) => HandoffType::IntraMacroToMacro,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two regions: R3(100) over R1(101)+R2(102); isolated R4(103).
    /// Micros: 1,2 under 101; 3 under 102; 4 under 103.
    fn world() -> Hierarchy {
        let mut h = Hierarchy::new();
        let r3 = h.add_upper_macro(CellId(100));
        h.add_domain(CellId(101), Some(r3));
        h.add_domain(CellId(102), Some(r3));
        h.add_domain(CellId(103), None);
        h.add_micro(CellId(1), CellId(101));
        h.add_micro(CellId(2), CellId(101));
        h.add_micro(CellId(3), CellId(102));
        h.add_micro(CellId(4), CellId(103));
        h
    }

    #[test]
    fn intra_domain_cases() {
        let h = world();
        assert_eq!(
            classify(&h, CellId(1), CellId(2)),
            HandoffType::IntraMicroToMicro
        );
        assert_eq!(
            classify(&h, CellId(101), CellId(1)),
            HandoffType::IntraMacroToMicro
        );
        assert_eq!(
            classify(&h, CellId(1), CellId(101)),
            HandoffType::IntraMicroToMacro
        );
    }

    #[test]
    fn intra_macro_macro() {
        let mut h = Hierarchy::new();
        h.add_domain(CellId(10), None);
        h.add_macro_under(CellId(11), CellId(10));
        assert_eq!(
            classify(&h, CellId(10), CellId(11)),
            HandoffType::IntraMacroToMacro
        );
    }

    #[test]
    fn inter_domain_same_upper() {
        let h = world();
        assert_eq!(
            classify(&h, CellId(1), CellId(3)),
            HandoffType::InterDomainSameUpper,
            "R1 and R2 share R3 (Fig 3.2)"
        );
        assert_eq!(
            classify(&h, CellId(101), CellId(102)),
            HandoffType::InterDomainSameUpper
        );
    }

    #[test]
    fn inter_domain_different_upper() {
        let h = world();
        assert_eq!(
            classify(&h, CellId(1), CellId(4)),
            HandoffType::InterDomainDifferentUpper,
            "domain 103 has no shared upper (Fig 3.3)"
        );
    }

    #[test]
    fn home_network_only_for_different_upper() {
        for t in HandoffType::ALL {
            assert_eq!(
                t.needs_home_network(),
                t == HandoffType::InterDomainDifferentUpper
            );
        }
    }

    #[test]
    fn inter_domain_flags() {
        assert!(HandoffType::InterDomainSameUpper.is_inter_domain());
        assert!(!HandoffType::IntraMicroToMicro.is_inter_domain());
    }

    #[test]
    fn nominal_message_ordering() {
        // The different-upper procedure is the most expensive; intra
        // macro-macro and same-upper the cheapest.
        assert!(
            HandoffType::InterDomainDifferentUpper.nominal_messages()
                > HandoffType::InterDomainSameUpper.nominal_messages()
        );
        assert!(
            HandoffType::IntraMicroToMicro.nominal_messages()
                >= HandoffType::IntraMacroToMacro.nominal_messages()
        );
    }

    #[test]
    fn display_distinct() {
        let names: std::collections::HashSet<String> =
            HandoffType::ALL.iter().map(|t| t.to_string()).collect();
        assert_eq!(names.len(), HandoffType::ALL.len());
    }

    #[test]
    #[should_panic(expected = "must be in a domain")]
    fn upper_bs_attachment_rejected() {
        let h = world();
        classify(&h, CellId(100), CellId(1));
    }
}
