//! The handoff strategy of §3.2: mobile-controlled tier selection from
//! three factors (speed, signal power, BS resources) plus the five-case
//! classification of Figs 3.2–3.4.

mod classify;
mod decision;

pub use classify::{classify, HandoffType};
pub use decision::{
    Candidate, CurrentAttachment, DecisionConfig, HandoffDecision, HandoffEngine, HandoffFactors,
};
