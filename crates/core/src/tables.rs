//! The paper's cell tables: `micro_table` and `macro_table` (§3.1).
//!
//! Every micro-cell BS keeps a `micro_table`; every macro-cell BS keeps a
//! `macro_table` **and** the micro-tier records of cells under its control
//! region. Records map a mobile node to the cell that (from this BS's
//! viewpoint) leads toward it, and are soft state: refreshed by Location
//! Messages, erased after a time limit.

use crate::tier::Tier;
use mtnet_cellularip::SoftStateCache;
use mtnet_net::Addr;
use mtnet_radio::CellId;
use mtnet_sim::{SimDuration, SimTime};

/// Which table a lookup hit — the paper's lookup order is micro first,
/// then macro ("Macro-cell will search its micro_table first, if not find,
/// its macro_table will be searched").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableHit {
    /// Found in the micro_table.
    Micro(CellId),
    /// Found in the macro_table.
    Macro(CellId),
}

impl TableHit {
    /// The located cell regardless of table.
    pub fn cell(&self) -> CellId {
        match self {
            TableHit::Micro(c) | TableHit::Macro(c) => *c,
        }
    }

    /// The tier of the table that answered.
    pub fn tier(&self) -> Tier {
        match self {
            TableHit::Micro(_) => Tier::Micro,
            TableHit::Macro(_) => Tier::Macro,
        }
    }
}

/// The cell table(s) held by one base station.
///
/// A micro BS has only the micro table; a macro BS has both. Both tables
/// share the same record shape (mn → cell) and time-limitation rule.
///
/// ```
/// use mtnet_core::tables::CellTable;
/// use mtnet_radio::CellId;
/// use mtnet_sim::{SimDuration, SimTime};
///
/// let mut t = CellTable::for_macro_bs(SimDuration::from_secs(6));
/// let mn: mtnet_net::Addr = "10.0.2.1".parse().unwrap();
/// t.record_micro(mn, CellId(3), SimTime::ZERO);
/// let hit = t.lookup(mn, SimTime::from_secs(2)).unwrap();
/// assert_eq!(hit.cell(), CellId(3));
/// ```
#[derive(Debug, Clone)]
pub struct CellTable {
    micro: SoftStateCache<Addr, CellId>,
    /// `None` for micro-tier base stations.
    macro_: Option<SoftStateCache<Addr, CellId>>,
    lookups: u64,
    micro_hits: u64,
    macro_hits: u64,
    misses: u64,
}

impl CellTable {
    /// The record time-limitation used when none is configured: a few
    /// Location Message periods.
    pub const DEFAULT_LIFETIME: SimDuration = SimDuration::from_secs(6);

    /// Table set for a micro-cell BS (micro_table only).
    pub fn for_micro_bs(lifetime: SimDuration) -> Self {
        CellTable {
            micro: SoftStateCache::new(lifetime),
            macro_: None,
            lookups: 0,
            micro_hits: 0,
            macro_hits: 0,
            misses: 0,
        }
    }

    /// Table set for a macro-cell BS (micro_table + macro_table).
    pub fn for_macro_bs(lifetime: SimDuration) -> Self {
        CellTable {
            micro: SoftStateCache::new(lifetime),
            macro_: Some(SoftStateCache::new(lifetime)),
            lookups: 0,
            micro_hits: 0,
            macro_hits: 0,
            misses: 0,
        }
    }

    /// True if this BS also keeps a macro_table.
    pub fn has_macro_table(&self) -> bool {
        self.macro_.is_some()
    }

    /// Records/refreshes a micro-tier location `(mn, cell)` at `now` —
    /// e.g. `(X, B)` in the paper's Fig 3.1 walkthrough.
    pub fn record_micro(&mut self, mn: Addr, cell: CellId, now: SimTime) {
        self.micro.refresh(mn, cell, now);
    }

    /// Records/refreshes a macro-tier location.
    ///
    /// # Panics
    ///
    /// Panics if called on a micro-BS table (it has no macro_table).
    pub fn record_macro(&mut self, mn: Addr, cell: CellId, now: SimTime) {
        self.macro_
            .as_mut()
            .expect("micro BS has no macro_table")
            .refresh(mn, cell, now);
    }

    /// Deletes the record for `mn` from both tables (the paper's
    /// "Delete Location Message").
    pub fn delete(&mut self, mn: Addr) {
        self.micro.remove(&mn);
        if let Some(m) = self.macro_.as_mut() {
            m.remove(&mn);
        }
    }

    /// Deletes the record for `mn` only if it still marks a *direct
    /// attachment* at `here` (the stored cell equals this BS itself).
    ///
    /// This is the correct semantics for the paper's "Update Location
    /// Message … and a Delete Location Message … in the same time"
    /// (§3.2a): when the old BS lies on the new chain (macro→micro under
    /// the same macro), the concurrent update has already replaced the
    /// record with a downstream pointer, which must survive the delete.
    pub fn delete_attachment(&mut self, mn: Addr, here: CellId) {
        if self.micro.get_even_stale(&mn) == Some(&here) {
            self.micro.remove(&mn);
        }
        if let Some(m) = self.macro_.as_mut() {
            if m.get_even_stale(&mn) == Some(&here) {
                m.remove(&mn);
            }
        }
    }

    /// Looks up `mn` in the paper's order: micro_table first, then
    /// macro_table. Records hit/miss statistics.
    pub fn lookup(&mut self, mn: Addr, now: SimTime) -> Option<TableHit> {
        self.lookups += 1;
        if let Some(&cell) = self.micro.get(&mn, now) {
            self.micro_hits += 1;
            return Some(TableHit::Micro(cell));
        }
        if let Some(m) = self.macro_.as_ref() {
            if let Some(&cell) = m.get(&mn, now) {
                self.macro_hits += 1;
                return Some(TableHit::Macro(cell));
            }
        }
        self.misses += 1;
        None
    }

    /// Evicts expired records from both tables; returns how many.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let mut n = self.micro.sweep(now);
        if let Some(m) = self.macro_.as_mut() {
            n += m.sweep(now);
        }
        n
    }

    /// `(micro_records, macro_records)` currently stored (incl. stale).
    pub fn sizes(&self) -> (usize, usize) {
        (
            self.micro.len(),
            self.macro_.as_ref().map_or(0, SoftStateCache::len),
        )
    }

    /// `(lookups, micro_hits, macro_hits, misses)` statistics.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.lookups, self.micro_hits, self.macro_hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn mn() -> Addr {
        addr("10.0.2.9")
    }

    #[test]
    fn micro_bs_has_no_macro_table() {
        let t = CellTable::for_micro_bs(CellTable::DEFAULT_LIFETIME);
        assert!(!t.has_macro_table());
        assert_eq!(t.sizes(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "no macro_table")]
    fn micro_bs_rejects_macro_records() {
        let mut t = CellTable::for_micro_bs(CellTable::DEFAULT_LIFETIME);
        t.record_macro(mn(), CellId(1), SimTime::ZERO);
    }

    #[test]
    fn lookup_order_micro_first() {
        let mut t = CellTable::for_macro_bs(CellTable::DEFAULT_LIFETIME);
        t.record_macro(mn(), CellId(7), SimTime::ZERO);
        t.record_micro(mn(), CellId(3), SimTime::ZERO);
        let hit = t.lookup(mn(), SimTime::from_secs(1)).unwrap();
        assert_eq!(
            hit,
            TableHit::Micro(CellId(3)),
            "micro_table searched first"
        );
        assert_eq!(hit.tier(), Tier::Micro);
    }

    #[test]
    fn macro_table_is_fallback() {
        let mut t = CellTable::for_macro_bs(CellTable::DEFAULT_LIFETIME);
        t.record_macro(mn(), CellId(7), SimTime::ZERO);
        let hit = t.lookup(mn(), SimTime::from_secs(1)).unwrap();
        assert_eq!(hit, TableHit::Macro(CellId(7)));
        assert_eq!(hit.cell(), CellId(7));
        let (lookups, micro_hits, macro_hits, misses) = t.stats();
        assert_eq!((lookups, micro_hits, macro_hits, misses), (1, 0, 1, 0));
    }

    #[test]
    fn records_expire_per_time_limitation() {
        let mut t = CellTable::for_macro_bs(SimDuration::from_secs(4));
        t.record_micro(mn(), CellId(3), SimTime::ZERO);
        assert!(t.lookup(mn(), SimTime::from_secs(3)).is_some());
        assert!(
            t.lookup(mn(), SimTime::from_secs(4)).is_none(),
            "record erased"
        );
        assert_eq!(t.stats().3, 1, "miss counted");
    }

    #[test]
    fn refresh_keeps_record_alive() {
        let mut t = CellTable::for_micro_bs(SimDuration::from_secs(4));
        for s in [0u64, 3, 6, 9] {
            t.record_micro(mn(), CellId(3), SimTime::from_secs(s));
        }
        assert!(t.lookup(mn(), SimTime::from_secs(12)).is_some());
    }

    #[test]
    fn delete_erases_both_tables() {
        let mut t = CellTable::for_macro_bs(CellTable::DEFAULT_LIFETIME);
        t.record_micro(mn(), CellId(3), SimTime::ZERO);
        t.record_macro(mn(), CellId(7), SimTime::ZERO);
        t.delete(mn());
        assert!(t.lookup(mn(), SimTime::ZERO).is_none());
        assert_eq!(t.sizes(), (0, 0));
    }

    #[test]
    fn sweep_cleans_both_tables() {
        let mut t = CellTable::for_macro_bs(SimDuration::from_secs(2));
        t.record_micro(mn(), CellId(3), SimTime::ZERO);
        t.record_macro(addr("10.0.2.8"), CellId(7), SimTime::ZERO);
        assert_eq!(t.sweep(SimTime::from_secs(5)), 2);
    }

    #[test]
    fn update_replaces_cell() {
        let mut t = CellTable::for_micro_bs(CellTable::DEFAULT_LIFETIME);
        t.record_micro(mn(), CellId(3), SimTime::ZERO);
        t.record_micro(mn(), CellId(4), SimTime::from_secs(1));
        assert_eq!(
            t.lookup(mn(), SimTime::from_secs(2)).unwrap().cell(),
            CellId(4)
        );
    }
}
