//! The distributed location directory: per-BS cell tables plus the
//! Location Message propagation and lookup procedures of §3.1.

use crate::hierarchy::Hierarchy;
use crate::tables::{CellTable, TableHit};
use crate::tier::Tier;
use mtnet_net::Addr;
use mtnet_radio::CellId;
use mtnet_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Result of a hierarchical location lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Located {
    /// The next cell toward the node, as recorded at the answering BS.
    pub toward: CellId,
    /// How many levels above the querying BS the answer was found
    /// (0 = at the querying BS itself).
    pub levels_climbed: usize,
    /// Which table answered.
    pub hit: TableHit,
}

/// All cell tables of a deployment, maintained by Location / Update /
/// Delete Location Messages exactly as §3.1 prescribes.
///
/// Records follow the paper's Fig 3.1 walkthrough: a node `X` served by
/// micro cell `B` (with chain `B → A → R1 → R3`) leaves records
/// `(X, B)` at `B`, `(X, B)` at `A`, `(X, A)` at `R1` and `(X, R1)` at
/// `R3` — each BS remembers the *child cell leading toward the node*.
#[derive(Debug)]
pub struct LocationDirectory {
    tables: HashMap<CellId, CellTable>,
    lifetime: SimDuration,
    location_messages: u64,
    update_messages: u64,
    delete_messages: u64,
}

impl LocationDirectory {
    /// Creates tables for every cell in the hierarchy, with the given
    /// record time-limitation.
    pub fn new(hierarchy: &Hierarchy, lifetime: SimDuration) -> Self {
        let mut tables = HashMap::new();
        for domain in hierarchy.domains() {
            for cell in hierarchy.cells_in_domain(domain.id) {
                tables.insert(cell, Self::table_for(hierarchy, cell, lifetime));
            }
            if let Some(upper) = domain.upper {
                tables
                    .entry(upper)
                    .or_insert_with(|| Self::table_for(hierarchy, upper, lifetime));
            }
        }
        LocationDirectory {
            tables,
            lifetime,
            location_messages: 0,
            update_messages: 0,
            delete_messages: 0,
        }
    }

    fn table_for(hierarchy: &Hierarchy, cell: CellId, lifetime: SimDuration) -> CellTable {
        match hierarchy.tier_of(cell) {
            Tier::Micro => CellTable::for_micro_bs(lifetime),
            Tier::Macro => CellTable::for_macro_bs(lifetime),
        }
    }

    /// The configured record lifetime.
    pub fn lifetime(&self) -> SimDuration {
        self.lifetime
    }

    /// Records a *Location Message* from `mn` served by `serving`,
    /// refreshing the record at the serving BS and at every ancestor up to
    /// the hierarchy root.
    ///
    /// Returns the number of tables refreshed (signaling cost).
    ///
    /// # Panics
    ///
    /// Panics if `serving` is not in the hierarchy.
    pub fn on_location_message(
        &mut self,
        hierarchy: &Hierarchy,
        mn: Addr,
        serving: CellId,
        now: SimTime,
    ) -> usize {
        self.location_messages += 1;
        self.propagate(hierarchy, mn, serving, now)
    }

    /// Records an *Update Location Message* (post-handoff); same
    /// propagation as a Location Message.
    pub fn on_update_location(
        &mut self,
        hierarchy: &Hierarchy,
        mn: Addr,
        new_cell: CellId,
        now: SimTime,
    ) -> usize {
        self.update_messages += 1;
        self.propagate(hierarchy, mn, new_cell, now)
    }

    fn propagate(
        &mut self,
        hierarchy: &Hierarchy,
        mn: Addr,
        serving: CellId,
        now: SimTime,
    ) -> usize {
        let chain = hierarchy.chain_up(serving);
        let serving_tier = hierarchy.tier_of(serving);
        let mut refreshed = 0;
        // chain[0] = serving records (mn, serving); ancestor i records
        // (mn, chain[i-1]).
        for (i, &cell) in chain.iter().enumerate() {
            let toward = if i == 0 { serving } else { chain[i - 1] };
            let Some(table) = self.tables.get_mut(&cell) else {
                continue;
            };
            // Records sourced from a micro-tier serving cell live in
            // micro_tables; macro-tier attachments go to macro_tables
            // (micro BSs only ever see micro-tier records).
            match (serving_tier, table.has_macro_table()) {
                (Tier::Micro, _) => table.record_micro(mn, toward, now),
                (Tier::Macro, true) => table.record_macro(mn, toward, now),
                (Tier::Macro, false) => table.record_micro(mn, toward, now),
            }
            refreshed += 1;
        }
        refreshed
    }

    /// Processes a *Delete Location Message*: erases the old BS's record
    /// of the node's direct attachment. Records the concurrent Update
    /// Location Message already replaced (the old BS lying on the new
    /// chain) survive — see [`CellTable::delete_attachment`].
    pub fn on_delete_location(&mut self, mn: Addr, old_cell: CellId) {
        self.delete_messages += 1;
        if let Some(t) = self.tables.get_mut(&old_cell) {
            t.delete_attachment(mn, old_cell);
        }
    }

    /// The paper's tracking procedure: the querying BS searches its own
    /// cell table (micro_table before macro_table); on a miss the query
    /// climbs to the parent BS, and so on. Returns where the node was
    /// found, or `None` if no BS on the chain knows it.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not in the hierarchy.
    pub fn locate(
        &mut self,
        hierarchy: &Hierarchy,
        mn: Addr,
        from: CellId,
        now: SimTime,
    ) -> Option<Located> {
        for (levels, cell) in hierarchy.chain_up(from).into_iter().enumerate() {
            if let Some(table) = self.tables.get_mut(&cell) {
                if let Some(hit) = table.lookup(mn, now) {
                    return Some(Located {
                        toward: hit.cell(),
                        levels_climbed: levels,
                        hit,
                    });
                }
            }
        }
        None
    }

    /// Follows table records downward from `start` to the serving cell —
    /// the full resolution a packet would take. `None` on a broken chain.
    pub fn resolve_serving_cell(
        &mut self,
        mn: Addr,
        start: CellId,
        now: SimTime,
    ) -> Option<CellId> {
        let mut cur = start;
        // Bounded walk: a table chain can never be deeper than the table
        // count; anything longer means a routing loop.
        for _ in 0..=self.tables.len() {
            let hit = self.tables.get_mut(&cur)?.lookup(mn, now)?;
            let next = hit.cell();
            if next == cur {
                return Some(cur);
            }
            cur = next;
        }
        None
    }

    /// Access to one BS's table (statistics).
    pub fn table(&self, cell: CellId) -> Option<&CellTable> {
        self.tables.get(&cell)
    }

    /// Evicts expired records everywhere; returns total evictions.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        self.tables.values_mut().map(|t| t.sweep(now)).sum()
    }

    /// `(location, update, delete)` message counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.location_messages,
            self.update_messages,
            self.delete_messages,
        )
    }

    /// Total records currently stored across all tables.
    pub fn total_records(&self) -> usize {
        self.tables
            .values()
            .map(|t| {
                let (a, b) = t.sizes();
                a + b
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    /// Fig 3.1: R3(100) over R1(101), R2(102); A(1)←B(2),C(3) in d1;
    /// D(4)←E(5),F(6) in d2.
    fn fig31() -> Hierarchy {
        let mut h = Hierarchy::new();
        let r3 = h.add_upper_macro(CellId(100));
        h.add_domain(CellId(101), Some(r3));
        h.add_domain(CellId(102), Some(r3));
        h.add_micro(CellId(1), CellId(101));
        h.add_micro(CellId(2), CellId(1));
        h.add_micro(CellId(3), CellId(1));
        h.add_micro(CellId(4), CellId(102));
        h.add_micro(CellId(5), CellId(4));
        h.add_micro(CellId(6), CellId(4));
        h
    }

    fn dir(h: &Hierarchy) -> LocationDirectory {
        LocationDirectory::new(h, SimDuration::from_secs(6))
    }

    #[test]
    fn fig31_walkthrough_records() {
        let h = fig31();
        let mut d = dir(&h);
        let x = addr("10.0.2.1");
        // X served by B(2): B, A, R1, R3 refreshed (4 tables).
        let refreshed = d.on_location_message(&h, x, CellId(2), SimTime::ZERO);
        assert_eq!(refreshed, 4);
        let t = SimTime::from_secs(1);
        // Check the exact records the paper lists.
        assert_eq!(d.locate(&h, x, CellId(2), t).unwrap().toward, CellId(2)); // (X,B) at B
        let at_a = d.locate(&h, x, CellId(1), t).unwrap();
        assert_eq!(at_a.toward, CellId(2)); // (X,B) at A
        let at_r1 = d.locate(&h, x, CellId(101), t).unwrap();
        assert_eq!(at_r1.toward, CellId(1)); // (X,A) at R1
        let at_r3 = d.locate(&h, x, CellId(100), t).unwrap();
        assert_eq!(at_r3.toward, CellId(101)); // (X,R1) at R3
    }

    #[test]
    fn lookup_climbs_on_miss() {
        let h = fig31();
        let mut d = dir(&h);
        let x = addr("10.0.2.1");
        d.on_location_message(&h, x, CellId(2), SimTime::ZERO);
        // Query from sibling C(3): miss at C, miss at A? No — A has (X,B).
        let found = d.locate(&h, x, CellId(3), SimTime::from_secs(1)).unwrap();
        assert_eq!(found.levels_climbed, 1, "answered by parent A");
        assert_eq!(found.toward, CellId(2));
        // Query from the other domain: climbs to R3.
        let far = d.locate(&h, x, CellId(6), SimTime::from_secs(1)).unwrap();
        assert_eq!(far.levels_climbed, 3);
        assert_eq!(far.toward, CellId(101));
    }

    #[test]
    fn resolve_serving_cell_follows_chain() {
        let h = fig31();
        let mut d = dir(&h);
        let x = addr("10.0.2.1");
        d.on_location_message(&h, x, CellId(2), SimTime::ZERO);
        // From R3 the chain R3→R1→A→B resolves to the serving cell B.
        assert_eq!(
            d.resolve_serving_cell(x, CellId(100), SimTime::from_secs(1)),
            Some(CellId(2))
        );
    }

    #[test]
    fn records_expire_without_refresh() {
        let h = fig31();
        let mut d = dir(&h);
        let x = addr("10.0.2.1");
        d.on_location_message(&h, x, CellId(2), SimTime::ZERO);
        assert!(d.locate(&h, x, CellId(2), SimTime::from_secs(7)).is_none());
        assert!(d.sweep(SimTime::from_secs(7)) >= 4);
        assert_eq!(d.total_records(), 0);
    }

    #[test]
    fn update_location_moves_the_chain() {
        let h = fig31();
        let mut d = dir(&h);
        let x = addr("10.0.2.1");
        d.on_location_message(&h, x, CellId(2), SimTime::ZERO);
        // Handoff B→C (Fig 3.4 micro-micro): update from C, delete at B.
        d.on_update_location(&h, x, CellId(3), SimTime::from_secs(1));
        d.on_delete_location(x, CellId(2));
        let t = SimTime::from_secs(2);
        assert_eq!(d.resolve_serving_cell(x, CellId(100), t), Some(CellId(3)));
        assert!(d.locate(&h, x, CellId(2), t).map(|l| l.levels_climbed) > Some(0));
        assert_eq!(d.counters(), (1, 1, 1));
    }

    #[test]
    fn macro_attachment_uses_macro_table() {
        let h = fig31();
        let mut d = dir(&h);
        let y = addr("10.0.2.2");
        // Y served directly by macro R1 (Fig 3.4 micro→macro case).
        d.on_location_message(&h, y, CellId(101), SimTime::ZERO);
        let hit = d.locate(&h, y, CellId(101), SimTime::from_secs(1)).unwrap();
        assert_eq!(hit.hit.tier(), Tier::Macro, "macro_table answered");
        assert_eq!(hit.toward, CellId(101));
    }

    #[test]
    fn micro_hit_before_macro_hit() {
        let h = fig31();
        let mut d = dir(&h);
        let x = addr("10.0.2.1");
        // Both a micro-sourced and macro-sourced record exist at R1.
        d.on_location_message(&h, x, CellId(101), SimTime::ZERO); // macro rec
        d.on_location_message(&h, x, CellId(2), SimTime::ZERO); // micro rec
        let hit = d.locate(&h, x, CellId(101), SimTime::from_secs(1)).unwrap();
        assert_eq!(hit.hit.tier(), Tier::Micro, "paper's order: micro first");
    }

    #[test]
    fn unknown_node_not_found() {
        let h = fig31();
        let mut d = dir(&h);
        assert!(d
            .locate(&h, addr("9.9.9.9"), CellId(2), SimTime::ZERO)
            .is_none());
        assert!(d
            .resolve_serving_cell(addr("9.9.9.9"), CellId(100), SimTime::ZERO)
            .is_none());
    }
}
