//! # mtnet-core — IP-based multi-tier mobility management (the paper)
//!
//! Implementation of *"Mobility Management of IP-Based Multi-tier Network
//! Supporting Mobile Multimedia Communication Services"* (Wang, Tsai,
//! Huang; ICDCSW'02): a multi-tier wireless architecture running
//! **Mobile IP in the macro-tier** and **Cellular IP in the micro-tier**,
//! with
//!
//! * hierarchical **cell tables** (`micro_table` / `macro_table`) refreshed
//!   by periodic *Location Messages* and erased on time-limit (§3.1,
//!   [`tables`], [`location`]);
//! * a mobile-controlled **handoff strategy** choosing the target tier from
//!   the node's *speed*, BS *signal power* and BS *resources* (§3.2,
//!   [`handoff`]), covering the five procedures of Figs 3.2–3.4
//!   (inter-domain same/different upper BS; intra-domain macro→micro,
//!   micro→macro, micro→micro);
//! * the **RSMC** (Resource Switching Management Center, §4, [`rsmc`]):
//!   a per-domain control center combining the Cellular IP gateway with a
//!   location cache, MN authentication and HA/CN movement notification;
//! * the **MNLD** (Mobile Node Location Database, [`mnld`]).
//!
//! Everything runs inside a deterministic packet-level simulation
//! ([`world`]), with scenario builders ([`scenario`]) for the proposed
//! architecture and the baselines it is compared against (pure Mobile IP,
//! flat Cellular IP), and a [`report`] module aggregating QoS, handoff and
//! signaling statistics.
//!
//! ```no_run
//! use mtnet_core::scenario::{Scenario, ArchKind};
//!
//! let report = Scenario::small_city(42)
//!     .with_arch(ArchKind::multi_tier())
//!     .run_secs(60.0);
//! println!("voice loss: {:.3}%", report.aggregate_qos().loss_rate * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod handoff;
pub mod hierarchy;
pub mod location;
pub mod messages;
pub mod mnld;
pub mod report;
pub mod rsmc;
pub mod scenario;
pub mod spec;
pub mod tables;
pub mod tier;
pub mod world;

pub use arena::{PacketArena, PacketRef};
pub use handoff::{HandoffDecision, HandoffEngine, HandoffFactors, HandoffType};
pub use hierarchy::{Domain, DomainId, Hierarchy};
pub use messages::{MnId, MtMessage, Payload};
pub use report::SimReport;
pub use scenario::{ArchKind, Scenario};
pub use spec::{ScenarioSpec, SeedSpec};
pub use tables::CellTable;
pub use tier::Tier;
