//! Generational packet arena: allocation-free packet lifecycles for the
//! simulation hot path.
//!
//! Every packet in flight used to be a `Box<Packet<Payload>>` — one heap
//! allocation at the source, one free at the sink, plus an inner
//! allocation whenever the encapsulation stack first grew. At tens of
//! millions of packets per experiment suite that is pure allocator
//! churn. The arena replaces the box with a slab slot addressed by a
//! small `Copy` handle ([`PacketRef`]): events carry the 8-byte handle,
//! packet construction recycles a retired slot **in place** (the
//! encapsulation `Vec`'s capacity included), and freeing is pushing an
//! index onto a free list.
//!
//! Handles are *generational*: each slot carries a generation counter
//! bumped on free, and a handle is only valid while its generation
//! matches. A stale handle — one kept across its packet's release — is a
//! logic bug and panics on access rather than silently aliasing whatever
//! packet reused the slot.

use crate::messages::Payload;
use mtnet_net::{Addr, FlowId, Packet, PacketId};
use mtnet_sim::SimTime;

/// Handle to a live packet in a [`PacketArena`]. 8 bytes, `Copy` — this
/// is what simulation events carry instead of a `Box<Packet>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    index: u32,
    generation: u32,
}

/// Slab of packets with generational handles. See the module docs.
#[derive(Debug, Default)]
pub struct PacketArena {
    /// Slot storage: the generation guards validity; the packet value in
    /// a free slot is retired garbage awaiting in-place reuse.
    slots: Vec<(u32, Packet<Payload>)>,
    /// Indices of free slots (LIFO: the most recently freed slot — and
    /// its cache lines and encap capacity — is reused first).
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Number of live (allocated, not yet freed) packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocates a packet, reusing a retired slot (and its encapsulation
    /// stack's capacity) when one is available.
    #[allow(clippy::too_many_arguments)] // mirrors Packet::new field-for-field
    pub fn alloc(
        &mut self,
        id: PacketId,
        flow: FlowId,
        seq: u64,
        src: Addr,
        dst: Addr,
        payload_bytes: u32,
        created_at: SimTime,
        payload: Payload,
    ) -> PacketRef {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                let (generation, pkt) = &mut self.slots[index as usize];
                pkt.id = id;
                pkt.flow = flow;
                pkt.seq = seq;
                pkt.src = src;
                pkt.dst = dst;
                pkt.payload_bytes = payload_bytes;
                pkt.created_at = created_at;
                pkt.hops = 0;
                pkt.encap.clear(); // keeps capacity: no realloc next tunnel
                pkt.payload = payload;
                PacketRef {
                    index,
                    generation: *generation,
                }
            }
            None => {
                let index =
                    u32::try_from(self.slots.len()).expect("fewer than 2^32 packets in flight");
                self.slots.push((
                    0,
                    Packet::new(id, flow, seq, src, dst, payload_bytes, created_at, payload),
                ));
                PacketRef {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Allocates a copy of a live packet (semisoft bicast duplicates).
    pub fn duplicate(&mut self, r: PacketRef) -> PacketRef {
        let src = self.get(r).clone();
        let copy = self.alloc(
            src.id,
            src.flow,
            src.seq,
            src.src,
            src.dst,
            src.payload_bytes,
            src.created_at,
            src.payload,
        );
        let (_, pkt) = &mut self.slots[copy.index as usize];
        pkt.hops = src.hops;
        pkt.encap.extend_from_slice(&src.encap);
        copy
    }

    /// Shared access to a live packet.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (its packet was already freed).
    pub fn get(&self, r: PacketRef) -> &Packet<Payload> {
        let (generation, pkt) = &self.slots[r.index as usize];
        assert_eq!(*generation, r.generation, "stale PacketRef {r:?}");
        pkt
    }

    /// Warms the cache line holding `r`'s slot without validating the
    /// handle. The batched dispatch path calls this for every packet in
    /// a run before handling any of them, so the generation checks in
    /// [`PacketArena::get`] walk already-hot lines instead of taking a
    /// miss per packet. Stale or out-of-range handles are a no-op.
    #[inline]
    pub fn touch(&self, r: PacketRef) {
        if let Some((generation, _)) = self.slots.get(r.index as usize) {
            std::hint::black_box(*generation);
        }
    }

    /// Exclusive access to a live packet (tunnel push/pop, hop counts).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet<Payload> {
        let (generation, pkt) = &mut self.slots[r.index as usize];
        assert_eq!(*generation, r.generation, "stale PacketRef {r:?}");
        pkt
    }

    /// Removes a live packet by value, retiring its slot exactly as
    /// [`PacketArena::free`] does. Used when a packet leaves this arena
    /// entirely (cross-shard handoff) rather than ending its life here.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn take(&mut self, r: PacketRef) -> Packet<Payload> {
        let packet = self.get(r).clone();
        self.free(r);
        packet
    }

    /// Moves a whole packet into the arena: like [`PacketArena::alloc`]
    /// but preserving the packet's id, hop count and encapsulation stack
    /// verbatim. The counterpart of [`PacketArena::take`] on the
    /// receiving side of a cross-shard handoff.
    pub fn insert(&mut self, packet: Packet<Payload>) -> PacketRef {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                let (generation, slot) = &mut self.slots[index as usize];
                *slot = packet;
                PacketRef {
                    index,
                    generation: *generation,
                }
            }
            None => {
                let index =
                    u32::try_from(self.slots.len()).expect("fewer than 2^32 packets in flight");
                self.slots.push((0, packet));
                PacketRef {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Releases a packet: its slot (encap capacity included) becomes
    /// reusable and every outstanding handle to it goes stale.
    ///
    /// # Panics
    ///
    /// Panics if the handle is already stale (double free).
    pub fn free(&mut self, r: PacketRef) {
        let (generation, _) = &mut self.slots[r.index as usize];
        assert_eq!(*generation, r.generation, "double free of {r:?}");
        *generation = generation.wrapping_add(1);
        self.free.push(r.index);
        self.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u8) -> Addr {
        Addr::from_octets(10, 0, 0, i)
    }

    fn arena_with_one() -> (PacketArena, PacketRef) {
        let mut arena = PacketArena::new();
        let r = arena.alloc(
            PacketId(1),
            FlowId(2),
            3,
            addr(1),
            addr(2),
            1000,
            SimTime::from_secs(1),
            Payload::Data,
        );
        (arena, r)
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let (mut arena, r) = arena_with_one();
        assert_eq!(arena.live(), 1);
        assert_eq!(arena.get(r).id, PacketId(1));
        assert_eq!(arena.get(r).payload_bytes, 1000);
        arena.free(r);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn slot_reuse_keeps_encap_capacity_but_not_content() {
        let (mut arena, r) = arena_with_one();
        arena
            .get_mut(r)
            .encapsulate(addr(3), addr(4), mtnet_net::TunnelKind::HomeAgent);
        let cap = arena.get(r).encap.capacity();
        assert!(cap >= 1);
        arena.free(r);
        let r2 = arena.alloc(
            PacketId(9),
            FlowId(9),
            9,
            addr(5),
            addr(6),
            64,
            SimTime::ZERO,
            Payload::Data,
        );
        assert_eq!(r2.index, r.index, "slot recycled");
        let p = arena.get(r2);
        assert!(p.encap.is_empty(), "no stale tunnel headers");
        assert_eq!(p.encap.capacity(), cap, "capacity survived the recycle");
        assert_eq!(p.hops, 0);
        assert_eq!(p.id, PacketId(9));
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_handle_is_caught() {
        let (mut arena, r) = arena_with_one();
        arena.free(r);
        let _r2 = arena.alloc(
            PacketId(2),
            FlowId(2),
            0,
            addr(1),
            addr(2),
            10,
            SimTime::ZERO,
            Payload::Data,
        );
        let _ = arena.get(r); // r's generation is gone
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught() {
        let (mut arena, r) = arena_with_one();
        arena.free(r);
        arena.free(r);
    }

    #[test]
    fn duplicate_copies_headers_and_tunnels() {
        let (mut arena, r) = arena_with_one();
        arena.get_mut(r).record_hop();
        arena
            .get_mut(r)
            .encapsulate(addr(7), addr(8), mtnet_net::TunnelKind::Rsmc);
        let d = arena.duplicate(r);
        assert_ne!(d, r);
        assert_eq!(arena.get(d).id, arena.get(r).id);
        assert_eq!(arena.get(d).hops, 1);
        assert_eq!(arena.get(d).encap, arena.get(r).encap);
        assert_eq!(arena.live(), 2);
        // The two are independent.
        arena.get_mut(d).decapsulate();
        assert_eq!(arena.get(r).encap.len(), 1);
    }

    #[test]
    fn take_then_insert_is_a_faithful_transfer() {
        let (mut src, r) = arena_with_one();
        src.get_mut(r).record_hop();
        src.get_mut(r)
            .encapsulate(addr(3), addr(4), mtnet_net::TunnelKind::HomeAgent);
        let packet = src.take(r);
        assert_eq!(src.live(), 0);

        let mut dst = PacketArena::new();
        let r2 = dst.insert(packet);
        assert_eq!(dst.live(), 1);
        let p = dst.get(r2);
        assert_eq!(p.id, PacketId(1));
        assert_eq!(p.hops, 1);
        assert_eq!(p.encap.len(), 1);
        assert_eq!(p.payload_bytes, 1000);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn take_retires_the_handle() {
        let (mut arena, r) = arena_with_one();
        let _ = arena.take(r);
        let _ = arena.get(r);
    }

    #[test]
    fn distinct_generations_per_slot_lifetime() {
        let (mut arena, r) = arena_with_one();
        arena.free(r);
        let r2 = arena.alloc(
            PacketId(2),
            FlowId(0),
            0,
            addr(1),
            addr(2),
            1,
            SimTime::ZERO,
            Payload::Data,
        );
        assert_eq!(r.index, r2.index);
        assert_ne!(r.generation, r2.generation);
    }
}
