//! Aggregated experiment results: QoS, handoff and signaling statistics.

use crate::handoff::HandoffType;
use mtnet_metrics::{FixedHistogram, Summary};
use mtnet_net::FlowId;
use mtnet_sim::SimDuration;
use mtnet_traffic::{FlowQos, QosReport};
use std::collections::BTreeMap;

/// Why a data packet was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// No downlink routing state (caches expired / never installed).
    NoRoute,
    /// Delivered over the air to a cell the node had already left.
    WirelessDetached,
    /// Drop-tail queue overflow on a wired link.
    QueueOverflow,
    /// The Home Agent had no binding for the destination.
    NoBinding,
    /// The packet arrived while the node was being paged (idle, no route).
    Paging,
    /// The node was in a coverage hole.
    Outage,
}

impl std::fmt::Display for DropCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropCause::NoRoute => "no-route",
            DropCause::WirelessDetached => "wireless-detached",
            DropCause::QueueOverflow => "queue-overflow",
            DropCause::NoBinding => "no-binding",
            DropCause::Paging => "paging",
            DropCause::Outage => "outage",
        };
        f.write_str(s)
    }
}

/// Signaling-overhead counters (control messages, not data).
#[derive(Debug, Clone, Default)]
pub struct SignalingStats {
    /// Periodic Location Messages (§3.1).
    pub location_messages: u64,
    /// Update Location Messages (post-handoff).
    pub update_messages: u64,
    /// Delete Location Messages.
    pub delete_messages: u64,
    /// Cellular IP route-update packets.
    pub route_updates: u64,
    /// Cellular IP paging-update packets.
    pub paging_updates: u64,
    /// Pages transmitted (directed hops + flood fan-out).
    pub page_messages: u64,
    /// Mobile IP registration requests sent by nodes.
    pub mip_requests: u64,
    /// Mobile IP replies delivered.
    pub mip_replies: u64,
    /// RSMC → HA/CN movement notifications (§4).
    pub rsmc_notifications: u64,
    /// Handoff request/accept/reject messages.
    pub handoff_messages: u64,
    /// Total control bytes on the wire.
    pub control_bytes: u64,
}

impl SignalingStats {
    /// Total control messages of all kinds.
    pub fn total_messages(&self) -> u64 {
        self.location_messages
            + self.update_messages
            + self.delete_messages
            + self.route_updates
            + self.paging_updates
            + self.page_messages
            + self.mip_requests
            + self.mip_replies
            + self.rsmc_notifications
            + self.handoff_messages
    }
}

/// Handoff statistics.
#[derive(Debug, Clone, Default)]
pub struct HandoffStats {
    /// Completed handoffs by procedure type.
    pub completed: BTreeMap<HandoffType, u64>,
    /// Handoff latency (decision → route/binding restored), per type, ms.
    pub latency_ms: BTreeMap<HandoffType, Summary>,
    /// Attempts rejected by admission control (primary target full).
    pub rejected: u64,
    /// Rejections recovered by the other-tier fallback (§3.2).
    pub fallback_used: u64,
    /// Handoffs back to the just-left cell within the ping-pong window.
    pub ping_pong: u64,
    /// Measurement rounds with no usable cell at all.
    pub outage_samples: u64,
}

impl HandoffStats {
    /// Total completed handoffs.
    pub fn total(&self) -> u64 {
        self.completed.values().sum()
    }

    /// Latency summary across every type.
    pub fn latency_all(&self) -> Summary {
        let mut all = Summary::new();
        for s in self.latency_ms.values() {
            all.merge(s);
        }
        all
    }
}

/// Fault-injection activity and resilience metrics.
///
/// All-zero (the default) when the scenario injects no faults, and in that
/// case omitted from [`SimReport::fingerprint`] entirely — fault
/// accounting is strictly opt-in, so fault-free fingerprints are
/// byte-identical to those produced before the subsystem existed.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Cell-outage transitions applied (downs + restores).
    pub cell_transitions: u64,
    /// Wired-link flap transitions applied (downs + restores).
    pub link_transitions: u64,
    /// RSMC crash events applied.
    pub rsmc_kills: u64,
    /// RSMC standby takeovers completed.
    pub rsmc_takeovers: u64,
    /// Satellite eclipse transitions applied (starts + ends).
    pub eclipse_transitions: u64,
    /// Data packets lost while at least one injected fault was active.
    pub outage_drops: u64,
    /// Mobile IP registration requests sent while a fault was active or a
    /// restore was still awaiting its first delivery — the
    /// re-registration storm a failover triggers.
    pub reregistrations: u64,
    /// Recovery latency per restoring transition: time from the restore to
    /// the next successful data delivery anywhere in the world, ms.
    pub recovery_latency_ms: Summary,
}

impl FaultStats {
    /// True when no fault machinery ever fired.
    pub fn is_quiet(&self) -> bool {
        self.cell_transitions == 0
            && self.link_transitions == 0
            && self.rsmc_kills == 0
            && self.rsmc_takeovers == 0
            && self.eclipse_transitions == 0
            && self.outage_drops == 0
            && self.reregistrations == 0
            && self.recovery_latency_ms.count() == 0
    }

    /// Total fault transitions of every category (CI smoke's "nonzero
    /// fault events fired" assertion).
    pub fn total_transitions(&self) -> u64 {
        self.cell_transitions
            + self.link_transitions
            + self.rsmc_kills
            + self.rsmc_takeovers
            + self.eclipse_transitions
    }
}

/// World-level streaming delay accumulator for aggregate-QoS mode.
///
/// Metro-scale worlds keep per-flow trackers compact (no per-flow delay
/// distribution — see [`mtnet_traffic::FlowQos::record_received_compact`])
/// and stream every delivered packet's one-way delay into this single
/// constant-memory pair instead: a fixed-bucket histogram for
/// percentiles and a Welford summary for the mean and its confidence
/// interval. Total metric state is O(1) in events and subscribers.
#[derive(Debug, Clone)]
pub struct AggregateQos {
    /// One-way delay histogram, 1-ms buckets over 0–2048 ms.
    pub delay_ms: FixedHistogram,
    /// Online mean/variance of the same delays (drives the 95% CI).
    pub delay_summary: Summary,
}

impl AggregateQos {
    /// Millisecond range of the delay histogram (1-ms resolution).
    pub const DELAY_UPPER_MS: f64 = 2048.0;

    /// Creates an empty accumulator.
    pub fn new() -> Self {
        AggregateQos {
            delay_ms: FixedHistogram::new(Self::DELAY_UPPER_MS),
            delay_summary: Summary::new(),
        }
    }

    /// Streams one delivered packet's one-way delay (milliseconds).
    #[inline]
    pub fn record(&mut self, delay_ms: f64) {
        self.delay_ms.record(delay_ms);
        self.delay_summary.record(delay_ms);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.delay_summary.count()
    }
}

impl Default for AggregateQos {
    fn default() -> Self {
        AggregateQos::new()
    }
}

/// Everything one simulation run produces.
#[derive(Debug, Default)]
pub struct SimReport {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-flow QoS trackers (finalized by [`SimReport::flow_reports`]).
    pub flows: Vec<(FlowId, FlowQos)>,
    /// Handoff statistics.
    pub handoffs: HandoffStats,
    /// Signaling overhead.
    pub signaling: SignalingStats,
    /// Data-packet drops by cause.
    pub drops: BTreeMap<DropCause, u64>,
    /// Fault-injection activity (all-zero unless the spec injects faults).
    pub faults: FaultStats,
    /// New-call admissions blocked (channel pools).
    pub calls_blocked: u64,
    /// New-call admissions accepted.
    pub calls_accepted: u64,
    /// Events executed by the simulator (run-cost metric).
    pub events_processed: u64,
    /// World-level delay accumulator; `Some` only in aggregate-QoS mode
    /// (metro-scale worlds). Strictly opt-in: `None` leaves the
    /// fingerprint byte-identical to reports predating the field.
    pub aggregate: Option<AggregateQos>,
}

impl SimReport {
    /// Per-flow QoS reports.
    pub fn flow_reports(&self) -> Vec<(FlowId, QosReport)> {
        self.flows
            .iter()
            .map(|(id, q)| (*id, q.report(self.duration)))
            .collect()
    }

    /// All flows merged into one QoS report.
    pub fn aggregate_qos(&self) -> QosReport {
        let mut merged = FlowQos::new();
        for (_, q) in &self.flows {
            merged.merge(q);
        }
        merged.report(self.duration)
    }

    /// Total data drops of all causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Records a drop.
    pub fn count_drop(&mut self, cause: DropCause) {
        *self.drops.entry(cause).or_insert(0) += 1;
    }

    /// Control messages per completed handoff (signaling efficiency).
    pub fn signaling_per_handoff(&self) -> f64 {
        let h = self.handoffs.total();
        if h == 0 {
            0.0
        } else {
            self.signaling.total_messages() as f64 / h as f64
        }
    }

    /// A bit-exact textual digest of every metric in the report.
    ///
    /// Floats are rendered as their IEEE-754 bit patterns (hex), so two
    /// fingerprints are equal **iff** the runs produced identical metrics
    /// down to the last ulp — the determinism contract the parallel batch
    /// runner is tested against (`tests/determinism.rs`): same master
    /// seed, any thread count, byte-identical fingerprint.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        fn bits(x: f64) -> String {
            format!("{:016x}", x.to_bits())
        }
        fn summary_line(s: &Summary) -> String {
            format!(
                "n={} mean={} var={} min={} max={}",
                s.count(),
                bits(s.mean()),
                bits(s.sample_variance()),
                bits(s.min().unwrap_or(0.0)),
                bits(s.max().unwrap_or(0.0)),
            )
        }
        let mut out = String::new();
        let _ = writeln!(out, "duration_ns={}", self.duration.as_nanos());
        let _ = writeln!(out, "events={}", self.events_processed);
        for (flow, report) in self.flow_reports() {
            let _ = writeln!(
                out,
                "flow {}: sent={} recv={} dup={} ooo={} loss={} delay={} p95={} jitter={} tput={}",
                flow.0,
                report.sent,
                report.received,
                report.duplicates,
                report.out_of_order,
                bits(report.loss_rate),
                bits(report.mean_delay_ms),
                bits(report.p95_delay_ms),
                bits(report.jitter_ms),
                bits(report.throughput_bps),
            );
        }
        for (ht, count) in &self.handoffs.completed {
            let _ = writeln!(out, "handoff {ht}: {count}");
        }
        for (ht, lat) in &self.handoffs.latency_ms {
            let _ = writeln!(out, "latency {ht}: {}", summary_line(lat));
        }
        let h = &self.handoffs;
        let _ = writeln!(
            out,
            "handoffs: rejected={} fallback={} pingpong={} outages={}",
            h.rejected, h.fallback_used, h.ping_pong, h.outage_samples
        );
        let s = &self.signaling;
        let _ = writeln!(
            out,
            "signaling: loc={} upd={} del={} route={} paging={} page={} mipreq={} miprep={} rsmc={} ho={} bytes={}",
            s.location_messages,
            s.update_messages,
            s.delete_messages,
            s.route_updates,
            s.paging_updates,
            s.page_messages,
            s.mip_requests,
            s.mip_replies,
            s.rsmc_notifications,
            s.handoff_messages,
            s.control_bytes,
        );
        for (cause, count) in &self.drops {
            let _ = writeln!(out, "drop {cause}: {count}");
        }
        let _ = writeln!(
            out,
            "calls: accepted={} blocked={}",
            self.calls_accepted, self.calls_blocked
        );
        // Fault section only when the machinery fired: fault-free runs
        // (including runs of specs with an *empty* faults section) must
        // fingerprint identically to pre-fault-subsystem runs.
        if !self.faults.is_quiet() {
            let f = &self.faults;
            let _ = writeln!(
                out,
                "faults: cells={} links={} kills={} takeovers={} eclipses={} outage_drops={} rereg={}",
                f.cell_transitions,
                f.link_transitions,
                f.rsmc_kills,
                f.rsmc_takeovers,
                f.eclipse_transitions,
                f.outage_drops,
                f.reregistrations,
            );
            let _ = writeln!(
                out,
                "fault recovery: {}",
                summary_line(&f.recovery_latency_ms)
            );
        }
        // Aggregate-QoS section, appended last and only when the mode is
        // on — per-flow-mode fingerprints stay byte-identical to those
        // produced before the accumulator existed.
        if let Some(agg) = &self.aggregate {
            let _ = writeln!(out, "aggregate delay: {}", summary_line(&agg.delay_summary));
            let p = |q: f64| bits(agg.delay_ms.percentile(q).unwrap_or(0.0));
            let _ = writeln!(
                out,
                "aggregate delay pcts: p50={} p95={} p99={}",
                p(50.0),
                p(95.0),
                p(99.0),
            );
        }
        out
    }
}

/// One batch run's labelled result: which arm produced it, from which
/// sub-seed, plus the full [`SimReport`] — the unit the parallel runner
/// collects in submission order.
#[derive(Debug)]
pub struct RunReport {
    /// Human-readable arm label (architecture, sweep point, …).
    pub label: String,
    /// The sub-seed the run's world was built from (see
    /// `mtnet_sim::rng::SeedTree`).
    pub seed: u64,
    /// Replication index within the arm.
    pub replication: u64,
    /// The run's full metric report.
    pub report: SimReport,
}

impl RunReport {
    /// Bit-exact digest including the run's identity, for determinism
    /// comparisons across thread counts.
    pub fn fingerprint(&self) -> String {
        format!(
            "run label={} seed={:016x} rep={}\n{}",
            self.label,
            self.seed,
            self.replication,
            self.report.fingerprint()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtnet_sim::SimTime;

    #[test]
    fn aggregate_merges_flows() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut q1 = FlowQos::new();
        q1.record_sent(0, SimTime::ZERO, 100);
        q1.record_received(0, SimTime::ZERO, SimTime::from_millis(5), 100);
        let mut q2 = FlowQos::new();
        q2.record_sent(0, SimTime::ZERO, 100);
        r.flows.push((FlowId(1), q1));
        r.flows.push((FlowId(2), q2));
        let agg = r.aggregate_qos();
        assert_eq!(agg.sent, 2);
        assert_eq!(agg.received, 1);
        assert_eq!(agg.loss_rate, 0.5);
        assert_eq!(r.flow_reports().len(), 2);
    }

    #[test]
    fn drop_accounting() {
        let mut r = SimReport::default();
        r.count_drop(DropCause::NoRoute);
        r.count_drop(DropCause::NoRoute);
        r.count_drop(DropCause::WirelessDetached);
        assert_eq!(r.total_drops(), 3);
        assert_eq!(r.drops[&DropCause::NoRoute], 2);
        assert_eq!(DropCause::NoRoute.to_string(), "no-route");
    }

    #[test]
    fn handoff_totals_and_latency() {
        let mut h = HandoffStats::default();
        *h.completed
            .entry(HandoffType::IntraMicroToMicro)
            .or_insert(0) += 3;
        *h.completed
            .entry(HandoffType::InterDomainSameUpper)
            .or_insert(0) += 1;
        h.latency_ms
            .entry(HandoffType::IntraMicroToMicro)
            .or_insert_with(Summary::new)
            .extend([10.0, 20.0]);
        h.latency_ms
            .entry(HandoffType::InterDomainSameUpper)
            .or_insert_with(Summary::new)
            .extend([100.0]);
        assert_eq!(h.total(), 4);
        let all = h.latency_all();
        assert_eq!(all.count(), 3);
        assert!((all.mean() - (10.0 + 20.0 + 100.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn signaling_totals() {
        let s = SignalingStats {
            location_messages: 5,
            route_updates: 10,
            ..Default::default()
        };
        assert_eq!(s.total_messages(), 15);
    }

    #[test]
    fn signaling_per_handoff_guard() {
        let r = SimReport::default();
        assert_eq!(r.signaling_per_handoff(), 0.0);
    }

    #[test]
    fn fingerprint_is_total_and_sensitive() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        let mut q = FlowQos::new();
        q.record_sent(0, SimTime::ZERO, 100);
        q.record_received(0, SimTime::ZERO, SimTime::from_millis(5), 100);
        r.flows.push((FlowId(1), q));
        r.count_drop(DropCause::NoRoute);
        r.signaling.route_updates = 3;
        let a = r.fingerprint();
        assert_eq!(a, r.fingerprint(), "fingerprint is a pure function");
        assert!(a.contains("flow 1"), "{a}");
        assert!(a.contains("drop no-route: 1"), "{a}");
        // Any metric change must move the fingerprint.
        r.signaling.route_updates += 1;
        assert_ne!(a, r.fingerprint());
    }

    #[test]
    fn fault_section_is_strictly_opt_in() {
        let mut r = SimReport::default();
        let quiet = r.fingerprint();
        assert!(
            !quiet.contains("faults:"),
            "quiet fault stats must leave the fingerprint untouched: {quiet}"
        );
        assert!(r.faults.is_quiet());
        r.faults.cell_transitions = 2;
        r.faults.outage_drops = 7;
        r.faults.recovery_latency_ms.extend([12.5]);
        assert!(!r.faults.is_quiet());
        assert_eq!(r.faults.total_transitions(), 2);
        let loud = r.fingerprint();
        assert!(loud.contains("faults: cells=2"), "{loud}");
        assert!(loud.contains("fault recovery: n=1"), "{loud}");
        assert!(loud.starts_with(&quiet), "fault lines append, not reorder");
    }

    #[test]
    fn aggregate_section_is_strictly_opt_in() {
        let mut r = SimReport::default();
        let plain = r.fingerprint();
        assert!(
            !plain.contains("aggregate delay"),
            "per-flow mode must leave the fingerprint untouched: {plain}"
        );
        let mut agg = AggregateQos::new();
        agg.record(12.0);
        agg.record(40.0);
        assert_eq!(agg.count(), 2);
        r.aggregate = Some(agg);
        let loud = r.fingerprint();
        assert!(loud.contains("aggregate delay: n=2"), "{loud}");
        assert!(loud.contains("aggregate delay pcts:"), "{loud}");
        assert!(
            loud.starts_with(&plain),
            "aggregate lines append, not reorder"
        );
    }

    #[test]
    fn run_report_fingerprint_includes_identity() {
        let run = RunReport {
            label: "multi-tier+rsmc".into(),
            seed: 0xabcd,
            replication: 2,
            report: SimReport::default(),
        };
        let fp = run.fingerprint();
        assert!(fp.contains("label=multi-tier+rsmc"), "{fp}");
        assert!(fp.contains("seed=000000000000abcd"), "{fp}");
        assert!(fp.contains("rep=2"), "{fp}");
    }
}
