//! Construction of a [`World`] from a declarative specification.
//!
//! The builder materializes, consistently with each other:
//! the wired topology (Fig 4.1), the radio cell map (Fig 2.1), the
//! multi-tier hierarchy with its cell tables (Fig 3.1), per-domain
//! Cellular IP trees and RSMCs, Mobile IP entities, and the mobile-node
//! population with its multimedia flows.

use super::mn::MnTable;
use super::{DomainState, World, WorldConfig};
use crate::hierarchy::Hierarchy;
use crate::location::LocationDirectory;
use crate::messages::MnId;
use crate::mnld::Mnld;
use crate::report::SimReport;
use crate::rsmc::Rsmc;
use mtnet_cellularip::{CipConfig, CipNetwork, MnCipState};
use mtnet_mobileip::{ForeignAgent, HomeAgent, MobileNode};
use mtnet_mobility::{MobilityModel, Point, Trajectory};
use mtnet_net::{Addr, FlowId, LinkConfig, NodeId, Prefix, Topology};
use mtnet_radio::{Cell, CellId, CellKind, CellMap};
use mtnet_sim::FxHashMap;
use mtnet_sim::{RngStream, SimDuration, SimTime};
use mtnet_traffic::{Cbr, OnOffVbr, ParetoWeb};

/// The kind of multimedia flow to attach to a mobile node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// 64 kbit/s CBR voice.
    Voice,
    /// On/off VBR video (384 kbit/s peak).
    Video,
    /// Heavy-tailed web browsing.
    Web,
}

/// One domain to deploy.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// Center of the domain's macro cell.
    pub center: Point,
    /// Number of micro cells in the domain's street row.
    pub n_micro: usize,
    /// Spacing between adjacent micro BSs, meters.
    pub micro_spacing: f64,
    /// Tier of the street-row cells: [`CellKind::Micro`] for the paper's
    /// geometry, [`CellKind::Pico`] for dense-urban in-building rows.
    /// Either way the row is micro-tier-managed (Cellular IP).
    pub micro_kind: CellKind,
    /// Domains sharing a region id share an upper-layer macro BS
    /// (`R3` in Fig 3.1) — required for the Fig 3.2 same-upper case.
    pub region: Option<u32>,
    /// Deploy this domain's macro radio cell (set `false` to model rural
    /// macro coverage holes; the hierarchy slot still exists).
    pub macro_radio: bool,
    /// Make this domain a satellite overlay: one satellite-tier cell
    /// (Fig 2.1's outermost ring) instead of a terrestrial macro, no
    /// micro row. Satellite coverage is macro-tier-managed (Mobile IP).
    pub satellite: bool,
}

impl Default for DomainSpec {
    fn default() -> Self {
        DomainSpec {
            center: Point::new(1500.0, 1500.0),
            n_micro: 4,
            micro_spacing: 400.0,
            micro_kind: CellKind::Micro,
            region: None,
            macro_radio: true,
            satellite: false,
        }
    }
}

/// Builds [`World`]s. See the [`crate::scenario`] module for presets.
pub struct WorldBuilder {
    cfg: WorldConfig,
    topo: Topology,
    cells: CellMap,
    hierarchy: Hierarchy,
    domains: Vec<DomainState>,
    cell_node: FxHashMap<CellId, NodeId>,
    node_cell: FxHashMap<NodeId, CellId>,
    cell_domain: FxHashMap<CellId, usize>,
    node_domain: FxHashMap<NodeId, usize>,
    region_upper: FxHashMap<u32, (CellId, NodeId)>,
    prefixes: Vec<(Prefix, NodeId)>,
    internet_node: NodeId,
    ha_node: NodeId,
    cn_node: NodeId,
    ha: HomeAgent,
    cn_addr: Addr,
    bs_fas: FxHashMap<CellId, ForeignAgent>,
    mns: MnTable,
    flows: Vec<super::FlowSim>,
    next_cell: u32,
    master_rng: RngStream,
}

impl std::fmt::Debug for WorldBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldBuilder")
            .field("domains", &self.domains.len())
            .field("mns", &self.mns.len())
            .finish()
    }
}

impl WorldBuilder {
    /// Starts a world: Internet core, home network (HA), correspondent
    /// node.
    pub fn new(cfg: WorldConfig) -> Self {
        let mut topo = Topology::new();
        let internet_node = topo.add_node("1.0.0.1".parse().expect("static addr"));
        let ha_addr: Addr = "10.0.0.1".parse().expect("static addr");
        let ha_node = topo.add_node(ha_addr);
        let cn_addr: Addr = "30.0.0.2".parse().expect("static addr");
        let cn_node = topo.add_node(cn_addr);
        // Home network sits a realistic WAN distance away; the CN is a
        // well-connected server.
        topo.connect(
            internet_node,
            ha_node,
            LinkConfig {
                propagation: SimDuration::from_millis(15),
                ..LinkConfig::wide_area()
            },
        );
        topo.connect(
            internet_node,
            cn_node,
            LinkConfig {
                propagation: SimDuration::from_millis(5),
                ..LinkConfig::backbone()
            },
        );
        let home_prefix: Prefix = "10.0.0.0/16".parse().expect("static prefix");
        let ha = HomeAgent::new(ha_addr, home_prefix);
        let cells = if cfg.seed == 0 {
            CellMap::without_shadowing()
        } else {
            // Controlled experiments disable shadowing for exact geometry;
            // population experiments keep it.
            CellMap::without_shadowing()
        };
        WorldBuilder {
            master_rng: RngStream::from_seed(cfg.seed),
            cfg,
            topo,
            cells,
            hierarchy: Hierarchy::new(),
            domains: Vec::new(),
            cell_node: FxHashMap::default(),
            node_cell: FxHashMap::default(),
            cell_domain: FxHashMap::default(),
            node_domain: FxHashMap::default(),
            region_upper: FxHashMap::default(),
            prefixes: vec![(home_prefix, ha_node)],
            internet_node,
            ha_node,
            cn_node,
            ha,
            cn_addr,
            bs_fas: FxHashMap::default(),
            mns: MnTable::default(),
            flows: Vec::new(),
            next_cell: 0,
        }
    }

    fn alloc_cell(&mut self) -> CellId {
        let id = CellId(self.next_cell);
        self.next_cell += 1;
        id
    }

    /// Deploys one domain: RSMC/gateway, macro cell (if the architecture
    /// has a macro tier), a row of micro cells (if it has a micro tier),
    /// wired per Fig 4.1: RSMC under the Internet, BS tree under the RSMC.
    pub fn add_domain(&mut self, spec: DomainSpec) -> usize {
        let didx = self.domains.len();
        let d = didx as u8;
        let prefix: Prefix = Prefix::new(Addr::from_octets(20, d, 0, 0), 16);
        let rsmc_addr = Addr::from_octets(20, d, 0, 1);
        let rsmc_node = self.topo.add_node(rsmc_addr);
        self.topo
            .connect(self.internet_node, rsmc_node, LinkConfig::wide_area());
        self.prefixes.push((prefix, rsmc_node));
        self.node_domain.insert(rsmc_node, didx);

        let mut cip = CipNetwork::new(
            rsmc_node,
            CipConfig {
                timers: self.cfg.cip_timers,
            },
        );

        // Upper-layer BS shared by the region (Fig 3.2's common R3).
        let upper_cell = spec.region.map(|r| {
            if let Some(&(cell, node)) = self.region_upper.get(&r) {
                // Wire this domain's RSMC to the existing upper BS.
                self.topo.connect(node, rsmc_node, LinkConfig::backbone());
                cell
            } else {
                let cell = self.alloc_cell();
                let node = self.topo.add_node(Addr::from_octets(21, r as u8, 0, 1));
                self.topo.connect(node, rsmc_node, LinkConfig::backbone());
                self.hierarchy.add_upper_macro(cell);
                self.region_upper.insert(r, (cell, node));
                cell
            }
        });

        // Top macro cell of the domain (always present in the hierarchy;
        // present as a radio cell only when the macro tier is deployed).
        let macro_cell = self.alloc_cell();
        let domain_id = self.hierarchy.add_domain(macro_cell, upper_cell);
        self.cell_domain.insert(macro_cell, didx);
        let kind = if spec.satellite {
            CellKind::Satellite
        } else {
            CellKind::Macro
        };
        let bs_parent_node = if self.cfg.has_macro && spec.macro_radio {
            let macro_node = self.topo.add_node(Addr::from_octets(20, d, 0, 10));
            self.topo
                .connect(rsmc_node, macro_node, LinkConfig::backbone());
            cip.add_bs(macro_node, rsmc_node);
            self.cells
                .add(Cell::new(macro_cell, kind, spec.center, macro_node));
            self.cell_node.insert(macro_cell, macro_node);
            self.node_cell.insert(macro_node, macro_cell);
            self.node_domain.insert(macro_node, didx);
            if self.cfg.mip_only {
                self.bs_fas
                    .insert(macro_cell, ForeignAgent::new(self.topo.addr_of(macro_node)));
            }
            macro_node
        } else {
            rsmc_node
        };

        // Micro cells: a street row; even cells attach to the macro (or
        // gateway), odd cells chain under their left neighbour — giving
        // the two-level micro tiers of Fig 3.1 and non-trivial crossover
        // base stations. Satellite overlays carry no micro row.
        if self.cfg.has_micro && !spec.satellite {
            let span = spec.micro_spacing * (spec.n_micro.saturating_sub(1)) as f64;
            let x0 = spec.center.x - span / 2.0;
            let mut prev: Option<(CellId, NodeId)> = None;
            for i in 0..spec.n_micro {
                let cell = self.alloc_cell();
                let pos = Point::new(x0 + i as f64 * spec.micro_spacing, spec.center.y);
                let node = self.topo.add_node(Addr::from_octets(20, d, 1, i as u8 + 1));
                let (parent_cell, parent_node) = match (i % 2, prev) {
                    (1, Some(p)) => p,
                    _ => (macro_cell, bs_parent_node),
                };
                self.topo.connect(parent_node, node, LinkConfig::access());
                cip.add_bs(node, parent_node);
                let hierarchy_parent = if self.hierarchy.contains(parent_cell)
                    && self.hierarchy.domain_of(parent_cell).is_some()
                {
                    parent_cell
                } else {
                    macro_cell
                };
                self.hierarchy.add_micro(cell, hierarchy_parent);
                self.cells.add(Cell::new(cell, spec.micro_kind, pos, node));
                self.cell_node.insert(cell, node);
                self.node_cell.insert(node, cell);
                self.node_domain.insert(node, didx);
                self.cell_domain.insert(cell, didx);
                prev = Some((cell, node));
            }
        }

        self.domains.push(DomainState {
            id: domain_id,
            rsmc: Rsmc::new(rsmc_addr),
            fa: ForeignAgent::new(rsmc_addr),
            cip,
            semisoft: mtnet_cellularip::SemisoftController::new(),
            rsmc_node,
            rsmc_alive: true,
        });
        didx
    }

    /// Adds a mobile node with the given mobility model and flows. Home
    /// addresses are arithmetic (dense, 250 per /24 from 10.0.2.1 — see
    /// [`super::mn::home_addr`]); populations past the 10.0.0.0/16
    /// capacity widen the home prefix to /8 at [`WorldBuilder::build`].
    pub fn add_mn(&mut self, model: Box<dyn MobilityModel + Send>, flows: &[FlowKind]) -> MnId {
        let idx = self.mns.len() as u32;
        let home = super::mn::home_addr(idx);
        let ha_addr = self.ha.addr();
        let id = self.mns.push(
            home,
            Trajectory::new(model),
            self.master_rng.child(&format!("mn{idx}/mobility")),
            MobileNode::new(home, ha_addr),
            MnCipState::new(self.cfg.cip_timers, SimTime::ZERO),
        );
        if !flows.is_empty() {
            self.mns.has_flow[id.0 as usize] = true;
        }
        for kind in flows {
            let fidx = self.flows.len() as u64;
            let gen = match kind {
                FlowKind::Voice => super::FlowGen::Cbr(Cbr::voice()),
                FlowKind::Video => super::FlowGen::Vbr(OnOffVbr::video()),
                FlowKind::Web => super::FlowGen::Web(ParetoWeb::browsing()),
            };
            self.flows.push(super::FlowSim {
                flow: FlowId(fidx + 1),
                mn: self.mns.handle(id),
                gen,
                qos: mtnet_traffic::FlowQos::new(),
                seq: 0,
                rng: self.master_rng.child(&format!("flow{fidx}/traffic")),
            });
        }
        id
    }

    /// Number of domains added so far.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// The radio cell map built so far (for geometry checks in tests).
    pub fn cells(&self) -> &CellMap {
        &self.cells
    }

    /// Finalizes the persistent lookup indices and produces the world.
    pub fn build(self) -> World {
        let locdir = LocationDirectory::new(&self.hierarchy, self.cfg.table_lifetime);
        // Dense per-id tables for the per-packet lookups: ids are small
        // and contiguous, so array reads beat map probes on the hot path.
        fn dense<T: Copy>(n: usize, entries: impl Iterator<Item = (usize, T)>) -> Vec<Option<T>> {
            let mut v = vec![None; n];
            for (i, t) in entries {
                v[i] = Some(t);
            }
            v
        }
        let n_nodes = self.topo.node_count();
        let n_cells = self.next_cell as usize;
        let cell_node = dense(
            n_cells,
            self.cell_node.iter().map(|(c, &n)| (c.0 as usize, n)),
        );
        let node_cell = dense(
            n_nodes,
            self.node_cell.iter().map(|(n, &c)| (n.0 as usize, c)),
        );
        let cell_domain = dense(
            n_cells,
            self.cell_domain.iter().map(|(c, &d)| (c.0 as usize, d)),
        );
        let node_domain = dense(
            n_nodes,
            self.node_domain.iter().map(|(n, &d)| (n.0 as usize, d)),
        );
        let engine = crate::handoff::HandoffEngine::new(self.cfg.decision, self.cfg.factors);
        // Longest prefix first, so `World::wired_next_hop` can take the
        // first containing prefix with a usable route — the same
        // most-specific-wins-with-fall-through order the per-node LPM
        // tables implemented. The sort is stable and equal-length
        // prefixes are disjoint, so ties cannot change answers.
        let mut prefixes = self.prefixes;
        prefixes.sort_by(|a, b| b.0.len().cmp(&a.0.len()));
        // Persistent O(1) indices for the per-packet scans: the domain of
        // an RSMC address / gateway node and the slot of a flow id never
        // change after build.
        let rsmc_addr_domain = self
            .domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.rsmc.addr(), i))
            .collect();
        let rsmc_node_domain = self
            .domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.rsmc_node, i))
            .collect();
        let flow_index = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| (f.flow, i))
            .collect();
        // Metro populations overflow the default 10.0.0.0/16 home
        // prefix; widen it to /8 so the HA still owns every arithmetic
        // home address (routing only tests containment — nothing else
        // reads the prefix length).
        let mut ha = self.ha;
        if self.mns.len() > super::mn::MAX_SLASH16_MNS {
            let wide: Prefix = "10.0.0.0/8".parse().expect("static prefix");
            ha = HomeAgent::new(ha.addr(), wide);
            for p in &mut prefixes {
                if p.1 == self.ha_node {
                    p.0 = wide;
                }
            }
            prefixes.sort_by(|a, b| b.0.len().cmp(&a.0.len()));
        }
        // Per-length masked maps mirroring the sorted scan (see
        // `World::prefix_probe`): one `(mask, network → owner)` pair per
        // distinct prefix length, longest first.
        let mut prefix_probe: Vec<(u32, FxHashMap<u32, NodeId>)> = Vec::new();
        for &(p, owner) in &prefixes {
            let mask = if p.len() == 0 {
                0
            } else {
                u32::MAX << (32 - p.len())
            };
            match prefix_probe.last_mut() {
                Some((m, owners)) if *m == mask => {
                    owners.insert(p.network().0 & mask, owner);
                }
                _ => {
                    let mut owners = FxHashMap::default();
                    owners.insert(p.network().0 & mask, owner);
                    prefix_probe.push((mask, owners));
                }
            }
        }
        let cn_route = vec![None; self.mns.len()];
        let mut report = SimReport::default();
        if self.cfg.aggregate_qos {
            report.aggregate = Some(crate::report::AggregateQos::new());
        }
        World {
            cfg: self.cfg,
            topo: self.topo,
            routes: mtnet_net::RouteCache::new(),
            prefixes,
            prefix_probe,
            cells: self.cells,
            cell_node,
            node_cell,
            hierarchy: self.hierarchy,
            locdir,
            domains: self.domains,
            cell_domain,
            node_domain,
            rsmc_addr_domain,
            rsmc_node_domain,
            ha,
            ha_node: self.ha_node,
            cn_node: self.cn_node,
            cn_addr: self.cn_addr,
            mnld: Mnld::new(),
            bs_fas: self.bs_fas,
            mns: self.mns,
            flows: self.flows,
            flow_index,
            cn_route,
            engine,
            pending_latency: FxHashMap::default(),
            next_packet_id: 0,
            arena: crate::arena::PacketArena::new(),
            measure_scratch: Vec::new(),
            candidate_scratch: Vec::new(),
            fault_plan: Vec::new(),
            active_faults: 0,
            pending_recovery: Vec::new(),
            shard: None,
            replicated_events: 0,
            report,
        }
    }
}
